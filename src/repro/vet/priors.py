"""Trust priors: validation verdicts as a pipeline input.

A :class:`TrustPriors` carries per-event verdicts from a validation
campaign into the analysis pipeline, where refuted events are excluded
*after* the Section-IV noise filter and *before* QRCP selection — a lying
counter must never become a pivot that defines a metric.

Application is exclusion-only by design: events the campaign judged
``accurate`` (and events it never saw) pass through untouched, so a run
under all-accurate priors is bit-identical to a prior-free run
(property-tested), and a prior-free run is byte-for-byte today's
pipeline.

A :class:`VetStamp` is the evidence trail the pipeline leaves on each
:class:`~repro.core.metrics.MetricDefinition` (and, through the serve
layer, each catalog entry): the verdicts of the events the metric was
composed over, plus what the priors excluded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.vet.model import (
    ACCURATE,
    REFUTED_VERDICTS,
    UNVETTED,
    VERDICTS,
    ValidationReport,
)

__all__ = ["TrustPriors", "VetStamp"]


@dataclass(frozen=True)
class TrustPriors:
    """Per-event validation verdicts consumed by the analysis pipeline.

    ``verdicts`` maps full event names to verdict strings; events absent
    from the map are ``unvetted``.  ``exclude`` lists the verdicts that
    bar an event from QRCP selection (default: every refuted verdict).
    """

    verdicts: Mapping[str, str] = field(default_factory=dict)
    exclude: Tuple[str, ...] = REFUTED_VERDICTS
    source: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "verdicts", dict(self.verdicts))
        bad = sorted(set(self.verdicts.values()) - set(VERDICTS))
        if bad:
            raise ValueError(f"unknown verdict(s) in priors: {', '.join(bad)}")
        bad = sorted(set(self.exclude) - set(VERDICTS))
        if bad:
            raise ValueError(
                f"unknown verdict(s) in exclude list: {', '.join(bad)}"
            )

    def verdict_for(self, event: str) -> str:
        return self.verdicts.get(event, UNVETTED)

    def excluded(self, event: str) -> bool:
        """Whether this event is barred from metric composition."""
        return self.verdict_for(event) in self.exclude

    def excluded_events(self, events: Iterable[str]) -> Tuple[str, ...]:
        return tuple(e for e in events if self.excluded(e))

    @property
    def n_refuted(self) -> int:
        return sum(1 for v in self.verdicts.values() if v in REFUTED_VERDICTS)

    @classmethod
    def from_report(
        cls,
        report: ValidationReport,
        exclude: Tuple[str, ...] = REFUTED_VERDICTS,
    ) -> "TrustPriors":
        return cls(
            verdicts={
                name: verdict.verdict
                for name, verdict in report.verdicts.items()
            },
            exclude=exclude,
            source=report.source,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TrustPriors":
        """Load priors from a saved :class:`ValidationReport` JSON file."""
        payload = json.loads(Path(path).read_text())
        if payload.get("kind") == "validation-report":
            return cls.from_report(ValidationReport.from_payload(payload))
        return cls(
            verdicts=dict(payload.get("verdicts", {})),
            exclude=tuple(payload.get("exclude", REFUTED_VERDICTS)),
            source=str(payload.get("source", str(path))),
        )

    def to_payload(self) -> dict:
        return {
            "verdicts": dict(sorted(self.verdicts.items())),
            "exclude": list(self.exclude),
            "source": self.source,
        }


@dataclass(frozen=True)
class VetStamp:
    """Validation evidence attached to a composed metric definition.

    ``verdicts`` covers exactly the events the metric was composed over
    (the QRCP selection); ``excluded`` lists events the priors barred
    from that selection.
    """

    verdicts: Mapping[str, str] = field(default_factory=dict)
    excluded: Tuple[str, ...] = ()
    source: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "verdicts", dict(self.verdicts))
        object.__setattr__(self, "excluded", tuple(self.excluded))

    @property
    def clean(self) -> bool:
        """True when every composing event validated ``accurate``."""
        return all(v == ACCURATE for v in self.verdicts.values())

    def suspect_events(self) -> Dict[str, str]:
        """Composing events that are not ``accurate`` (verdict by name)."""
        return {e: v for e, v in self.verdicts.items() if v != ACCURATE}

    def describe(self) -> str:
        if self.clean and not self.excluded:
            return f"vetted clean ({len(self.verdicts)} events)"
        parts = []
        suspects = self.suspect_events()
        if suspects:
            parts.append(
                "suspect: "
                + ", ".join(f"{e}={v}" for e, v in sorted(suspects.items()))
            )
        if self.excluded:
            parts.append(f"excluded: {', '.join(self.excluded)}")
        return "; ".join(parts)

    def to_payload(self) -> dict:
        return {
            "verdicts": dict(sorted(self.verdicts.items())),
            "excluded": list(self.excluded),
            "source": self.source,
        }

    @classmethod
    def from_payload(cls, payload: Optional[Mapping]) -> Optional["VetStamp"]:
        if not payload:
            return None
        return cls(
            verdicts=dict(payload.get("verdicts", {})),
            excluded=tuple(payload.get("excluded", ())),
            source=str(payload.get("source", "")),
        )
