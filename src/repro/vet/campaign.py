"""Validation campaigns: measure known-activity kernels, judge every event.

The CAT benchmarks are *known-activity* kernels: each probe row's
microarchitectural occurrences are analytically derived, so every event's
expected count is ``declared response . activity`` — no oracle beyond the
event's own documentation.  A campaign runs those probes across several
perturbed node configurations (different measurement-noise seeds and
repetition counts), compares measured against expected per (event, probe
row), and classifies each event à la Röhl:

* the comparison unit is the ratio ``measured / expected`` on rows where
  the event is genuinely exercised (expected count above a floor);
* the tolerance band around 1 is derived from the event's documented
  noise model (:meth:`~repro.events.noise.NoiseModel.expected_rel_bias`
  and :meth:`~repro.events.noise.NoiseModel.predicted_rel_std`) plus the
  benchmark's environment-noise contribution — deliberately without the
  sqrt(repetitions) averaging gain, so a healthy event is never refuted
  by an unlucky draw (the hard requirement: all-accurate priors must
  leave the pipeline bit-identical);
* a consistent out-of-band median ratio is ``overcounting`` /
  ``undercounting`` / ``multi_counting`` (integer ratio >= 2); a
  deviation that changes across probes is ``unreliable``; firing on rows
  with zero expected activity is ghost counting (overcounting).

The honest flip side: an event whose documented noise is large gets a
wide band, and a forgery smaller than its noise floor is undetectable —
validation can only refute deviations the noise model cannot explain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cat.runner import BenchmarkRunner
from repro.core.pipeline import AnalysisPipeline
from repro.core.sweep import SWEEP_SYSTEMS, SYSTEM_DOMAINS
from repro.events.catalogs._builders import log_uniform_sigma
from repro.events.model import RawEvent
from repro.obs import get_tracer
from repro.vet.forge import forge_registry
from repro.vet.model import (
    ACCURATE,
    MULTI_COUNTING,
    OVERCOUNTING,
    UNDERCOUNTING,
    UNRELIABLE,
    EventVerdict,
    ValidationReport,
)

__all__ = ["CampaignConfig", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Shape and sensitivity of one validation campaign.

    ``n_configs`` perturbed node configurations are derived from ``seed``
    (config ``i`` reseeds every noise stream with ``seed + i`` and
    alternates the repetition count), so campaigns are exactly
    reproducible.  ``z_score`` widens the tolerance band in units of the
    model-predicted standard deviation; ``spread_factor`` is how much
    ratio spread beyond the band reads as inconsistency (unreliable).
    """

    seed: int = 2024
    n_configs: int = 3
    repetitions: int = 4
    domains: Optional[Tuple[str, ...]] = None
    min_expected: float = 1.0
    min_tolerance: float = 0.02
    z_score: float = 4.0
    spread_factor: float = 4.0
    ghost_threshold: float = 1e3

    def __post_init__(self) -> None:
        if self.n_configs < 1:
            raise ValueError("need at least one campaign configuration")
        if self.repetitions < 2:
            raise ValueError("need at least two repetitions")
        if self.min_tolerance <= 0 or self.z_score <= 0:
            raise ValueError("tolerance parameters must be positive")


def _declared_expectations(
    event_list: Sequence[RawEvent], activities: List[List]
) -> np.ndarray:
    """``(rows, events)`` expected counts from documented responses.

    Uses each event's *declared* linear response (``RawEvent.true_count``
    on the base class), never an override — a forged event is judged
    against its documentation, exactly like real silicon against its
    manual.  Threads collapse by median to mirror
    ``MeasurementSet.measurement_matrix``.
    """
    keys = sorted({k for e in event_list for k in e.response})
    key_index = {k: j for j, k in enumerate(keys)}
    weights = np.zeros((len(keys), len(event_list)))
    for j, event in enumerate(event_list):
        for key, value in event.response.items():
            weights[key_index[key], j] = value
    n_rows = len(activities)
    n_threads = max(len(row) for row in activities)
    packed = np.zeros((n_threads, n_rows, len(keys)))
    for r, row_acts in enumerate(activities):
        for t, activity in enumerate(row_acts):
            for key, value in activity.items():
                col = key_index.get(key)
                if col is not None:
                    packed[t, r, col] = value
    expected = packed @ weights  # (threads, rows, events)
    return np.median(expected, axis=0)


@dataclass
class _Observations:
    """Accumulated evidence for one event across probes and configs."""

    ratios: List[float]
    tolerances: List[float]
    ghost_rows: int = 0


def _observe_probe(
    benchmark,
    event_list: Sequence[RawEvent],
    measured: np.ndarray,
    expected: np.ndarray,
    config: CampaignConfig,
    evidence: Dict[str, _Observations],
) -> int:
    """Fold one probe's measured-vs-expected matrix into the evidence."""
    env_lo_hi = benchmark.environment_noise
    n_obs = 0
    for j, event in enumerate(event_list):
        entry = evidence.setdefault(event.full_name, _Observations([], []))
        env_sigma = 0.0
        if env_lo_hi is not None:
            lo, hi = env_lo_hi
            env_sigma = log_uniform_sigma(
                event.full_name, lo, hi, salt=f"env:{benchmark.name}"
            )
        model = event.noise
        ghost_limit = max(config.ghost_threshold, 200.0 * model.floor)
        for r in range(expected.shape[0]):
            count = expected[r, j]
            if count <= config.min_expected:
                if measured[r, j] > ghost_limit:
                    entry.ghost_rows += 1
                continue
            tolerance = (
                config.min_tolerance
                + model.expected_rel_bias(count)
                + config.z_score * (model.predicted_rel_std(count) + env_sigma)
            )
            entry.ratios.append(float(measured[r, j] / count))
            entry.tolerances.append(float(tolerance))
            n_obs += 1
    return n_obs


def _classify(event: str, obs: _Observations, config: CampaignConfig) -> EventVerdict:
    """Turn one event's accumulated ratio evidence into a verdict."""
    ratios = np.asarray(obs.ratios)
    tols = np.asarray(obs.tolerances)
    reasons: List[str] = []
    if obs.ghost_rows:
        reasons.append(
            f"fired on {obs.ghost_rows} probe row(s) with zero expected activity"
        )
    if ratios.size == 0:
        # Ghost-only evidence: never legitimately exercised, yet it fires.
        return EventVerdict(
            event=event,
            verdict=OVERCOUNTING,
            ghost_rows=obs.ghost_rows,
            reasons=tuple(reasons),
        )

    deviating = np.abs(ratios - 1.0) > tols
    n_dev = int(deviating.sum())
    median = float(np.median(ratios))
    tol_median = float(np.median(tols))
    spread = float(ratios.max() - ratios.min())
    spread_limit = config.spread_factor * max(tol_median, config.min_tolerance)

    verdict = ACCURATE
    if abs(median - 1.0) > tol_median:
        # Systematic deviation.  If the per-probe ratios disagree with
        # each other by more than they agree on a correction factor, no
        # single factor explains the event: unreliable.
        if spread > 1.5 * max(abs(median - 1.0), tol_median):
            verdict = UNRELIABLE
            reasons.append(
                f"deviation inconsistent across probes "
                f"(spread {spread:.3g} vs median offset {median - 1.0:+.3g})"
            )
        else:
            nearest = round(median)
            if nearest >= 2 and abs(median - nearest) <= max(
                tol_median, 0.05 * nearest
            ):
                verdict = MULTI_COUNTING
                reasons.append(f"counts {nearest}x per documented occurrence")
            elif median > 1.0:
                verdict = OVERCOUNTING
                reasons.append(f"systematic ratio {median:.4g} above tolerance")
            else:
                verdict = UNDERCOUNTING
                reasons.append(f"systematic ratio {median:.4g} below tolerance")
    elif n_dev >= max(1, len(ratios) // 4) and spread > spread_limit:
        verdict = UNRELIABLE
        reasons.append(
            f"{n_dev}/{len(ratios)} observations out of band with spread "
            f"{spread:.3g} (limit {spread_limit:.3g})"
        )
    elif obs.ghost_rows:
        verdict = OVERCOUNTING
    return EventVerdict(
        event=event,
        verdict=verdict,
        ratio_median=median,
        ratio_min=float(ratios.min()),
        ratio_max=float(ratios.max()),
        tolerance=tol_median,
        n_observations=int(ratios.size),
        n_deviating=n_dev,
        ghost_rows=obs.ghost_rows,
        reasons=tuple(reasons),
    )


def run_campaign(
    system: str,
    config: CampaignConfig = CampaignConfig(),
    forge: Optional[Mapping[str, Tuple[str, float]]] = None,
) -> ValidationReport:
    """Validate a system's event registry against its known-activity probes.

    ``forge`` (full event name -> ``(kind, factor)``) swaps in lying
    counters before measurement — the test substrate for the validation
    layer itself and for CI smoke.  The returned report judges every
    event the probes measured; events never exercised are ``unvetted``.
    """
    if system not in SWEEP_SYSTEMS:
        raise KeyError(
            f"unknown system {system!r}; expected one of {sorted(SWEEP_SYSTEMS)}"
        )
    domains = config.domains or SYSTEM_DOMAINS[system]
    unknown = [d for d in domains if d not in SYSTEM_DOMAINS[system]]
    if unknown:
        raise KeyError(
            f"domain(s) {', '.join(unknown)} not probed on {system!r}; "
            f"available: {', '.join(SYSTEM_DOMAINS[system])}"
        )
    tracer = get_tracer()
    evidence: Dict[str, _Observations] = {}
    probes: List[str] = []
    arch = ""
    with tracer.span(
        "vet-campaign", system=system, configs=config.n_configs
    ) as span:
        for index in range(config.n_configs):
            node = SWEEP_SYSTEMS[system](seed=config.seed + index)
            arch = node.name
            registry = (
                forge_registry(node.events, forge) if forge else node.events
            )
            repetitions = config.repetitions + (index % 2)
            runner = BenchmarkRunner(node, repetitions=repetitions)
            for domain in domains:
                benchmark = AnalysisPipeline.for_domain(domain, node).benchmark
                if index == 0:
                    probes.append(benchmark.name)
                selected = registry.select(
                    domains=tuple(benchmark.measured_domains)
                )
                with tracer.span(
                    "vet-probe",
                    domain=domain,
                    config=index,
                    benchmark=benchmark.name,
                ) as probe_span:
                    measurement = runner.run(benchmark, events=selected)
                    event_list = list(selected)
                    expected = _declared_expectations(
                        event_list, benchmark.execute(node.machine)
                    )
                    n_obs = _observe_probe(
                        benchmark,
                        event_list,
                        measurement.measurement_matrix(),
                        expected,
                        config,
                        evidence,
                    )
                    probe_span.set(
                        events=len(event_list), observations=n_obs
                    )
                tracer.incr("vet.probes")
                tracer.incr("vet.observations", n_obs)
        verdicts: Dict[str, EventVerdict] = {}
        unvetted: List[str] = []
        for name in sorted(evidence):
            obs = evidence[name]
            if not obs.ratios and not obs.ghost_rows:
                unvetted.append(name)
                continue
            verdicts[name] = _classify(name, obs, config)
        n_refuted = sum(1 for v in verdicts.values() if v.refuted)
        span.set(
            vetted=len(verdicts), refuted=n_refuted, unvetted=len(unvetted)
        )
    tracer.incr("vet.events_vetted", len(verdicts))
    tracer.incr("vet.refuted", n_refuted)
    tracer.incr("vet.unvetted", len(unvetted))
    return ValidationReport(
        arch=arch,
        system=system,
        seed=config.seed,
        n_configs=config.n_configs,
        domains=tuple(domains),
        probes=tuple(probes),
        verdicts=verdicts,
        unvetted=tuple(unvetted),
    )
