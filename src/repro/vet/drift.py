"""Drift detection over the metric catalog.

The catalog's append-only version history is a time series of analysis
outputs.  Drift detection walks every (arch, metric, config) key,
structurally diffs consecutive versions (the same
:meth:`~repro.serve.catalog.CatalogDiff.to_payload` format that
``repro-cat catalog diff --json`` emits), and aggregates the changes into
typed anomalies:

* ``coefficient-drift`` / ``term-change`` — the definition's linear
  combination moved (changed coefficients, or events entering/leaving);
* ``error-shift`` — the Equation-5 backward error moved;
* ``trust-transition`` — the leave-one-kernel-out certification level
  changed (certified -> caution -> reject, or back);
* ``verdict-flip`` — a composing event's counter-validation verdict
  changed between versions (the Röhl signal: the *event* moved under the
  metric);
* ``registry-change`` / ``guard-change`` — the event registry digest or
  the fired guard ladder differ between versions.

Staleness (:func:`stale_entry_rows`) is the complementary read-side
check: entries whose recorded per-event dependency digests no longer
match the *live* registry are flagged so vet tooling can target exactly
what needs revalidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.events.registry import EventRegistry
from repro.serve.catalog import MetricCatalogStore, diff_entries

__all__ = [
    "ANOMALY_KINDS",
    "DriftAnomaly",
    "DriftReport",
    "anomalies_from_diff",
    "detect_drift",
    "stale_entry_rows",
]

ANOMALY_KINDS = (
    "coefficient-drift",
    "term-change",
    "error-shift",
    "trust-transition",
    "verdict-flip",
    "registry-change",
    "guard-change",
)


@dataclass(frozen=True)
class DriftAnomaly:
    """One observed change between two consecutive catalog versions."""

    kind: str
    arch: str
    metric: str
    config_digest: str
    version_a: int
    version_b: int
    detail: str

    def __post_init__(self) -> None:
        if self.kind not in ANOMALY_KINDS:
            raise ValueError(
                f"unknown anomaly kind {self.kind!r}; "
                f"expected one of {ANOMALY_KINDS}"
            )

    def describe(self) -> str:
        return (
            f"[{self.kind}] {self.arch}/{self.metric} "
            f"v{self.version_a}->v{self.version_b}: {self.detail}"
        )

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "arch": self.arch,
            "metric": self.metric,
            "config_digest": self.config_digest,
            "version_a": self.version_a,
            "version_b": self.version_b,
            "detail": self.detail,
        }


@dataclass
class DriftReport:
    """Aggregated drift over a catalog (or one architecture of it)."""

    keys_scanned: int = 0
    versions_scanned: int = 0
    anomalies: List[DriftAnomaly] = field(default_factory=list)

    @property
    def flagged(self) -> bool:
        return bool(self.anomalies)

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for anomaly in self.anomalies:
            counts[anomaly.kind] = counts.get(anomaly.kind, 0) + 1
        return counts

    def summary(self) -> str:
        lines = [
            f"catalog drift: {self.keys_scanned} key(s), "
            f"{self.versions_scanned} version(s) scanned",
        ]
        if not self.anomalies:
            lines.append("no anomalies: every key is stable across versions")
            return "\n".join(lines)
        counts = self.by_kind()
        lines.append(
            "anomalies: "
            + ", ".join(f"{kind}={counts[kind]}" for kind in sorted(counts))
        )
        for anomaly in self.anomalies:
            lines.append("  " + anomaly.describe())
        return "\n".join(lines)

    def to_payload(self) -> dict:
        return {
            "keys_scanned": self.keys_scanned,
            "versions_scanned": self.versions_scanned,
            "flagged": self.flagged,
            "by_kind": self.by_kind(),
            "anomalies": [a.to_payload() for a in self.anomalies],
        }


def anomalies_from_diff(
    payload: Mapping, arch: str, config_digest: str
) -> List[DriftAnomaly]:
    """Typed anomalies from one structured diff payload.

    ``payload`` is the :meth:`CatalogDiff.to_payload` format — the same
    JSON ``repro-cat catalog diff --json`` prints, so externally produced
    diffs feed the detector unchanged.
    """
    if payload.get("identical"):
        return []
    metric = payload["metric"]
    va, vb = int(payload["version_a"]), int(payload["version_b"])

    def anomaly(kind: str, detail: str) -> DriftAnomaly:
        return DriftAnomaly(
            kind=kind,
            arch=arch,
            metric=metric,
            config_digest=config_digest,
            version_a=va,
            version_b=vb,
            detail=detail,
        )

    out: List[DriftAnomaly] = []
    added = payload.get("added_terms", {})
    removed = payload.get("removed_terms", {})
    if added or removed:
        parts = []
        if added:
            parts.append(f"events entered: {', '.join(sorted(added))}")
        if removed:
            parts.append(f"events left: {', '.join(sorted(removed))}")
        out.append(anomaly("term-change", "; ".join(parts)))
    changed = payload.get("changed_terms", {})
    if changed:
        worst_event, worst_rel = "", -1.0
        for event, (old, new) in changed.items():
            scale = max(abs(old), abs(new), 1e-300)
            rel = abs(new - old) / scale
            if rel > worst_rel:
                worst_event, worst_rel = event, rel
        out.append(
            anomaly(
                "coefficient-drift",
                f"{len(changed)} coefficient(s) moved; worst {worst_event} "
                f"({worst_rel:.3g} relative)",
            )
        )
    error_a, error_b = payload.get("error_a", 0.0), payload.get("error_b", 0.0)
    if error_a != error_b:
        out.append(
            anomaly("error-shift", f"error {error_a:.6e} -> {error_b:.6e}")
        )
    trust_a, trust_b = payload.get("trust_a"), payload.get("trust_b")
    if trust_a != trust_b:
        out.append(anomaly("trust-transition", f"{trust_a} -> {trust_b}"))
    for event, (old, new) in payload.get("verdict_flips", {}).items():
        out.append(
            anomaly(
                "verdict-flip",
                f"{event}: {old or 'no verdict'} -> {new or 'no verdict'}",
            )
        )
    if payload.get("events_digest_changed"):
        out.append(
            anomaly("registry-change", "event registry changed between versions")
        )
    guards_a = tuple(payload.get("guards_a", ()))
    guards_b = tuple(payload.get("guards_b", ()))
    if guards_a != guards_b:
        out.append(
            anomaly("guard-change", f"{list(guards_a)} -> {list(guards_b)}")
        )
    return out


def detect_drift(
    store: MetricCatalogStore, arch: Optional[str] = None
) -> DriftReport:
    """Scan a catalog's full version history for drift anomalies.

    Every consecutive version pair of every key is diffed; keys with a
    single version contribute no anomalies (there is nothing to drift
    from).  Deduplicated publishes never create versions, so every pair
    here is a genuine change — the report explains *what kind*.
    """
    report = DriftReport()
    for row in store.list_entries(arch):
        history = store.history(
            row["arch"], row["metric"], row["config_digest"]
        )
        report.keys_scanned += 1
        report.versions_scanned += len(history)
        for older, newer in zip(history, history[1:]):
            payload = diff_entries(older, newer).to_payload()
            report.anomalies.extend(
                anomalies_from_diff(payload, row["arch"], row["config_digest"])
            )
    return report


def stale_entry_rows(
    store: MetricCatalogStore,
    registries: Mapping[str, EventRegistry],
    arch: Optional[str] = None,
) -> List[dict]:
    """Catalog keys whose latest entry no longer matches the live registry.

    ``registries`` maps architecture names to their current event
    registries.  An entry is stale when any of its recorded per-event
    dependency digests is missing from or differs in the live registry
    (an event was edited or removed); entries without the per-event map
    fall back to the coarse whole-registry digest.  Architectures with no
    live registry are flagged too — they cannot be revalidated at all.
    """
    live_digests: Dict[str, Dict[str, str]] = {}
    live_whole: Dict[str, str] = {}
    for name, registry in registries.items():
        live_digests[name] = registry.event_digests()
        live_whole[name] = registry.content_digest()
    rows: List[dict] = []
    for row in store.list_entries(arch):
        entry = store.get(row["arch"], row["metric"], row["config_digest"])
        if entry is None:
            continue
        live = live_digests.get(entry.arch)
        reason = None
        if live is None:
            reason = f"no live registry known for architecture {entry.arch!r}"
        elif entry.event_digests:
            changed = sorted(
                name
                for name, digest in entry.event_digests.items()
                if live.get(name) != digest
            )
            if changed:
                sample = ", ".join(changed[:3])
                if len(changed) > 3:
                    sample += f", ... ({len(changed)} total)"
                reason = f"event digest(s) changed: {sample}"
        elif entry.events_digest != live_whole.get(entry.arch):
            reason = "events registry digest changed (no per-event map recorded)"
        if reason is not None:
            stale_row = dict(row)
            stale_row["stale_reason"] = reason
            rows.append(stale_row)
    return rows
