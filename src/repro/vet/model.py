"""Verdict taxonomy and reports for counter validation.

Röhl et al. validate PMU events by running kernels whose event counts are
analytically known and comparing measured against expected; events that
deviate are classified by *how* they deviate.  This module is the
vocabulary of that comparison:

* ``accurate`` — every exercised observation lands inside the tolerance
  band the event's own noise model predicts.
* ``overcounting`` / ``undercounting`` — a consistent multiplicative
  deviation above / below 1 (e.g. an event that also fires for a
  neighbouring micro-op, or misses a fused one).
* ``multi_counting`` — the deviation ratio is an integer >= 2: the event
  fires once per *occurrence component* instead of once per occurrence
  (Röhl's classic FLOP-per-SIMD-lane case).
* ``unreliable`` — the deviation is not consistent across kernels or
  configurations; no single correction factor explains it.
* ``unvetted`` — the campaign never exercised the event (no probe row
  produced a usable expected count), so nothing can be said.

A verdict other than ``accurate`` or ``unvetted`` is *refuted*: the event
failed validation and should not define a metric without correction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

__all__ = [
    "ACCURATE",
    "EventVerdict",
    "MULTI_COUNTING",
    "OVERCOUNTING",
    "REFUTED_VERDICTS",
    "UNDERCOUNTING",
    "UNRELIABLE",
    "UNVETTED",
    "VERDICTS",
    "ValidationReport",
]

ACCURATE = "accurate"
OVERCOUNTING = "overcounting"
UNDERCOUNTING = "undercounting"
MULTI_COUNTING = "multi_counting"
UNRELIABLE = "unreliable"
UNVETTED = "unvetted"

#: Every verdict a campaign can hand down (unvetted is the absence of one).
VERDICTS = (
    ACCURATE,
    OVERCOUNTING,
    UNDERCOUNTING,
    MULTI_COUNTING,
    UNRELIABLE,
    UNVETTED,
)

#: Verdicts that refute the event's documented semantics.
REFUTED_VERDICTS = (OVERCOUNTING, UNDERCOUNTING, MULTI_COUNTING, UNRELIABLE)


@dataclass(frozen=True)
class EventVerdict:
    """The campaign's judgement of one event on one architecture.

    ``ratio_*`` summarize ``measured / expected`` over every exercised
    observation (probe row x perturbed config); ``tolerance`` is the
    median per-observation tolerance band derived from the event's noise
    model (see :meth:`repro.events.noise.NoiseModel.predicted_rel_std`).
    ``ghost_rows`` counts probe rows where the event fired substantially
    with zero expected activity.
    """

    event: str
    verdict: str
    ratio_median: float = 1.0
    ratio_min: float = 1.0
    ratio_max: float = 1.0
    tolerance: float = 0.0
    n_observations: int = 0
    n_deviating: int = 0
    ghost_rows: int = 0
    reasons: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise ValueError(
                f"unknown verdict {self.verdict!r}; expected one of {VERDICTS}"
            )

    @property
    def refuted(self) -> bool:
        """True when the event failed validation outright."""
        return self.verdict in REFUTED_VERDICTS

    def describe(self) -> str:
        spread = (
            f"ratio {self.ratio_median:.4g} "
            f"[{self.ratio_min:.4g}, {self.ratio_max:.4g}] "
            f"tol {self.tolerance:.3g}"
        )
        tail = f"; {'; '.join(self.reasons)}" if self.reasons else ""
        return (
            f"{self.event}: {self.verdict} ({spread}, "
            f"{self.n_deviating}/{self.n_observations} deviating"
            + (f", {self.ghost_rows} ghost rows" if self.ghost_rows else "")
            + f"){tail}"
        )

    def to_payload(self) -> dict:
        return {
            "event": self.event,
            "verdict": self.verdict,
            "ratio_median": self.ratio_median,
            "ratio_min": self.ratio_min,
            "ratio_max": self.ratio_max,
            "tolerance": self.tolerance,
            "n_observations": self.n_observations,
            "n_deviating": self.n_deviating,
            "ghost_rows": self.ghost_rows,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "EventVerdict":
        return cls(
            event=payload["event"],
            verdict=payload["verdict"],
            ratio_median=float(payload.get("ratio_median", 1.0)),
            ratio_min=float(payload.get("ratio_min", 1.0)),
            ratio_max=float(payload.get("ratio_max", 1.0)),
            tolerance=float(payload.get("tolerance", 0.0)),
            n_observations=int(payload.get("n_observations", 0)),
            n_deviating=int(payload.get("n_deviating", 0)),
            ghost_rows=int(payload.get("ghost_rows", 0)),
            reasons=tuple(payload.get("reasons", ())),
        )


FORMAT_VERSION = 1


@dataclass
class ValidationReport:
    """Everything one validation campaign concluded about a registry.

    ``verdicts`` maps full event names to their judgements; ``unvetted``
    lists events that were measured but never exercised by any probe.
    ``source`` is a human-readable provenance string (system, seed,
    configs) stamped onto priors derived from this report.
    """

    arch: str
    system: str
    seed: int
    n_configs: int
    domains: Tuple[str, ...]
    probes: Tuple[str, ...]
    verdicts: Dict[str, EventVerdict] = field(default_factory=dict)
    unvetted: Tuple[str, ...] = ()

    @property
    def source(self) -> str:
        return (
            f"vet-campaign[{self.system}/{self.arch} seed={self.seed} "
            f"configs={self.n_configs}]"
        )

    def refuted_events(self) -> List[str]:
        return sorted(n for n, v in self.verdicts.items() if v.refuted)

    def accurate_events(self) -> List[str]:
        return sorted(
            n for n, v in self.verdicts.items() if v.verdict == ACCURATE
        )

    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {v: 0 for v in VERDICTS}
        for verdict in self.verdicts.values():
            counts[verdict.verdict] += 1
        counts[UNVETTED] += len(self.unvetted)
        return counts

    def summary(self) -> str:
        counts = self.verdict_counts()
        lines = [
            f"validation campaign: {self.system} ({self.arch}), "
            f"seed {self.seed}, {self.n_configs} perturbed config(s)",
            f"domains: {', '.join(self.domains)}",
            f"probes:  {', '.join(self.probes)}",
            "verdicts: "
            + ", ".join(f"{k}={counts[k]}" for k in VERDICTS if counts[k]),
        ]
        refuted = [v for v in self.verdicts.values() if v.refuted]
        if refuted:
            lines.append("refuted events:")
            for verdict in sorted(refuted, key=lambda v: v.event):
                lines.append(f"  {verdict.describe()}")
        else:
            lines.append("refuted events: none")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "kind": "validation-report",
            "arch": self.arch,
            "system": self.system,
            "seed": self.seed,
            "n_configs": self.n_configs,
            "domains": list(self.domains),
            "probes": list(self.probes),
            "verdicts": {
                name: verdict.to_payload()
                for name, verdict in sorted(self.verdicts.items())
            },
            "unvetted": sorted(self.unvetted),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ValidationReport":
        version = payload.get("format_version", FORMAT_VERSION)
        if version > FORMAT_VERSION:
            raise ValueError(
                f"validation report format {version} is newer than this "
                f"reader ({FORMAT_VERSION})"
            )
        return cls(
            arch=payload["arch"],
            system=payload["system"],
            seed=int(payload["seed"]),
            n_configs=int(payload["n_configs"]),
            domains=tuple(payload.get("domains", ())),
            probes=tuple(payload.get("probes", ())),
            verdicts={
                name: EventVerdict.from_payload(entry)
                for name, entry in payload.get("verdicts", {}).items()
            },
            unvetted=tuple(payload.get("unvetted", ())),
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ValidationReport":
        return cls.from_payload(json.loads(Path(path).read_text()))

    def content_digest(self) -> str:
        from repro.io.digest import json_digest

        return json_digest({"validation_report": self.to_payload()}, length=16)
