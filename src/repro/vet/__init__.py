"""Counter validation and drift detection (``repro.vet``).

The pipeline implicitly trusts that every raw event counts what its
documentation says it counts.  Röhl et al. showed that on real silicon a
significant fraction do not — they over-, under- or multi-count, or
drift unpredictably — and CounterPoint demonstrated refuting such events
by comparing measured counts against analytically expected ones.  This
package closes that gap for the reproduction:

* :mod:`~repro.vet.campaign` runs the known-activity CAT probes across
  perturbed configurations and hands down per-event verdicts with
  tolerance bands derived from each event's documented noise model;
* :mod:`~repro.vet.priors` feeds those verdicts into the analysis
  pipeline (refuted events are excluded before QRCP selection; composed
  metrics carry a :class:`~repro.vet.priors.VetStamp`);
* :mod:`~repro.vet.forge` builds deliberately lying counters — the test
  substrate that proves the layer catches what it claims to catch;
* :mod:`~repro.vet.drift` aggregates catalog version diffs into typed
  anomaly reports (coefficient drift, trust transitions, verdict flips)
  and flags entries stale against the live registry;
* :mod:`~repro.vet.smoke` is the seeded end-to-end scenario CI runs.
"""

from repro.vet.campaign import CampaignConfig, run_campaign
from repro.vet.drift import (
    DriftAnomaly,
    DriftReport,
    anomalies_from_diff,
    detect_drift,
    stale_entry_rows,
)
from repro.vet.forge import ForgedEvent, forge_registry, parse_forge_spec
from repro.vet.model import (
    ACCURATE,
    MULTI_COUNTING,
    OVERCOUNTING,
    REFUTED_VERDICTS,
    UNDERCOUNTING,
    UNRELIABLE,
    UNVETTED,
    VERDICTS,
    EventVerdict,
    ValidationReport,
)
from repro.vet.priors import TrustPriors, VetStamp
from repro.vet.smoke import VetSmokeOutcome, run_vet_smoke

__all__ = [
    "ACCURATE",
    "CampaignConfig",
    "DriftAnomaly",
    "DriftReport",
    "EventVerdict",
    "ForgedEvent",
    "MULTI_COUNTING",
    "OVERCOUNTING",
    "REFUTED_VERDICTS",
    "TrustPriors",
    "UNDERCOUNTING",
    "UNRELIABLE",
    "UNVETTED",
    "VERDICTS",
    "ValidationReport",
    "VetSmokeOutcome",
    "VetStamp",
    "anomalies_from_diff",
    "detect_drift",
    "forge_registry",
    "parse_forge_spec",
    "run_campaign",
    "run_vet_smoke",
    "stale_entry_rows",
]
