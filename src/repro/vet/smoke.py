"""End-to-end smoke test of the counter-validation layer.

One seeded scenario exercising the whole vet loop on SPR, mirroring
:mod:`repro.guard.smoke`:

1. a clean ``cpu_flops`` analysis picks the target: a deterministic
   event the QRCP selection actually depends on;
2. a healthy validation campaign must refute nothing;
3. the same campaign with the target forged to overcount by 1.5x must
   hand down an ``overcounting`` (refuted) verdict — while the forged
   registry's content digests stay bit-identical to the clean one
   (metadata cannot reveal the forgery; only measurement can);
4. a pipeline run under the forged priors must exclude the target from
   QRCP selection and stamp the definitions with the evidence;
5. a run under the *healthy* campaign's priors must be bit-identical to
   a prior-free run — coefficients byte for byte;
6. publishing the clean and the forged-prior analyses to a catalog must
   produce a version transition that ``vet drift`` flags.

Exit semantics mirror the guard smoke: ``passed`` is True only when
every assertion held, and ``describe()`` ends with a PASS/FAIL verdict
line the CI job greps.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.pipeline import AnalysisPipeline
from repro.hardware.systems import aurora_node
from repro.serve.catalog import MetricCatalogStore, entries_from_result
from repro.vet.campaign import CampaignConfig, run_campaign
from repro.vet.drift import detect_drift
from repro.vet.forge import forge_registry
from repro.vet.model import OVERCOUNTING
from repro.vet.priors import TrustPriors

__all__ = ["VetSmokeOutcome", "run_vet_smoke"]

#: The forged deviation: deliberately non-integer so the verdict is
#: ``overcounting`` (an integer ratio would — correctly — classify as
#: multi-counting instead).
FORGE_FACTOR = 1.5
SMOKE_DOMAIN = "cpu_flops"


@dataclass
class VetSmokeOutcome:
    """Everything the smoke scenario observed, plus the verdict."""

    seed: int
    target_event: str = ""
    forged_verdict: Optional[str] = None
    healthy_refuted: Tuple[str, ...] = ()
    excluded_by_prior: Tuple[str, ...] = ()
    drift_anomaly_kinds: Tuple[str, ...] = ()
    bit_identical: bool = False
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"vet smoke (seed {self.seed}, domain {SMOKE_DOMAIN})",
            f"  target event: {self.target_event or '<none selected>'}",
            f"  healthy campaign refuted: "
            f"{', '.join(self.healthy_refuted) or 'none'}",
            f"  forged verdict: {self.forged_verdict or '<missing>'}",
            f"  excluded by priors: "
            f"{', '.join(self.excluded_by_prior) or 'none'}",
            f"  healthy-prior run bit-identical: {self.bit_identical}",
            f"  drift anomalies: "
            f"{', '.join(self.drift_anomaly_kinds) or 'none'}",
        ]
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def run_vet_smoke(
    seed: int = 2024, root: Optional[Union[str, Path]] = None
) -> VetSmokeOutcome:
    """Run the seeded forged-overcounter scenario on SPR.

    ``root`` hosts the scratch catalog for the drift leg (a temp
    directory by default).
    """
    outcome = VetSmokeOutcome(seed=seed)
    campaign = CampaignConfig(
        seed=seed, n_configs=2, repetitions=3, domains=(SMOKE_DOMAIN,)
    )

    # Leg 1: clean analysis; the target must be a deterministic event the
    # selection depends on, so its exclusion visibly changes composition.
    node = aurora_node(seed=seed)
    clean = AnalysisPipeline.for_domain(SMOKE_DOMAIN, node).run()
    target = next(
        (
            event
            for event in clean.selected_events
            if node.events.get(event).noise.is_deterministic
        ),
        "",
    )
    outcome.target_event = target
    if not target:
        outcome.failures.append(
            "no deterministic event among the QRCP-selected set"
        )
        return outcome

    # Leg 2: a healthy campaign must refute nothing.
    healthy = run_campaign("aurora", campaign)
    outcome.healthy_refuted = tuple(healthy.refuted_events())
    if outcome.healthy_refuted:
        outcome.failures.append(
            f"healthy campaign refuted {len(outcome.healthy_refuted)} "
            f"event(s): {', '.join(outcome.healthy_refuted)}"
        )

    # Leg 3: forge the target and re-campaign; metadata must not give the
    # forgery away, measurement must.
    forge_spec = {target: ("overcount", FORGE_FACTOR)}
    forged_registry = forge_registry(node.events, forge_spec)
    if (
        forged_registry.content_digest() != node.events.content_digest()
        or forged_registry.event_digests()[target]
        != node.events.event_digests()[target]
    ):
        outcome.failures.append(
            "forged registry digests differ from clean — the forgery "
            "should be metadata-invisible"
        )
    forged_report = run_campaign("aurora", campaign, forge=forge_spec)
    verdict = forged_report.verdicts.get(target)
    outcome.forged_verdict = verdict.verdict if verdict is not None else None
    if verdict is None or verdict.verdict != OVERCOUNTING:
        outcome.failures.append(
            f"forged x{FORGE_FACTOR} event judged "
            f"{outcome.forged_verdict or 'unvetted'}, expected {OVERCOUNTING}"
        )
    elif not verdict.refuted:
        outcome.failures.append("overcounting verdict not marked refuted")

    # Leg 4: the forged priors must bar the target from composition.
    priors = TrustPriors.from_report(forged_report)
    forged_node = aurora_node(seed=seed)
    forged_node.events = forged_registry
    vetted = AnalysisPipeline.for_domain(
        SMOKE_DOMAIN, forged_node, priors=priors
    ).run()
    outcome.excluded_by_prior = tuple(vetted.noise.excluded_by_prior)
    if target in vetted.selected_events:
        outcome.failures.append(
            f"{target} still in the QRCP selection under refuting priors"
        )
    if target not in outcome.excluded_by_prior:
        outcome.failures.append(
            f"{target} not recorded as excluded-by-prior"
        )
    if any(m.vet is None for m in vetted.metrics.values()):
        outcome.failures.append("vet stamp missing from composed metrics")

    # Leg 5: healthy priors must change nothing, byte for byte.
    healthy_priors = TrustPriors.from_report(healthy)
    prior_free = AnalysisPipeline.for_domain(
        SMOKE_DOMAIN, aurora_node(seed=seed)
    ).run()
    under_priors = AnalysisPipeline.for_domain(
        SMOKE_DOMAIN, aurora_node(seed=seed), priors=healthy_priors
    ).run()
    outcome.bit_identical = (
        prior_free.selected_events == under_priors.selected_events
        and list(prior_free.metrics) == list(under_priors.metrics)
        and all(
            prior_free.metrics[name].coefficients.tobytes()
            == under_priors.metrics[name].coefficients.tobytes()
            and prior_free.metrics[name].error
            == under_priors.metrics[name].error
            for name in prior_free.metrics
        )
        and np.array_equal(
            prior_free.qrcp.selected, under_priors.qrcp.selected
        )
    )
    if not outcome.bit_identical:
        outcome.failures.append(
            "run under all-accurate priors is not bit-identical to the "
            "prior-free run"
        )

    # Leg 6: the clean -> vetted catalog transition must be flagged.
    catalog_root = (
        Path(root) if root is not None else Path(tempfile.mkdtemp(prefix="vet-smoke-"))
    )
    store = MetricCatalogStore(catalog_root / "catalog", durable=False)
    events_digest = node.events.content_digest()
    for entry in entries_from_result(
        clean, arch=node.name, seed=seed, events_digest=events_digest
    ):
        store.put(entry)
    for entry in entries_from_result(
        vetted, arch=node.name, seed=seed, events_digest=events_digest
    ):
        store.put(entry)
    drift = detect_drift(store, arch=node.name)
    outcome.drift_anomaly_kinds = tuple(sorted(drift.by_kind()))
    if not drift.flagged:
        outcome.failures.append(
            "vet drift found no anomalies across the clean -> vetted "
            "catalog transition"
        )
    composition_kinds = {"term-change", "coefficient-drift"}
    if drift.flagged and not composition_kinds & set(
        outcome.drift_anomaly_kinds
    ):
        outcome.failures.append(
            "drift anomalies lack a composition change "
            f"({', '.join(outcome.drift_anomaly_kinds)})"
        )
    return outcome
