"""Forged counters: events whose firings contradict their documentation.

A validation layer is only trustworthy if it catches counters that lie,
so the test substrate needs counters that lie *on purpose*.  A
:class:`ForgedEvent` keeps the clean event's name, documented response and
noise model — its registry metadata and content digests are bit-identical
to the honest twin's (property-tested) — but its ``true_count`` silently
deviates, exactly like real silicon whose event fires differently than
the manual says.  Only measurement against expectation can tell them
apart, which is the premise of :mod:`repro.vet`.

Forge kinds mirror the Röhl taxonomy:

* ``overcount`` / ``undercount`` — multiply the true count by ``factor``
  (pick a non-integer factor like 1.5 for an overcount verdict; an
  integer factor >= 2 is, correctly, classified as multi-counting).
* ``multicount`` — multiply by an integer factor >= 2 (one firing per
  SIMD lane instead of per instruction, etc.).
* ``unreliable`` — a deterministic but kernel-dependent wobble: the
  deviation changes with the workload, so no single correction factor
  explains it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.activity import Activity
from repro.events.model import RawEvent
from repro.events.registry import EventRegistry

__all__ = ["FORGE_KINDS", "ForgedEvent", "forge_registry", "parse_forge_spec"]

FORGE_KINDS = ("overcount", "undercount", "multicount", "unreliable")


@dataclass(frozen=True)
class ForgedEvent(RawEvent):
    """A counter whose firings deviate from its documented response.

    The overridden ``true_count`` routes the event through the
    measurement runner's scalar fallback path automatically (the packed
    weight matrix only covers events with the stock linear response), so
    forging needs no runner changes.
    """

    forge_kind: str = "overcount"
    forge_factor: float = 1.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.forge_kind not in FORGE_KINDS:
            raise ValueError(
                f"unknown forge kind {self.forge_kind!r}; "
                f"expected one of {FORGE_KINDS}"
            )
        if self.forge_factor <= 0:
            raise ValueError("forge_factor must be positive")

    def true_count(self, activity: Activity) -> float:
        base = RawEvent.true_count(self, activity)
        if self.forge_kind == "unreliable":
            # Deterministic but workload-dependent: the wobble phase is a
            # pseudo-random function of the count itself, so different
            # kernel rows see different deviation ratios and no constant
            # factor fits.
            wobble = math.sin(0.37 * math.fmod(base, 997.0) + 1.0)
            return base * (1.0 + self.forge_factor * wobble)
        return self.forge_factor * base


def forge_registry(
    registry: EventRegistry,
    spec: Mapping[str, Tuple[str, float]],
) -> EventRegistry:
    """A copy of ``registry`` with the events named in ``spec`` forged.

    ``spec`` maps full event names to ``(kind, factor)``.  Unknown names
    raise — a forged campaign that silently forged nothing would pass
    vacuously.
    """
    missing = [name for name in spec if name not in registry]
    if missing:
        raise KeyError(
            f"cannot forge events absent from registry "
            f"{registry.name!r}: {', '.join(sorted(missing))}"
        )
    forged = EventRegistry(name=f"{registry.name}[forged:{len(spec)}]")
    for event in registry:
        plan = spec.get(event.full_name)
        if plan is None:
            forged.add(event)
            continue
        kind, factor = plan
        forged.add(
            ForgedEvent(
                name=event.name,
                qualifier=event.qualifier,
                domain=event.domain,
                response=event.response,
                noise=event.noise,
                description=event.description,
                device=event.device,
                forge_kind=kind,
                forge_factor=float(factor),
            )
        )
    return forged


def parse_forge_spec(specs) -> Dict[str, Tuple[str, float]]:
    """Parse CLI ``EVENT=KIND[:FACTOR]`` forge directives.

    >>> parse_forge_spec(["PAPI_TOT_INS=overcount:1.5"])
    {'PAPI_TOT_INS': ('overcount', 1.5)}
    """
    defaults = {
        "overcount": 1.5,
        "undercount": 0.5,
        "multicount": 2.0,
        "unreliable": 0.5,
    }
    parsed: Dict[str, Tuple[str, float]] = {}
    for spec in specs:
        event, sep, directive = spec.partition("=")
        if not sep or not event or not directive:
            raise ValueError(
                f"malformed forge spec {spec!r}; expected EVENT=KIND[:FACTOR]"
            )
        kind, _, factor_text = directive.partition(":")
        if kind not in FORGE_KINDS:
            raise ValueError(
                f"unknown forge kind {kind!r} in {spec!r}; "
                f"expected one of {FORGE_KINDS}"
            )
        factor = float(factor_text) if factor_text else defaults[kind]
        parsed[event] = (kind, factor)
    return parsed
