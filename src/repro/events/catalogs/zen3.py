"""Raw-event catalog for an AMD Zen 3 "Trento" CPU (Frontier's host CPU).

The paper runs its CPU experiments on Aurora's Sapphire Rapids; this third
catalog extends the evaluation to the CPU side of Frontier, and it exists
to exercise a sentence from the paper's Section III-B directly:

> "several AMD processors do not offer different events for strictly
> single-precision, or strictly double-precision instructions."

Zen-family FP counters (``FP_RET_SSE_AVX_OPS``) count *floating-point
operations* — FLOPs, not instructions — and merge the precisions, so:

* "All FP Ops." composes exactly (``ADD_SUB_FLOPS + MAC_FLOPS``), while
* "SP Ops." / "DP Ops." are *uncomposable* on this architecture, and the
  pipeline's backward error reports it — the mirror image of the Intel
  FMA finding.

The branch and cache families also differ structurally from Intel's:

* there is no not-taken counter, but there *is* a taken counter that
  includes unconditional branches (``EX_RET_BRN_TKN``) and a dedicated
  unconditional counter, so "Conditional Branches Taken" composes as
  ``EX_RET_BRN_TKN - EX_RET_UNCOND_BRNCH_INSTR``;
* there is no L1D *hit* event — only accesses (``LS_DC_ACCESSES``) and
  miss-buffer allocations (``LS_MAB_ALLOC``) — so "L1 Hits" composes by
  subtraction.

Same method, same signatures, different raw vocabulary: exactly the
portability scenario the paper's introduction motivates.
"""

from __future__ import annotations

from typing import Dict, List

from repro.events.catalogs._builders import family
from repro.events.model import EventDomain, RawEvent
from repro.events.registry import EventRegistry
from repro.activity import (
    FP_PRECISIONS,
    FP_WIDTHS,
    flops_per_instruction,
    fp_instr_key,
)

__all__ = ["zen3_events"]


def _fp_events() -> List[RawEvent]:
    # FLOP-counting, precision-merged semantics.
    add_sub: Dict[str, float] = {}
    mac: Dict[str, float] = {}
    for width in FP_WIDTHS:
        for prec in FP_PRECISIONS:
            add_sub[fp_instr_key(width, prec, "nonfma")] = float(
                flops_per_instruction(width, prec, fma=False)
            )
            mac[fp_instr_key(width, prec, "fma")] = float(
                flops_per_instruction(width, prec, fma=True)
            )
    merged = dict(add_sub)
    for key, value in mac.items():
        merged[key] = merged.get(key, 0.0) + value

    events: List[RawEvent] = []
    events.extend(
        family(
            "FP_RET_SSE_AVX_OPS",
            EventDomain.FLOPS,
            {
                "ADD_SUB_FLOPS": add_sub,
                "MAC_FLOPS": mac,
                "MULT_FLOPS": {},  # CAT non-FMA kernels are additions
                "DIV_FLOPS": {},
                "ANY": merged,
            },
            noise_class="exact",
            descriptions={
                "ADD_SUB_FLOPS": "Retired add/subtract FLOPs, all precisions "
                "and vector widths merged.",
                "MAC_FLOPS": "Retired multiply-accumulate FLOPs (2 per MAC).",
            },
        )
    )
    events.extend(
        family(
            "FP_RET_X87_FP_OPS",
            EventDomain.FLOPS,
            {"ALL": {}, "ADD_SUB_OPS": {}, "MUL_OPS": {}},
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "FP_DISP_FAULTS",
            EventDomain.FLOPS,
            {"YMM_FILL_FAULT": {}, "YMM_SPILL_FAULT": {}, "SSE_AVX_ALL": {}},
            noise_class="idle_floor",
        )
    )
    return events


def _branch_events() -> List[RawEvent]:
    events: List[RawEvent] = []
    branch_families: Dict[str, Dict[str, float]] = {
        "EX_RET_BRN": {
            "branch.cond_retired": 1.0,
            "branch.uncond_direct": 1.0,
            "branch.uncond_indirect": 1.0,
            "branch.call": 1.0,
            "branch.return": 1.0,
        },
        # Taken branches *including* unconditional transfers.
        "EX_RET_BRN_TKN": {
            "branch.cond_taken": 1.0,
            "branch.uncond_direct": 1.0,
            "branch.uncond_indirect": 1.0,
            "branch.call": 1.0,
            "branch.return": 1.0,
        },
        "EX_RET_BRN_TKN_MISP": {"branch.misp_taken": 1.0},
        "EX_RET_BRN_MISP": {"branch.mispredicted": 1.0},
        "EX_RET_COND": {"branch.cond_retired": 1.0},
        "EX_RET_COND_MISP": {"branch.mispredicted": 1.0},
        "EX_RET_UNCOND_BRNCH_INSTR": {"branch.uncond_direct": 1.0},
        "EX_RET_NEAR_RET": {"branch.return": 1.0},
        "EX_RET_NEAR_RET_MISPRED": {},
        "EX_RET_BRN_FAR": {},
        "EX_RET_BRN_IND_MISP": {},
    }
    for name, response in branch_families.items():
        events.extend(
            family(
                name,
                EventDomain.BRANCH,
                {"": response},
                noise_class="exact" if response else "idle_floor",
            )
        )
    events.extend(
        family(
            "EX_NO_RETIRE",
            EventDomain.PIPELINE,
            {
                "NOT_COMPLETE": {"stall.total": 0.6},
                "ALL": {"stall.total": 1.0},
            },
            noise_class="timing_coarse",
        )
    )
    return events


def _cache_events() -> List[RawEvent]:
    events: List[RawEvent] = []
    events.extend(
        family(
            "LS_DC_ACCESSES",
            EventDomain.CACHE,
            # All data-cache accesses; Zen has no hit-only counter.
            {"": {"cache.l1d.demand_hit": 1.0, "cache.l1d.demand_miss": 1.0}},
            noise_class="memory",
            descriptions={"": "All data cache accesses (hits and misses)."},
        )
    )
    events.extend(
        family(
            "LS_MAB_ALLOC",
            EventDomain.CACHE,
            {
                "LOAD_STORE_ALLOCATIONS": {"cache.l1d.demand_miss": 1.0},
                "HARDWARE_PREFETCHER_ALLOCATIONS": {"cache.l2.prefetch_req": 0.5},
                "ALL_ALLOCATIONS": {
                    "cache.l1d.demand_miss": 1.0,
                    "cache.l2.prefetch_req": 0.5,
                },
            },
            noise_class="memory",
        )
    )
    events.extend(
        family(
            "L2_CACHE_REQ_STAT",
            EventDomain.CACHE,
            {
                "DC_ACCESS_HIT": {"cache.l2.demand_rd_hit": 1.0},
                "DC_ACCESS_MISS": {"cache.l2.demand_rd_miss": 1.0},
                "DC_ACCESS_ALL": {
                    "cache.l2.demand_rd_hit": 1.0,
                    "cache.l2.demand_rd_miss": 1.0,
                },
                "IC_ACCESS_HIT": {},
                "IC_ACCESS_MISS": {},
            },
            noise_class="memory",
            noise_overrides={"IC_ACCESS_HIT": "idle_floor", "IC_ACCESS_MISS": "idle_floor"},
        )
    )
    events.extend(
        family(
            "L3_LOOKUP_STATE",
            EventDomain.CACHE,
            {
                "L3_HIT": {"cache.l3.hit": 1.0},
                "L3_MISS": {"cache.l3.miss": 1.0},
                "ALL_COHERENT_ACCESSES_TO_L3": {
                    "cache.l3.hit": 1.0,
                    "cache.l3.miss": 1.0,
                },
            },
            noise_class="memory",
        )
    )
    events.extend(
        family(
            "LS_REFILLS_FROM_SYS",
            EventDomain.CACHE,
            {
                "LCL_L2": {"cache.l2.demand_rd_hit": 1.0},
                "LCL_CACHE": {"cache.l3.hit": 0.97},
                "RMT_CACHE": {"cache.l3.hit": 0.03},
                "LCL_DRAM": {"cache.l3.miss": 0.96},
                "RMT_DRAM": {"cache.l3.miss": 0.04},
            },
            # Source attribution through the fabric is flaky on real parts.
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "L2_PF_HIT_L2",
            EventDomain.CACHE,
            {"": {"cache.l2.prefetch_req": 0.6}},
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "L2_PF_MISS_L2_HIT_L3",
            EventDomain.CACHE,
            {"": {"cache.l2.prefetch_req": 0.3}},
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "LS_HW_PF_DC_FILLS",
            EventDomain.MEMORY,
            {
                "LCL_L2": {"cache.l2.prefetch_req": 0.4},
                "LCL_DRAM": {"cache.l2.prefetch_req": 0.1},
            },
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "LS_DISPATCH",
            EventDomain.MEMORY,
            {
                "LD_DISPATCH": {"mem.loads_retired": 1.0},
                "STORE_DISPATCH": {"mem.stores_retired": 1.0},
                "LD_ST_DISPATCH": {
                    "mem.loads_retired": 1.0,
                    "mem.stores_retired": 1.0,
                },
            },
            noise_class="exact",
        )
    )
    return events


def _tlb_events() -> List[RawEvent]:
    events: List[RawEvent] = []
    events.extend(
        family(
            "LS_L1_D_TLB_MISS",
            EventDomain.TLB,
            {
                "ALL": {"tlb.dtlb_load_miss": 1.0},
                "TLB_RELOAD_4K_L2_HIT": {"tlb.stlb_hit": 0.9},
                "TLB_RELOAD_2M_L2_HIT": {"tlb.stlb_hit": 0.1},
                "TLB_RELOAD_4K_L2_MISS": {"tlb.walks": 0.9},
                "TLB_RELOAD_2M_L2_MISS": {"tlb.walks": 0.1},
            },
            noise_class="memory",
        )
    )
    events.extend(
        family(
            "LS_TABLEWALKER",
            EventDomain.TLB,
            {
                "DC_TYPE0": {"tlb.walks": 0.5},
                "DC_TYPE1": {"tlb.walks": 0.5},
                "IC_TYPE0": {"tlb.itlb_miss": 0.5},
                "IC_TYPE1": {"tlb.itlb_miss": 0.5},
            },
            noise_class="memory",
        )
    )
    return events


def _pipeline_events() -> List[RawEvent]:
    events: List[RawEvent] = []
    events.extend(
        family(
            "LS_NOT_HALTED_CYC",
            EventDomain.PIPELINE,
            {"": {"cycles.core": 1.0}},
            noise_class="timing",
        )
    )
    events.extend(
        family(
            "EX_RET_INSTR",
            EventDomain.PIPELINE,
            {"": {"instr.total": 1.0}},
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "EX_RET_OPS",
            EventDomain.PIPELINE,
            {"": {"uops.retired": 1.0}},
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "DE_SRC_OP_DISP",
            EventDomain.FRONTEND,
            {
                "DECODER": {"frontend.mite_uops": 1.0},
                "OP_CACHE": {"frontend.dsb_uops": 1.0},
                "ALL": {"frontend.mite_uops": 1.0, "frontend.dsb_uops": 1.0},
            },
            noise_class="timing",
        )
    )
    events.extend(
        family(
            "DE_DIS_DISPATCH_TOKEN_STALLS1",
            EventDomain.PIPELINE,
            {
                "INT_SCHEDULER_MISC_RSRC_STALL": {"stall.exec": 0.3},
                "LOAD_QUEUE_RSRC_STALL": {"stall.mem": 0.4},
                "STORE_QUEUE_RSRC_STALL": {"stall.mem": 0.05},
                "FP_SCH_RSRC_STALL": {"stall.exec": 0.2},
            },
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "IC_TAG_HIT_MISS",
            EventDomain.FRONTEND,
            {
                "INSTRUCTION_CACHE_HIT": {"frontend.dsb_uops": 0.3},
                "INSTRUCTION_CACHE_MISS": {"frontend.fetch_bubbles": 0.02},
                "ALL_INSTRUCTION_CACHE_ACCESSES": {"frontend.dsb_uops": 0.31},
            },
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "RESYNCS_OR_NC_REDIRECTS",
            EventDomain.PIPELINE,
            {"": {"machine_clears": 1.0}},
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "EX_DIV",
            EventDomain.PIPELINE,
            {"BUSY": {"instr.div": 10.0}, "COUNT": {"instr.div": 1.0}},
            noise_class="exact",
        )
    )
    return events


def _extended_events() -> List[RawEvent]:
    """Long tail: dead units, fabric counters, idle-floor noise fodder."""
    events: List[RawEvent] = []
    events.extend(
        family(
            "LS_STLF",
            EventDomain.MEMORY,
            {"": {}},
            noise_class="idle_floor",
        )
    )
    events.extend(
        family(
            "LS_BAD_STATUS2",
            EventDomain.MEMORY,
            {"STLI_OTHER": {}},
            noise_class="idle_floor",
        )
    )
    events.extend(
        family(
            "LS_LOCKS",
            EventDomain.MEMORY,
            {"BUS_LOCK": {}, "NON_SPEC_LOCK": {}, "SPEC_LOCK_HI_SPEC": {}},
            noise_class="idle_floor",
        )
    )
    events.extend(
        family(
            "LS_RET_CL_FLUSH",
            EventDomain.MEMORY,
            {"": {}},
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "LS_SMI_RX",
            EventDomain.OTHER,
            {"": {}},
            noise_class="idle_floor",
        )
    )
    events.extend(
        family(
            "LS_INT_TAKEN",
            EventDomain.OTHER,
            {"": {"sw.context_switches": 0.5}},
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "DF_REQUESTS",  # data-fabric traffic (uncore-like)
            EventDomain.MEMORY,
            {
                "UMC_RD": {"cache.l3.miss": 1.0},
                "UMC_WR": {"cache.l3.miss": 0.1},
                "IO_RD": {},
                "IO_WR": {},
            },
            noise_class="offcore",
            noise_overrides={"IO_RD": "idle_floor", "IO_WR": "idle_floor"},
        )
    )
    events.extend(
        family(
            "DF_CYCLES",
            EventDomain.OTHER,
            {"": {"cycles.ref": 0.7}},
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "L3_XI_SAMPLED_LATENCY",
            EventDomain.CACHE,
            {"ALL": {"cache.l3.miss": 40.0}, "DRAM_NEAR": {"cache.l3.miss": 35.0}},
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "OP_CACHE_HIT_MISS",
            EventDomain.FRONTEND,
            {
                "OP_CACHE_HIT": {"frontend.dsb_uops": 0.95},
                "OP_CACHE_MISS": {"frontend.mite_uops": 0.9},
                "ALL_OP_CACHE_ACCESSES": {
                    "frontend.dsb_uops": 0.95,
                    "frontend.mite_uops": 0.9,
                },
            },
            noise_class="timing",
        )
    )
    events.extend(
        family(
            "DE_DIS_UOP_QUEUE_EMPTY_DI0",
            EventDomain.FRONTEND,
            {"": {"frontend.fetch_bubbles": 0.8}},
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "EX_RET_MMX_FP_INSTR",
            EventDomain.FLOPS,
            {"SSE_INSTR": {}, "MMX_INSTR": {}, "X87_INSTR": {}},
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "EX_TAGGED_IBS_OPS",
            EventDomain.PIPELINE,
            {"IBS_COUNT_ROLLOVER": {}, "IBS_TAGGED_OPS": {"uops.retired": 0.001}},
            noise_class="idle_floor",
            noise_overrides={"IBS_TAGGED_OPS": "timing_coarse"},
        )
    )
    events.extend(
        family(
            "EX_RET_FUSED_INSTR",
            EventDomain.PIPELINE,
            {"": {"branch.cond_retired": 0.9}},
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "PROBE_STALLS",
            EventDomain.MEMORY,
            {"": {"stall.mem": 0.05}},
            noise_class="timing_coarse",
        )
    )
    return events


def zen3_events() -> EventRegistry:
    """Build the Zen 3 (Trento) core-event catalog (deterministic)."""
    registry = EventRegistry(name="amd_zen3_trento")
    for builder in (
        _fp_events,
        _branch_events,
        _cache_events,
        _tlb_events,
        _pipeline_events,
        _extended_events,
    ):
        registry.extend(builder())
    return registry
