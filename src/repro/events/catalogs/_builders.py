"""Shared helpers for constructing per-architecture event catalogs.

Catalogs must be *deterministic*: the same architecture always yields the
same events with the same noise parameters, so that repeated pipeline runs
are reproducible and tests can assert on exact event lists.  Noise
magnitudes are therefore derived from a CRC of the event's full name rather
than from any global random state.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.events.model import RawEvent
from repro.events.noise import NoiseModel, no_noise, relative_gaussian, spiky

__all__ = [
    "family",
    "name_rng",
    "log_uniform_sigma",
    "noise_for_class",
]


def name_rng(full_name: str, salt: str = "") -> np.random.Generator:
    """A generator seeded stably from an event name (catalog determinism)."""
    seed = zlib.crc32(f"{salt}|{full_name}".encode())
    return np.random.default_rng(seed)


def log_uniform_sigma(full_name: str, lo: float, hi: float, salt: str = "noise") -> float:
    """Draw a log-uniform magnitude in ``[lo, hi]`` keyed to the event name."""
    if not (0 < lo <= hi):
        raise ValueError(f"invalid sigma range [{lo}, {hi}]")
    rng = name_rng(full_name, salt)
    return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))


#: Named noise classes used across catalogs.  The magnitudes reproduce the
#: taxonomy of paper Figure 2: retired-instruction counts are bit-exact;
#: time-like pipeline quantities span many decades of small variability;
#: memory-subsystem counters are markedly noisier; idle counters with a
#: noise floor produce the >1 ("100%+ error") extreme of the tail.
_NOISE_CLASSES = {
    "exact": lambda name: no_noise(),
    # Real-hardware timing counters vary by at least ~1e-4 run to run
    # (paper Fig. 2a: the noisy tail starts above 1e-4, giving the
    # 1e-15..1e-4 free window for tau).
    "timing": lambda name: relative_gaussian(log_uniform_sigma(name, 1.5e-4, 1e-2)),
    "timing_coarse": lambda name: relative_gaussian(log_uniform_sigma(name, 1e-3, 1e-1)),
    "memory": lambda name: relative_gaussian(
        log_uniform_sigma(name, 5e-4, 1e-2),
        floor=log_uniform_sigma(name, 1e-4, 2e-3, "floor"),
    ),
    "offcore": lambda name: spiky(
        log_uniform_sigma(name, 1.2e-1, 8e-1),
        spike_rate=0.1,
        spike_scale=log_uniform_sigma(name, 0.5, 4.0, "spike"),
        floor=log_uniform_sigma(name, 1e-3, 3e-2, "floor"),
    ),
    "idle_floor": lambda name: relative_gaussian(0.0, floor=log_uniform_sigma(name, 0.5, 50.0, "floor")),
}


def noise_for_class(full_name: str, noise_class: str) -> NoiseModel:
    """Instantiate the named noise class for an event."""
    try:
        factory = _NOISE_CLASSES[noise_class]
    except KeyError:
        raise ValueError(
            f"unknown noise class {noise_class!r}; expected one of {sorted(_NOISE_CLASSES)}"
        ) from None
    return factory(full_name)


def family(
    name: str,
    domain: str,
    umasks: Mapping[str, Mapping[str, float]],
    noise_class: str = "exact",
    descriptions: Optional[Mapping[str, str]] = None,
    noise_overrides: Optional[Mapping[str, str]] = None,
    device: Optional[int] = None,
) -> Iterable[RawEvent]:
    """Build all events of one family (base name + umask table).

    Parameters
    ----------
    name:
        Family base name (``BR_INST_RETIRED``).
    domain:
        :class:`~repro.events.model.EventDomain` tag for every member.
    umasks:
        Mapping of qualifier -> response weights.  An empty-string qualifier
        produces the unqualified event.
    noise_class:
        Default noise class for the family (see ``noise_for_class``).
    descriptions:
        Optional per-qualifier documentation strings.
    noise_overrides:
        Optional per-qualifier noise-class overrides.
    device:
        GPU device qualifier, passed through to the events.
    """
    descriptions = descriptions or {}
    noise_overrides = noise_overrides or {}
    for qualifier, response in umasks.items():
        full = f"{name}:{qualifier}" if qualifier else name
        if device is not None:
            full = f"rocm:::{full}:device={device}"
        cls = noise_overrides.get(qualifier, noise_class)
        yield RawEvent(
            name=name,
            qualifier=qualifier,
            domain=domain,
            response=dict(response),
            noise=noise_for_class(full, cls),
            description=descriptions.get(qualifier, ""),
            device=device,
        )
