"""Per-architecture raw-event catalogs."""

from repro.events.catalogs.mi250x import MI250X_DEVICE_COUNT, mi250x_events
from repro.events.catalogs.sapphire_rapids import sapphire_rapids_events
from repro.events.catalogs.zen3 import zen3_events

__all__ = [
    "MI250X_DEVICE_COUNT",
    "mi250x_events",
    "sapphire_rapids_events",
    "zen3_events",
]
