"""Raw-event catalog for an AMD MI250X GPU (Frontier node, `rocm:::` component).

Frontier exposes eight logical GPU devices per node; PAPI surfaces every
native event once per device (``rocm:::SQ_INSTS_VALU_ADD_F16:device=N``),
which is how the paper's GPU-FLOPs variability sweep reaches ~1200 measured
events (Figure 2c).  CAT runs its kernels on device 0, so device-0 events
respond to the workload while devices 1-7 read zero (plus an idle-noise
floor for busy/occupancy-style counters).

The semantic quirk the paper's Table VI hinges on: MI200-class hardware has
no subtraction-specific VALU counter — ``SQ_INSTS_VALU_ADD_F*`` counts both
additions and subtractions.  ``SQ_INSTS_VALU_TRANS_F*`` covers the
transcendental pipe (square roots in the CAT GPU benchmark), and FMA events
count *instructions* (one per FMA, unlike Intel's FP_ARITH double count).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.events.catalogs._builders import family
from repro.events.model import EventDomain, RawEvent
from repro.events.registry import EventRegistry
from repro.activity import VALU_PRECISIONS, valu_instr_key

__all__ = ["mi250x_events", "MI250X_DEVICE_COUNT"]

MI250X_DEVICE_COUNT = 8

#: (family name, domain, umask table, noise class) — responses are for the
#: device actually executing the kernels; other devices get zeroed copies.
def _device_families() -> List[Tuple[str, str, Dict[str, Dict[str, float]], str, Dict[str, str]]]:
    fams: List[Tuple[str, str, Dict[str, Dict[str, float]], str, Dict[str, str]]] = []

    # --- SQ: sequencer instruction counters (the key VALU events) ---------
    valu: Dict[str, Dict[str, float]] = {}
    prec_suffix = {"f16": "F16", "f32": "F32", "f64": "F64"}
    for prec in VALU_PRECISIONS:
        suffix = prec_suffix[prec]
        # No dedicated SUB counter: ADD fires for additions and subtractions.
        valu[f"SQ_INSTS_VALU_ADD_{suffix}"] = {
            valu_instr_key("add", prec): 1.0,
            valu_instr_key("sub", prec): 1.0,
        }
        valu[f"SQ_INSTS_VALU_MUL_{suffix}"] = {valu_instr_key("mul", prec): 1.0}
        valu[f"SQ_INSTS_VALU_TRANS_{suffix}"] = {valu_instr_key("trans", prec): 1.0}
        valu[f"SQ_INSTS_VALU_FMA_{suffix}"] = {valu_instr_key("fma", prec): 1.0}
    for name, response in valu.items():
        fams.append((name, EventDomain.GPU_VALU, {"": response}, "exact", {}))

    # Aggregates (dependent columns for the QR to discard).
    all_valu = {}
    for prec in VALU_PRECISIONS:
        for op in ("add", "sub", "mul", "trans", "fma"):
            all_valu[valu_instr_key(op, prec)] = 1.0
    all_valu["gpu.valu.int"] = 1.0
    fams.append(("SQ_INSTS_VALU", EventDomain.GPU_VALU, {"": all_valu}, "exact", {}))
    fams.append(
        (
            "SQ_INSTS_VALU_CVT",
            EventDomain.GPU_VALU,
            {"": {}},
            "exact",
            {"": "VALU conversion instructions (unused by CAT kernels)."},
        )
    )
    for prec, suffix in prec_suffix.items():
        fams.append(
            (
                f"SQ_INSTS_VALU_MFMA_{suffix}",
                EventDomain.GPU_VALU,
                {"": {}},
                "exact",
                {"": "Matrix-fused multiply-add instructions (idle in CAT)."},
            )
        )
    fams.append(("SQ_INSTS_VALU_INT32", EventDomain.GPU_VALU, {"": {"gpu.valu.int": 1.0}}, "exact", {}))
    fams.append(("SQ_INSTS_VALU_INT64", EventDomain.GPU_VALU, {"": {}}, "exact", {}))

    sq_misc: Dict[str, Dict[str, float]] = {
        "SQ_INSTS_SALU": {"gpu.salu": 1.0},
        "SQ_INSTS_SMEM": {"gpu.smem": 1.0},
        "SQ_INSTS_VMEM_RD": {"gpu.vmem.read": 1.0},
        "SQ_INSTS_VMEM_WR": {"gpu.vmem.write": 1.0},
        "SQ_INSTS_VMEM": {"gpu.vmem.read": 1.0, "gpu.vmem.write": 1.0},
        "SQ_INSTS_FLAT": {"gpu.flat": 1.0},
        "SQ_INSTS_FLAT_LDS_ONLY": {},
        "SQ_INSTS_LDS": {"gpu.lds": 1.0},
        "SQ_INSTS_GDS": {"gpu.gds": 1.0},
        "SQ_INSTS_BRANCH": {"gpu.branch": 1.0},
        "SQ_INSTS_CBRANCH": {"gpu.branch": 0.9},
        "SQ_INSTS_SENDMSG": {"gpu.sendmsg": 1.0},
        "SQ_INSTS_EXP_GDS": {},
        "SQ_INSTS": {
            "gpu.valu.total": 1.0,
            "gpu.salu": 1.0,
            "gpu.smem": 1.0,
            "gpu.vmem.read": 1.0,
            "gpu.vmem.write": 1.0,
            "gpu.branch": 1.0,
            "gpu.lds": 1.0,
        },
    }
    for name, response in sq_misc.items():
        fams.append((name, EventDomain.GPU_PIPELINE, {"": response}, "exact", {}))

    sq_timing: Dict[str, Dict[str, float]] = {
        "SQ_WAVES": {"gpu.waves": 1.0},
        "SQ_WAVES_EQ_64": {"gpu.waves": 1.0},
        "SQ_WAVES_LT_64": {},
        "SQ_WAVES_RESTORED": {},
        "SQ_WAVES_SAVED": {},
        "SQ_BUSY_CYCLES": {"gpu.busy_cycles": 1.0},
        "SQ_BUSY_CU_CYCLES": {"gpu.busy_cycles": 0.95},
        "SQ_WAVE_CYCLES": {"gpu.wave_cycles": 1.0},
        "SQ_CYCLES": {"gpu.cycles": 1.0},
        "SQ_ACTIVE_INST_VALU": {"gpu.valu_busy": 1.0},
        "SQ_ACTIVE_INST_SCA": {"gpu.salu_busy": 1.0},
        "SQ_ACTIVE_INST_LDS": {"gpu.lds": 2.0},
        "SQ_ACTIVE_INST_ANY": {"gpu.valu_busy": 1.0, "gpu.salu_busy": 1.0},
        "SQ_INST_CYCLES_SALU": {"gpu.salu": 4.0},
        "SQ_INST_CYCLES_SMEM": {"gpu.smem": 4.0},
        "SQ_INST_CYCLES_VMEM_RD": {"gpu.vmem.read": 4.0},
        "SQ_INST_CYCLES_VMEM_WR": {"gpu.vmem.write": 4.0},
        "SQ_WAIT_INST_LDS": {"gpu.lds": 1.5},
        "SQ_WAIT_ANY": {"gpu.mem_unit_stalled": 0.8},
        "SQ_IFETCH": {"gpu.fetch_size": 0.25},
        "SQ_ITEMS": {"gpu.waves": 64.0},
        "SQ_THREAD_CYCLES_VALU": {"gpu.valu_busy": 64.0},
    }
    for name, response in sq_timing.items():
        noise = "exact" if name in ("SQ_WAVES", "SQ_WAVES_EQ_64", "SQ_ITEMS") else "timing_coarse"
        if not response:
            noise = "idle_floor"
        fams.append((name, EventDomain.GPU_PIPELINE, {"": response}, noise, {}))

    # --- SQC: sequencer caches (instruction/constant) ----------------------
    sqc = {
        "SQC_ICACHE_REQ": {"gpu.fetch_size": 0.1},
        "SQC_ICACHE_HITS": {"gpu.fetch_size": 0.097},
        "SQC_ICACHE_MISSES": {"gpu.fetch_size": 0.003},
        "SQC_ICACHE_MISSES_DUPLICATE": {},
        "SQC_DCACHE_REQ": {"gpu.smem": 1.0},
        "SQC_DCACHE_HITS": {"gpu.smem": 0.98},
        "SQC_DCACHE_MISSES": {"gpu.smem": 0.02},
        "SQC_DCACHE_MISSES_DUPLICATE": {},
        "SQC_TC_REQ": {"gpu.smem": 0.03},
        "SQC_TC_DATA_READ_REQ": {"gpu.smem": 0.025},
    }
    for name, response in sqc.items():
        fams.append((name, EventDomain.GPU_MEMORY, {"": response}, "timing_coarse" if response else "idle_floor", {}))

    # --- TA/TD/TCP/TCC: vector-memory path ---------------------------------
    ta = {
        "TA_TA_BUSY": {"gpu.mem_unit_busy": 1.0},
        "TA_TOTAL_WAVEFRONTS": {"gpu.waves": 1.0},
        "TA_BUFFER_WAVEFRONTS": {"gpu.vmem.read": 0.5, "gpu.vmem.write": 0.5},
        "TA_BUFFER_READ_WAVEFRONTS": {"gpu.vmem.read": 0.5},
        "TA_BUFFER_WRITE_WAVEFRONTS": {"gpu.vmem.write": 0.5},
        "TA_FLAT_WAVEFRONTS": {"gpu.flat": 0.5},
        "TA_FLAT_READ_WAVEFRONTS": {"gpu.flat": 0.3},
        "TA_ADDR_STALLED_BY_TC_CYCLES": {"gpu.mem_unit_stalled": 0.4},
    }
    for name, response in ta.items():
        fams.append((name, EventDomain.GPU_MEMORY, {"": response}, "timing_coarse", {}))

    td = {
        "TD_TD_BUSY": {"gpu.mem_unit_busy": 0.9},
        "TD_TC_STALL": {"gpu.mem_unit_stalled": 0.5},
        "TD_LOAD_WAVEFRONT": {"gpu.vmem.read": 0.5, "gpu.flat": 0.3},
        "TD_STORE_WAVEFRONT": {"gpu.vmem.write": 0.5},
        "TD_ATOMIC_WAVEFRONT": {},
        "TD_COALESCABLE_WAVEFRONT": {"gpu.vmem.read": 0.4},
    }
    for name, response in td.items():
        fams.append((name, EventDomain.GPU_MEMORY, {"": response}, "timing_coarse" if response else "idle_floor", {}))

    tcp = {
        "TCP_TCP_TA_DATA_STALL_CYCLES": {"gpu.mem_unit_stalled": 0.6},
        "TCP_TD_TCP_STALL_CYCLES": {"gpu.mem_unit_stalled": 0.3},
        "TCP_TCR_TCP_STALL_CYCLES": {"gpu.mem_unit_stalled": 0.2},
        "TCP_READ_TAGCONFLICT_STALL_CYCLES": {"gpu.l1.miss": 0.1},
        "TCP_PENDING_STALL_CYCLES": {"gpu.mem_unit_stalled": 0.5},
        "TCP_TOTAL_CACHE_ACCESSES": {"gpu.l1.hit": 1.0, "gpu.l1.miss": 1.0},
        "TCP_CACHE_ACCESSES_HIT": {"gpu.l1.hit": 1.0},
        "TCP_CACHE_ACCESSES_MISS": {"gpu.l1.miss": 1.0},
        "TCP_TOTAL_WRITEBACK_INVALIDATES": {},
        "TCP_UTCL1_REQUEST": {"gpu.l1.hit": 1.0, "gpu.l1.miss": 1.0},
        "TCP_UTCL1_TRANSLATION_HIT": {"gpu.l1.hit": 0.99, "gpu.l1.miss": 0.99},
        "TCP_UTCL1_TRANSLATION_MISS": {"gpu.l1.miss": 0.01},
    }
    for name, response in tcp.items():
        fams.append((name, EventDomain.GPU_MEMORY, {"": response}, "memory" if response else "idle_floor", {}))

    tcc = {
        "TCC_HIT_sum": {"gpu.l2.hit": 1.0},
        "TCC_MISS_sum": {"gpu.l2.miss": 1.0},
        "TCC_REQ_sum": {"gpu.l2.hit": 1.0, "gpu.l2.miss": 1.0},
        "TCC_READ_sum": {"gpu.l2.hit": 0.7, "gpu.l2.miss": 0.7},
        "TCC_WRITE_sum": {"gpu.l2.hit": 0.3, "gpu.l2.miss": 0.3},
        "TCC_ATOMIC_sum": {},
        "TCC_EA_RDREQ_sum": {"gpu.l2.miss": 1.0},
        "TCC_EA_RDREQ_32B_sum": {"gpu.l2.miss": 0.2},
        "TCC_EA_WRREQ_sum": {"gpu.l2.miss": 0.3},
        "TCC_EA_WRREQ_64B_sum": {"gpu.l2.miss": 0.25},
        "TCC_EA_RDREQ_DRAM_sum": {"gpu.l2.miss": 0.95},
        "TCC_EA_WRREQ_DRAM_sum": {"gpu.l2.miss": 0.28},
        "TCC_TAG_STALL_sum": {"gpu.mem_unit_stalled": 0.2},
        "TCC_NORMAL_WRITEBACK_sum": {"gpu.l2.miss": 0.1},
        "TCC_ALL_TC_OP_WB_WRITEBACK_sum": {},
        "TCC_PROBE_sum": {},
    }
    for name, response in tcc.items():
        fams.append((name, EventDomain.GPU_MEMORY, {"": response}, "offcore" if response else "idle_floor", {}))

    # --- GRBM/SPI/CP: global pipeline occupancy ----------------------------
    grbm = {
        "GRBM_COUNT": {"gpu.cycles": 1.0},
        "GRBM_GUI_ACTIVE": {"gpu.busy_cycles": 1.0},
        "GRBM_CP_BUSY": {"gpu.busy_cycles": 0.3},
        "GRBM_SPI_BUSY": {"gpu.busy_cycles": 0.8},
        "GRBM_TA_BUSY": {"gpu.mem_unit_busy": 1.0},
        "GRBM_TC_BUSY": {"gpu.mem_unit_busy": 0.7},
        "GRBM_CB_BUSY": {},
        "GRBM_DB_BUSY": {},
        "GRBM_GDS_BUSY": {"gpu.gds": 5.0},
        "GRBM_EA_BUSY": {"gpu.l2.miss": 2.0},
    }
    for name, response in grbm.items():
        fams.append((name, EventDomain.GPU_PIPELINE, {"": response}, "timing_coarse" if response else "idle_floor", {}))

    spi = {
        "SPI_CSN_BUSY": {"gpu.busy_cycles": 0.6},
        "SPI_CSN_WINDOW_VALID": {"gpu.busy_cycles": 0.65},
        "SPI_CSN_NUM_THREADGROUPS": {"gpu.workgroups": 1.0},
        "SPI_CSN_WAVE": {"gpu.waves": 1.0},
        "SPI_RA_REQ_NO_ALLOC": {"gpu.mem_unit_stalled": 0.1},
        "SPI_RA_REQ_NO_ALLOC_CSN": {"gpu.mem_unit_stalled": 0.08},
        "SPI_RA_RES_STALL_CSN": {"gpu.mem_unit_stalled": 0.12},
        "SPI_RA_TMP_STALL_CSN": {},
        "SPI_RA_WAVE_SIMD_FULL_CSN": {"gpu.occupancy": 0.5},
        "SPI_RA_VGPR_SIMD_FULL_CSN": {},
        "SPI_RA_SGPR_SIMD_FULL_CSN": {},
        "SPI_VWC_CSC_WR": {"gpu.waves": 0.5},
    }
    for name, response in spi.items():
        fams.append((name, EventDomain.GPU_PIPELINE, {"": response}, "timing_coarse" if response else "idle_floor", {}))

    cp = {
        "CPC_ME1_BUSY_FOR_PACKET_DECODE": {"gpu.workgroups": 2.0},
        "CPC_UTCL1_STALL_ON_TRANSLATION": {},
        "CPC_ALWAYS_COUNT": {"gpu.cycles": 1.0},
        "CPC_CSN_BUSY": {"gpu.busy_cycles": 0.2},
        "CPF_CMP_UTCL1_STALL_ON_TRANSLATION": {},
        "CPF_CPF_STAT_BUSY": {"gpu.busy_cycles": 0.1},
        "CPF_CPF_STAT_IDLE": {"gpu.cycles": 0.9},
        "CPF_CPF_TCIU_BUSY": {"gpu.fetch_size": 0.05},
    }
    for name, response in cp.items():
        fams.append((name, EventDomain.GPU_PIPELINE, {"": response}, "timing_coarse" if response else "idle_floor", {}))

    gds = {
        "GDS_DS_ADDR_CONFLICT": {},
        "GDS_WBUF_BUSY": {},
        "GDS_INPUT_VALID": {"gpu.gds": 1.0},
        "GDS_VALID_BANK_CONFLICT": {},
    }
    for name, response in gds.items():
        fams.append((name, EventDomain.GPU_MEMORY, {"": response}, "idle_floor" if not response else "timing_coarse", {}))

    return fams


def mi250x_events(device_count: int = MI250X_DEVICE_COUNT, active_device: int = 0) -> EventRegistry:
    """Build the MI250X catalog: every family instantiated per device.

    Only ``active_device`` (where CAT launches its kernels) carries live
    responses; the other devices' copies are idle — instruction counters
    read exactly zero, busy/stall counters read an OS/driver noise floor.
    """
    registry = EventRegistry(name="amd_mi250x")
    for device in range(device_count):
        for name, domain, umasks, noise_class, descriptions in _device_families():
            if device == active_device:
                dev_umasks = umasks
                dev_noise = noise_class
            else:
                dev_umasks = {q: {} for q in umasks}
                # Idle devices: deterministic counters are silent (all-zero);
                # busy/stall counters tick a driver-activity floor.
                dev_noise = "idle_floor" if noise_class in ("timing_coarse", "offcore", "memory") else "exact"
            registry.extend(
                family(
                    name,
                    domain,
                    dev_umasks,
                    noise_class=dev_noise,
                    descriptions=descriptions,
                    device=device,
                )
            )
    return registry
