"""Raw-event catalog for an Intel Sapphire Rapids (SPR) core.

This models the native-event universe a PAPI ``papi_native_avail`` sweep
exposes on Aurora's SPR CPUs: ~330 core events across floating-point,
branch, memory-subsystem, TLB, pipeline and frontend families, plus
dead-on-this-workload families (AMX, TSX, uncore-ish) that produce the
all-zero and noise-floor columns the analysis pipeline must survive.

Semantics worth calling out because the paper's results depend on them:

* ``FP_ARITH_INST_RETIRED:*`` events count each FMA instruction **twice**
  (documented Intel behaviour).  This is what makes "SP/DP FMA Instrs."
  uncomposable in isolation (paper Table V: coefficients 0.8, backward
  error 2.36e-1) while the Instr/Ops metrics compose exactly.
* Sapphire Rapids has no ``BR_INST_EXEC``-style *executed* (speculative)
  branch event — the family was dropped after Skylake — so "Conditional
  Branches Executed" cannot be composed (paper Table VII: error 1.0).
* ``MEM_LOAD_RETIRED`` / ``L2_RQSTS`` events carry memory-class noise;
  instruction-retired counts are bit-exact.
"""

from __future__ import annotations

from typing import Dict, List

from repro.events.catalogs._builders import family
from repro.events.model import EventDomain, RawEvent
from repro.events.registry import EventRegistry
from repro.activity import fp_instr_key

__all__ = ["sapphire_rapids_events"]


def _fp_events() -> List[RawEvent]:
    events: List[RawEvent] = []

    def fp(width: str, prec: str) -> Dict[str, float]:
        # The documented Intel semantics: the counter increments once per
        # non-FMA instruction and twice per FMA instruction of the class.
        return {
            fp_instr_key(width, prec, "nonfma"): 1.0,
            fp_instr_key(width, prec, "fma"): 2.0,
        }

    def merge(*parts: Dict[str, float]) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for part in parts:
            for k, v in part.items():
                out[k] = out.get(k, 0.0) + v
        return out

    base = {
        "SCALAR_SINGLE": fp("scalar", "sp"),
        "SCALAR_DOUBLE": fp("scalar", "dp"),
        "128B_PACKED_SINGLE": fp("128", "sp"),
        "128B_PACKED_DOUBLE": fp("128", "dp"),
        "256B_PACKED_SINGLE": fp("256", "sp"),
        "256B_PACKED_DOUBLE": fp("256", "dp"),
        "512B_PACKED_SINGLE": fp("512", "sp"),
        "512B_PACKED_DOUBLE": fp("512", "dp"),
        # Aggregate umasks: linearly dependent on the eight above — grist
        # for the QRCP's dependent-column elimination.
        "SCALAR": merge(fp("scalar", "sp"), fp("scalar", "dp")),
        "VECTOR": merge(
            fp("128", "sp"),
            fp("128", "dp"),
            fp("256", "sp"),
            fp("256", "dp"),
            fp("512", "sp"),
            fp("512", "dp"),
        ),
        "4_FLOPS": merge(fp("128", "sp"), fp("256", "dp")),
        "8_FLOPS": merge(fp("256", "sp"), fp("512", "dp")),
    }
    events.extend(
        family(
            "FP_ARITH_INST_RETIRED",
            EventDomain.FLOPS,
            base,
            noise_class="exact",
            descriptions={
                "SCALAR_DOUBLE": "Number of SSE/AVX computational scalar double "
                "precision FP instructions retired; FMA counts twice.",
                "512B_PACKED_DOUBLE": "Number of 512-bit packed double precision "
                "FP instructions retired; FMA counts twice.",
            },
        )
    )
    # Dispatch-port views of FP work: scaled mixes, timing-class noise.
    events.extend(
        family(
            "FP_ARITH_DISPATCHED",
            EventDomain.FLOPS,
            {
                "PORT_0": merge(
                    {fp_instr_key(w, p, k): 0.5 for w in ("scalar", "128", "256") for p in ("sp", "dp") for k in ("nonfma", "fma")}
                ),
                "PORT_1": merge(
                    {fp_instr_key(w, p, k): 0.5 for w in ("scalar", "128", "256") for p in ("sp", "dp") for k in ("nonfma", "fma")}
                ),
                "PORT_5": merge(
                    {fp_instr_key("512", p, k): 1.0 for p in ("sp", "dp") for k in ("nonfma", "fma")}
                ),
            },
            noise_class="timing",
        )
    )
    events.extend(
        family(
            "ASSISTS",
            EventDomain.FLOPS,
            {"FP": {}, "SSE_AVX_MIX": {}, "ANY": {"machine_clears": 0.1}},
            noise_class="idle_floor",
            noise_overrides={"ANY": "timing_coarse"},
        )
    )
    return events


def _branch_events() -> List[RawEvent]:
    events: List[RawEvent] = []
    events.extend(
        family(
            "BR_INST_RETIRED",
            EventDomain.BRANCH,
            {
                "ALL_BRANCHES": {
                    "branch.cond_retired": 1.0,
                    "branch.uncond_direct": 1.0,
                    "branch.uncond_indirect": 1.0,
                    "branch.call": 1.0,
                    "branch.return": 1.0,
                },
                "COND": {"branch.cond_retired": 1.0},
                "COND_TAKEN": {"branch.cond_taken": 1.0},
                "COND_NTAKEN": {"branch.cond_ntaken": 1.0},
                "NEAR_TAKEN": {
                    "branch.cond_taken": 1.0,
                    "branch.uncond_direct": 1.0,
                    "branch.uncond_indirect": 1.0,
                    "branch.call": 1.0,
                    "branch.return": 1.0,
                },
                "NEAR_CALL": {"branch.call": 1.0},
                "NEAR_RETURN": {"branch.return": 1.0},
                "FAR_BRANCH": {},
                "INDIRECT": {"branch.uncond_indirect": 1.0},
            },
            noise_class="exact",
            descriptions={
                "ALL_BRANCHES": "All branch instructions retired.",
                "COND": "Conditional branch instructions retired.",
                "COND_TAKEN": "Taken conditional branch instructions retired.",
            },
        )
    )
    # The unqualified spelling used in the paper's tables (PAPI resolves it
    # to :ALL_BRANCHES).  Registered *before* the qualified family so the
    # QRCP tie-break on catalog order reports the paper's name.
    events.extend(
        family(
            "BR_MISP_RETIRED",
            EventDomain.BRANCH,
            {"": {"branch.mispredicted": 1.0}},
            noise_class="exact",
            descriptions={"": "Mispredicted branch instructions retired (alias of :ALL_BRANCHES)."},
        )
    )
    events.extend(
        family(
            "BR_MISP_RETIRED",
            EventDomain.BRANCH,
            {
                "ALL_BRANCHES": {"branch.mispredicted": 1.0},
                "COND": {"branch.mispredicted": 1.0},
                "COND_TAKEN": {"branch.misp_taken": 1.0},
                "COND_NTAKEN": {
                    "branch.mispredicted": 1.0,
                    "branch.misp_taken": -1.0,
                },
                "INDIRECT": {},
                "INDIRECT_CALL": {},
                "RET": {},
                "NEAR_TAKEN": {"branch.misp_taken": 1.0},
            },
            noise_class="exact",
            descriptions={"ALL_BRANCHES": "All mispredicted branch instructions retired."},
        )
    )
    events.extend(
        family(
            "BACLEARS",
            EventDomain.BRANCH,
            {"ANY": {"branch.mispredicted": 0.15, "frontend.fetch_bubbles": 0.01}},
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "INT_MISC",
            EventDomain.PIPELINE,
            {
                "CLEAR_RESTEER_CYCLES": {"branch.mispredicted": 9.0, "cycles.core": 0.001},
                "RECOVERY_CYCLES": {"branch.mispredicted": 11.0, "machine_clears": 10.0},
                "UOP_DROPPING": {"uops.issued": 0.002},
            },
            noise_class="timing_coarse",
        )
    )
    return events


def _cache_events() -> List[RawEvent]:
    events: List[RawEvent] = []
    events.extend(
        family(
            "MEM_LOAD_RETIRED",
            EventDomain.CACHE,
            {
                "L1_HIT": {"cache.l1d.demand_hit": 1.0},
                "L1_MISS": {"cache.l1d.demand_miss": 1.0},
                "L2_HIT": {"cache.l2.demand_rd_hit": 1.0},
                "L2_MISS": {"cache.l2.demand_rd_miss": 1.0},
                "L3_HIT": {"cache.l3.hit": 1.0},
                "L3_MISS": {"cache.l3.miss": 1.0},
                "FB_HIT": {"cache.l1d.fb_hit": 1.0},
            },
            noise_class="memory",
            # The L2 hit/miss attribution of this family is notoriously
            # unreliable on real parts; modelled as offcore-class noise, it
            # gets filtered at tau=1e-1 so the pipeline lands on
            # L2_RQSTS:DEMAND_DATA_RD_HIT for the L2DH dimension — the same
            # event the paper's analysis selects.
            noise_overrides={"L2_HIT": "offcore", "L2_MISS": "offcore"},
            descriptions={
                "L1_HIT": "Retired load instructions with L1 cache hits as data sources.",
                "L1_MISS": "Retired load instructions missed L1 cache as data sources.",
                "L3_HIT": "Retired load instructions with L3 cache hits as data sources.",
            },
        )
    )
    events.extend(
        family(
            "L2_RQSTS",
            EventDomain.CACHE,
            {
                "DEMAND_DATA_RD_HIT": {"cache.l2.demand_rd_hit": 1.0},
                "DEMAND_DATA_RD_MISS": {"cache.l2.demand_rd_miss": 1.0},
                "ALL_DEMAND_DATA_RD": {"cache.l2.all_demand_rd": 1.0},
                "ALL_DEMAND_MISS": {"cache.l2.demand_rd_miss": 1.0, "cache.l2.prefetch_req": 0.05},
                "ALL_DEMAND_REFERENCES": {"cache.l2.all_demand_rd": 1.0},
                "MISS": {"cache.l2.demand_rd_miss": 1.0, "cache.l2.prefetch_req": 0.2},
                "REFERENCES": {"cache.l2.references": 1.0},
                "ALL_HWPF": {"cache.l2.prefetch_req": 1.0},
                "HWPF_MISS": {"cache.l2.prefetch_req": 0.6},
                "SWPF_HIT": {},
                "SWPF_MISS": {},
            },
            noise_class="memory",
            noise_overrides={
                "ALL_HWPF": "offcore",
                "HWPF_MISS": "offcore",
                "SWPF_HIT": "idle_floor",
                "SWPF_MISS": "idle_floor",
            },
            descriptions={
                "DEMAND_DATA_RD_HIT": "Demand data read requests that hit the L2 cache."
            },
        )
    )
    events.extend(
        family(
            "LONGEST_LAT_CACHE",
            EventDomain.CACHE,
            {
                "MISS": {"cache.l3.miss": 1.0, "cache.l2.prefetch_req": 0.3},
                "REFERENCE": {"cache.l3.references": 1.0, "cache.l2.prefetch_req": 0.3},
            },
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "L1D",
            EventDomain.CACHE,
            {
                "REPLACEMENT": {"cache.l1d.replacement": 1.0},
                "HWPF_MISS": {"cache.l2.prefetch_req": 0.4},
            },
            noise_class="memory",
        )
    )
    events.extend(
        family(
            "L1D_PEND_MISS",
            EventDomain.CACHE,
            {
                "PENDING": {"cache.l1d.demand_miss": 14.0, "stall.mem": 0.4},
                "PENDING_CYCLES": {"cache.l1d.demand_miss": 9.0, "stall.mem": 0.3},
                "FB_FULL": {"cache.l1d.demand_miss": 0.8},
            },
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "MEM_LOAD_L3_HIT_RETIRED",
            EventDomain.CACHE,
            {
                "XSNP_MISS": {"cache.l3.hit": 0.02},
                "XSNP_NO_FWD": {"cache.l3.hit": 0.015},
                "XSNP_FWD": {"cache.l3.hit": 0.01},
                "XSNP_NONE": {"cache.l3.hit": 0.955},
            },
            noise_class="memory",
        )
    )
    events.extend(
        family(
            "MEM_INST_RETIRED",
            EventDomain.MEMORY,
            {
                "ALL_LOADS": {"mem.loads_retired": 1.0},
                "ALL_STORES": {"mem.stores_retired": 1.0},
                "STLB_MISS_LOADS": {"tlb.walks": 0.95},
                "STLB_MISS_STORES": {},
                "LOCK_LOADS": {},
                "SPLIT_LOADS": {},
                "SPLIT_STORES": {},
                "ANY": {"mem.loads_retired": 1.0, "mem.stores_retired": 1.0},
            },
            noise_class="exact",
            noise_overrides={
                "STLB_MISS_LOADS": "memory",
                "STLB_MISS_STORES": "idle_floor",
                "LOCK_LOADS": "idle_floor",
                "SPLIT_LOADS": "idle_floor",
                "SPLIT_STORES": "idle_floor",
            },
        )
    )
    events.extend(
        family(
            "OFFCORE_REQUESTS",
            EventDomain.MEMORY,
            {
                "DEMAND_DATA_RD": {"cache.l2.demand_rd_miss": 1.0},
                "ALL_REQUESTS": {"cache.l2.demand_rd_miss": 1.0, "cache.l2.prefetch_req": 1.0},
                "DATA_RD": {"cache.l2.demand_rd_miss": 1.0, "cache.l2.prefetch_req": 0.9},
                "DEMAND_RFO": {"mem.stores_retired": 0.01},
                "OUTSTANDING_CYCLES_WITH_DATA_RD": {"cache.l2.demand_rd_miss": 30.0},
            },
            noise_class="offcore",
        )
    )
    # Off-core response (OCR) matrix events: combinations of request type x
    # response source, mostly redundant with the above — realistic clutter.
    ocr: Dict[str, Dict[str, float]] = {}
    for req, req_key, scale in (
        ("DEMAND_DATA_RD", "cache.l2.demand_rd_miss", 1.0),
        ("READS_TO_CORE", "cache.l2.demand_rd_miss", 1.1),
        ("HWPF_L3", "cache.l2.prefetch_req", 0.5),
    ):
        ocr[f"{req}.L3_HIT"] = {"cache.l3.hit": 0.95 * scale}
        ocr[f"{req}.L3_HIT_SNOOP"] = {"cache.l3.hit": 0.05 * scale}
        ocr[f"{req}.DRAM"] = {"cache.l3.miss": 1.0 * scale}
        ocr[f"{req}.LOCAL_DRAM"] = {"cache.l3.miss": 0.97 * scale}
        ocr[f"{req}.SNC_DRAM"] = {"cache.l3.miss": 0.03 * scale}
    events.extend(family("OCR", EventDomain.MEMORY, ocr, noise_class="offcore"))
    events.extend(
        family(
            "SW_PREFETCH_ACCESS",
            EventDomain.MEMORY,
            {"T0": {}, "T1_T2": {}, "NTA": {}, "PREFETCHW": {}},
            noise_class="idle_floor",
        )
    )
    return events


def _tlb_events() -> List[RawEvent]:
    events: List[RawEvent] = []
    for base, weight in (("DTLB_LOAD_MISSES", 1.0), ("DTLB_STORE_MISSES", 0.0)):
        events.extend(
            family(
                base,
                EventDomain.TLB,
                {
                    # Fires on any first-level DTLB miss (whether the STLB
                    # covers it or a page walk follows).
                    "MISS_CAUSES_A_WALK": {"tlb.dtlb_load_miss": weight},
                    "WALK_COMPLETED": {"tlb.walks": weight},
                    "WALK_COMPLETED_4K": {"tlb.walks": 0.9 * weight},
                    "WALK_COMPLETED_2M_4M": {"tlb.walks": 0.1 * weight},
                    "WALK_PENDING": {"tlb.walk_cycles": weight},
                    "WALK_ACTIVE": {"tlb.walk_cycles": 0.8 * weight},
                    "STLB_HIT": {"tlb.stlb_hit": weight},
                },
                noise_class="memory",
                noise_overrides={} if weight else {
                    q: "idle_floor"
                    for q in (
                        "MISS_CAUSES_A_WALK",
                        "WALK_COMPLETED",
                        "WALK_COMPLETED_4K",
                        "WALK_COMPLETED_2M_4M",
                        "WALK_PENDING",
                        "WALK_ACTIVE",
                        "STLB_HIT",
                    )
                },
            )
        )
    events.extend(
        family(
            "ITLB_MISSES",
            EventDomain.TLB,
            {
                "MISS_CAUSES_A_WALK": {"tlb.itlb_miss": 1.0},
                "WALK_COMPLETED": {"tlb.itlb_miss": 0.9},
                "WALK_PENDING": {"tlb.itlb_miss": 20.0},
                "STLB_HIT": {"tlb.itlb_miss": 2.0},
            },
            noise_class="timing_coarse",
        )
    )
    return events


def _pipeline_events() -> List[RawEvent]:
    events: List[RawEvent] = []
    events.extend(
        family(
            "CPU_CLK_UNHALTED",
            EventDomain.PIPELINE,
            {
                "THREAD": {"cycles.core": 1.0},
                "THREAD_P": {"cycles.core": 1.0},
                "REF_TSC": {"cycles.ref": 1.0},
                "REF_DISTRIBUTED": {"cycles.ref": 1.0},
                "DISTRIBUTED": {"cycles.core": 1.0},
                "ONE_THREAD_ACTIVE": {"cycles.ref": 0.98},
            },
            noise_class="timing",
            descriptions={"THREAD": "Core cycles when the thread is not in a halt state."},
        )
    )
    events.extend(
        family(
            "INST_RETIRED",
            EventDomain.PIPELINE,
            {
                "ANY": {"instr.total": 1.0},
                "ANY_P": {"instr.total": 1.0},
                "NOP": {"instr.nop": 1.0},
                "MACRO_FUSED": {"branch.cond_retired": 0.95},
            },
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "UOPS_ISSUED",
            EventDomain.PIPELINE,
            {"ANY": {"uops.issued": 1.0}, "CYCLES": {"uops.issued": 0.3, "cycles.core": 0.2}},
            noise_class="timing",
        )
    )
    events.extend(
        family(
            "UOPS_RETIRED",
            EventDomain.PIPELINE,
            {
                "SLOTS": {"uops.retired": 1.0},
                "MS": {"uops.ms": 1.0},
                "CYCLES": {"uops.retired": 0.3, "cycles.core": 0.15},
                "STALLS": {"stall.total": 0.7},
                "HEAVY": {"instr.div": 3.0},
            },
            noise_class="timing",
            noise_overrides={"SLOTS": "exact", "MS": "exact", "HEAVY": "exact"},
        )
    )
    events.extend(
        family(
            "UOPS_EXECUTED",
            EventDomain.PIPELINE,
            {
                "THREAD": {"uops.executed": 1.0},
                "CORE": {"uops.executed": 1.0},
                "CYCLES_GE_1": {"cycles.core": 0.8},
                "CYCLES_GE_2": {"cycles.core": 0.6},
                "CYCLES_GE_3": {"cycles.core": 0.4},
                "CYCLES_GE_4": {"cycles.core": 0.25},
                "STALLS": {"stall.exec": 1.0},
            },
            noise_class="timing",
        )
    )
    # Port-level dispatch counters: mixes of load/store/FP/branch work.
    port_mix = {
        "PORT_0": {"uops.executed": 0.18},
        "PORT_1": {"uops.executed": 0.18},
        # Dispatch exceeds retirement: replayed and wrong-path load uops.
        "PORT_2_3_10": {"instr.load": 1.1},
        "PORT_4_9": {"instr.store": 1.1},
        "PORT_5_11": {"uops.executed": 0.14},
        "PORT_6": {"branch.cond_retired": 0.8, "branch.uncond_direct": 0.8},
        "PORT_7_8": {"instr.store": 0.9},
    }
    events.extend(
        family("UOPS_DISPATCHED", EventDomain.PIPELINE, port_mix, noise_class="timing")
    )
    events.extend(
        family(
            "EXE_ACTIVITY",
            EventDomain.PIPELINE,
            {
                "1_PORTS_UTIL": {"cycles.core": 0.2},
                "2_PORTS_UTIL": {"cycles.core": 0.3},
                "3_PORTS_UTIL": {"cycles.core": 0.2},
                "4_PORTS_UTIL": {"cycles.core": 0.1},
                "BOUND_ON_LOADS": {"stall.mem": 0.9},
                "BOUND_ON_STORES": {"stall.mem": 0.05},
            },
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "CYCLE_ACTIVITY",
            EventDomain.PIPELINE,
            {
                "STALLS_TOTAL": {"stall.total": 1.0},
                "STALLS_MEM_ANY": {"stall.mem": 1.0},
                "STALLS_L1D_MISS": {"stall.mem": 0.7},
                "STALLS_L2_MISS": {"stall.mem": 0.5},
                "STALLS_L3_MISS": {"stall.mem": 0.3},
                "CYCLES_MEM_ANY": {"stall.mem": 1.2},
            },
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "RESOURCE_STALLS",
            EventDomain.PIPELINE,
            {"ANY": {"stall.total": 0.8}, "SB": {"stall.mem": 0.1}, "SCOREBOARD": {"stall.total": 0.2}},
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "TOPDOWN",
            EventDomain.PIPELINE,
            {
                "SLOTS": {"cycles.core": 6.0},
                "SLOTS_P": {"cycles.core": 6.0},
                "BACKEND_BOUND_SLOTS": {"stall.total": 4.0},
                "MEMORY_BOUND_SLOTS": {"stall.mem": 4.0},
                "BR_MISPREDICT_SLOTS": {"branch.mispredicted": 30.0},
                "BAD_SPEC_SLOTS": {"branch.mispredicted": 32.0, "machine_clears": 40.0},
            },
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "ARITH",
            EventDomain.PIPELINE,
            {
                "DIV_ACTIVE": {"instr.div": 12.0},
                "FPDIV_ACTIVE": {"instr.div": 11.0},
                "IDIV_ACTIVE": {},
                "MUL": {"instr.int": 0.1},
            },
            noise_class="timing",
            noise_overrides={"IDIV_ACTIVE": "idle_floor"},
        )
    )
    events.extend(
        family(
            "INT_VEC_RETIRED",
            EventDomain.PIPELINE,
            {
                "ADD_128": {},
                "ADD_256": {},
                "MUL_256": {},
                "VNNI_128": {},
                "VNNI_256": {},
                "SHUFFLES": {},
            },
            noise_class="idle_floor",
        )
    )
    events.extend(
        family(
            "LSD",
            EventDomain.PIPELINE,
            {"UOPS": {"uops.issued": 0.85}, "CYCLES_ACTIVE": {"cycles.core": 0.5}},
            noise_class="timing",
        )
    )
    events.extend(
        family(
            "MACHINE_CLEARS",
            EventDomain.PIPELINE,
            {
                "COUNT": {"machine_clears": 1.0},
                "MEMORY_ORDERING": {"machine_clears": 0.3},
                "SMC": {},
                "DISAMBIGUATION": {"machine_clears": 0.1},
            },
            noise_class="timing_coarse",
            noise_overrides={"SMC": "idle_floor"},
        )
    )
    return events


def _frontend_events() -> List[RawEvent]:
    events: List[RawEvent] = []
    events.extend(
        family(
            "ICACHE_DATA",
            EventDomain.FRONTEND,
            {"STALLS": {"frontend.fetch_bubbles": 0.3}},
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "ICACHE_TAG",
            EventDomain.FRONTEND,
            {"STALLS": {"frontend.fetch_bubbles": 0.1}},
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "IDQ",
            EventDomain.FRONTEND,
            {
                "DSB_UOPS": {"frontend.dsb_uops": 1.0},
                "MITE_UOPS": {"frontend.mite_uops": 1.0},
                "MS_UOPS": {"uops.ms": 1.0},
                "DSB_CYCLES_OK": {"cycles.core": 0.7},
                "DSB_CYCLES_ANY": {"cycles.core": 0.75},
                "MITE_CYCLES_OK": {"cycles.core": 0.05},
                "MS_SWITCHES": {"uops.ms": 0.02},
            },
            noise_class="timing",
        )
    )
    events.extend(
        family(
            "IDQ_BUBBLES",
            EventDomain.FRONTEND,
            {"CORE": {"frontend.fetch_bubbles": 1.0}, "CYCLES_0_UOPS_DELIV": {"frontend.fetch_bubbles": 0.4}},
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "FRONTEND_RETIRED",
            EventDomain.FRONTEND,
            {
                "DSB_MISS": {"frontend.mite_uops": 0.02},
                "ANY_DSB_MISS": {"frontend.mite_uops": 0.025},
                "ITLB_MISS": {"tlb.itlb_miss": 1.0},
                "L1I_MISS": {"frontend.fetch_bubbles": 0.01},
                "L2_MISS": {},
                "LATENCY_GE_2": {"frontend.fetch_bubbles": 0.1},
                "LATENCY_GE_4": {"frontend.fetch_bubbles": 0.05},
                "LATENCY_GE_8": {"frontend.fetch_bubbles": 0.02},
                "LATENCY_GE_16": {"frontend.fetch_bubbles": 0.01},
                "LATENCY_GE_32": {},
                "MS_FLOWS": {"uops.ms": 0.04},
            },
            noise_class="timing_coarse",
            noise_overrides={"L2_MISS": "idle_floor", "LATENCY_GE_32": "idle_floor"},
        )
    )
    events.extend(
        family(
            "DECODE",
            EventDomain.FRONTEND,
            {"LCP": {}, "MS_BUSY": {"uops.ms": 0.5}},
            noise_class="timing_coarse",
            noise_overrides={"LCP": "idle_floor"},
        )
    )
    return events


def _misc_events() -> List[RawEvent]:
    """Families that are dead or near-dead on CAT workloads.

    These provide the all-zero columns (discarded as irrelevant), the
    noise-floor columns (the >1 extreme of Fig. 2's variability tail), and
    OS-interference counters.
    """
    events: List[RawEvent] = []
    events.extend(
        family(
            "AMX_OPS_RETIRED",
            EventDomain.OTHER,
            {"INT8": {}, "BF16": {}, "FP16": {}},
            noise_class="exact",  # truly silent: all-zero columns
        )
    )
    events.extend(
        family(
            "RTM_RETIRED",
            EventDomain.OTHER,
            {"START": {}, "COMMIT": {}, "ABORTED": {}, "ABORTED_MEM": {}},
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "HLE_RETIRED",
            EventDomain.OTHER,
            {"START": {}, "COMMIT": {}, "ABORTED": {}},
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "MISC_RETIRED",
            EventDomain.OTHER,
            {"LBR_INSERTS": {}, "PAUSE_INST": {}},
            noise_class="idle_floor",
        )
    )
    events.extend(
        family(
            "MEM_TRANS_RETIRED",
            EventDomain.MEMORY,
            {
                "LOAD_LATENCY_GT_4": {"cache.l1d.demand_miss": 0.3},
                "LOAD_LATENCY_GT_8": {"cache.l1d.demand_miss": 0.2},
                "LOAD_LATENCY_GT_16": {"cache.l2.demand_rd_miss": 0.3},
                "LOAD_LATENCY_GT_32": {"cache.l2.demand_rd_miss": 0.15},
                "LOAD_LATENCY_GT_64": {"cache.l3.miss": 0.4},
                "LOAD_LATENCY_GT_128": {"cache.l3.miss": 0.2},
                "STORE_SAMPLE": {"mem.stores_retired": 0.001},
            },
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "XQ",
            EventDomain.MEMORY,
            {"FULL_CYCLES": {"cache.l3.miss": 2.0}},
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "SQ_MISC",
            EventDomain.MEMORY,
            {"BUS_LOCK": {}, "SQ_FULL": {"cache.l2.demand_rd_miss": 0.5}},
            noise_class="offcore",
            noise_overrides={"BUS_LOCK": "idle_floor"},
        )
    )
    events.extend(
        family(
            "CORE_POWER",
            EventDomain.OTHER,
            {"LVL0_TURBO_LICENSE": {"cycles.core": 0.999}, "LVL1_TURBO_LICENSE": {"cycles.core": 0.001}, "LVL2_TURBO_LICENSE": {}},
            noise_class="timing_coarse",
            noise_overrides={"LVL2_TURBO_LICENSE": "idle_floor"},
        )
    )
    events.extend(
        family(
            "SYS",
            EventDomain.OTHER,
            {
                "PAGE_FAULTS": {"sw.page_faults": 1.0},
                "CONTEXT_SWITCHES": {"sw.context_switches": 1.0},
                "CPU_MIGRATIONS": {},
            },
            noise_class="timing_coarse",
            noise_overrides={"CPU_MIGRATIONS": "idle_floor"},
        )
    )
    events.extend(
        family(
            "LD_BLOCKS",
            EventDomain.MEMORY,
            {
                "STORE_FORWARD": {},
                "NO_SR": {},
                "ADDRESS_ALIAS": {"instr.load": 0.0005},
            },
            noise_class="idle_floor",
            noise_overrides={"ADDRESS_ALIAS": "memory"},
        )
    )
    events.extend(
        family(
            "LOCK_CYCLES",
            EventDomain.MEMORY,
            {"CACHE_LOCK_DURATION": {}},
            noise_class="idle_floor",
        )
    )
    return events


def _extended_events() -> List[RawEvent]:
    """Long tail of the native-event list: uncore, snoop-attribution,
    power, serialization and deep-latency families.

    These widen the sweep toward the ~350-event population of the paper's
    Figure 2b.  None of them introduces a clean basis-aligned column — by
    construction they are either dead (zero response), idle-floor noisy,
    timing-class, or scaled mixtures — so they exercise every filtering
    stage without perturbing the Section-V selections.
    """
    events: List[RawEvent] = []
    # Uncore CHA (coherence/home agent) — offcore-class noise, L3-coupled.
    events.extend(
        family(
            "UNC_CHA_TOR_INSERTS",
            EventDomain.MEMORY,
            {
                "IA_MISS_DRD": {"cache.l3.references": 0.9},
                "IA_MISS_DRD_LOCAL": {"cache.l3.references": 0.85},
                "IA_MISS_DRD_REMOTE": {"cache.l3.references": 0.05},
                "IA_MISS_RFO": {"mem.stores_retired": 0.02},
                "IA_HIT_CRD": {"cache.l3.hit": 0.3},
                "ALL": {"cache.l3.references": 1.4},
            },
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "UNC_CHA_TOR_OCCUPANCY",
            EventDomain.MEMORY,
            {"IA_MISS": {"cache.l3.miss": 60.0}, "IA": {"cache.l3.references": 45.0}},
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "UNC_CHA_CLOCKTICKS",
            EventDomain.OTHER,
            {"": {"cycles.ref": 1.1}},
            noise_class="timing_coarse",
        )
    )
    # Uncore memory controller.
    events.extend(
        family(
            "UNC_M_CAS_COUNT",
            EventDomain.MEMORY,
            {
                "RD": {"cache.l3.miss": 1.0},
                "WR": {"cache.l3.miss": 0.12},
                "ALL": {"cache.l3.miss": 1.12},
            },
            noise_class="offcore",
        )
    )
    events.extend(
        family(
            "UNC_M",
            EventDomain.MEMORY,
            {
                "CLOCKTICKS": {"cycles.ref": 0.6},
                "ACT_COUNT.ALL": {"cache.l3.miss": 0.55},
                "PRE_COUNT.ALL": {"cache.l3.miss": 0.5},
                "RPQ_INSERTS.PCH0": {"cache.l3.miss": 0.48},
                "WPQ_INSERTS.PCH0": {"cache.l3.miss": 0.06},
            },
            noise_class="offcore",
        )
    )
    # Snoop attribution of L3 misses (local vs remote service).
    events.extend(
        family(
            "MEM_LOAD_L3_MISS_RETIRED",
            EventDomain.CACHE,
            {
                "LOCAL_DRAM": {"cache.l3.miss": 0.96},
                "REMOTE_DRAM": {"cache.l3.miss": 0.04},
                "REMOTE_FWD": {},
                "REMOTE_HITM": {},
            },
            noise_class="memory",
            noise_overrides={"REMOTE_FWD": "idle_floor", "REMOTE_HITM": "idle_floor"},
        )
    )
    events.extend(
        family(
            "MEM_LOAD_MISC_RETIRED",
            EventDomain.CACHE,
            {"UC": {}},
            noise_class="idle_floor",
        )
    )
    # Deep-latency sampling buckets (mostly silent on CAT workloads).
    events.extend(
        family(
            "MEM_TRANS_RETIRED_EXT",
            EventDomain.MEMORY,
            {
                "LOAD_LATENCY_GT_256": {"cache.l3.miss": 0.05},
                "LOAD_LATENCY_GT_512": {},
            },
            noise_class="offcore",
            noise_overrides={"LOAD_LATENCY_GT_512": "idle_floor"},
        )
    )
    # Extra off-core response combinations.
    ocr: Dict[str, Dict[str, float]] = {}
    for req, key, scale in (
        ("DEMAND_RFO", "mem.stores_retired", 0.02),
        ("HWPF_L2_DATA_RD", "cache.l2.prefetch_req", 0.8),
        ("STREAMING_WR", "mem.stores_retired", 0.0),
    ):
        ocr[f"{req}.L3_HIT"] = {key: 0.4 * scale} if scale else {}
        ocr[f"{req}.DRAM"] = {key: 0.6 * scale} if scale else {}
        ocr[f"{req}.ANY_RESPONSE"] = {key: scale} if scale else {}
    events.extend(
        family(
            "OCR2",
            EventDomain.MEMORY,
            ocr,
            noise_class="offcore",
            noise_overrides={q: "idle_floor" for q, r in ocr.items() if not r},
        )
    )
    # x87 / AMX / legacy silent units.
    events.extend(
        family(
            "X87_OPS_RETIRED",
            EventDomain.FLOPS,
            {"ANY": {}, "FP_DIV": {}, "FP_TRANS": {}},
            noise_class="exact",
        )
    )
    events.extend(
        family(
            "AMX",
            EventDomain.OTHER,
            {"TMUL_CYCLES": {}, "TILE_LOADS": {}, "TILE_STORES": {}},
            noise_class="exact",
        )
    )
    # Frontend long tail.
    events.extend(
        family(
            "FRONTEND_RETIRED_EXT",
            EventDomain.FRONTEND,
            {
                "LATENCY_GE_64": {},
                "LATENCY_GE_128": {},
                "LATENCY_GE_256": {},
                "LATENCY_GE_512": {},
            },
            noise_class="idle_floor",
        )
    )
    events.extend(
        family(
            "UOPS_DECODED",
            EventDomain.FRONTEND,
            {"DEC0_UOPS": {"frontend.mite_uops": 0.5}},
            noise_class="timing",
        )
    )
    events.extend(
        family(
            "ICACHE_64B",
            EventDomain.FRONTEND,
            {
                "IFTAG_HIT": {"frontend.dsb_uops": 0.2, "frontend.mite_uops": 0.2},
                "IFTAG_MISS": {"frontend.fetch_bubbles": 0.02},
            },
            noise_class="timing_coarse",
        )
    )
    # Backend bookkeeping long tail.
    events.extend(
        family(
            "RS",
            EventDomain.PIPELINE,
            {
                "EMPTY_CYCLES": {"frontend.fetch_bubbles": 0.6},
                "EMPTY_COUNT": {"frontend.fetch_bubbles": 0.1},
            },
            noise_class="timing_coarse",
        )
    )
    events.extend(
        family(
            "SERIALIZATION",
            EventDomain.PIPELINE,
            {"NON_C01_MS_SCB": {}},
            noise_class="idle_floor",
        )
    )
    events.extend(
        family(
            "MISC2_RETIRED",
            EventDomain.PIPELINE,
            {"LFENCE": {}, "PAUSE": {}},
            noise_class="idle_floor",
        )
    )
    events.extend(
        family(
            "TOPDOWN_EXT",
            EventDomain.PIPELINE,
            {
                "RETIRING_SLOTS": {"uops.retired": 1.0, "cycles.core": 0.01},
                "FE_BOUND_SLOTS": {"frontend.fetch_bubbles": 5.0},
                "HEAVY_OPS_SLOTS": {"instr.div": 4.0},
                "LIGHT_OPS_SLOTS": {"uops.retired": 0.96},
            },
            noise_class="timing_coarse",
        )
    )
    # Power/thermal pseudo-events.
    events.extend(
        family(
            "PM",
            EventDomain.OTHER,
            {
                "ENERGY_PKG": {"cycles.ref": 0.002},
                "ENERGY_DRAM": {"cache.l3.miss": 0.001},
                "THROTTLE_CYCLES": {},
            },
            noise_class="timing_coarse",
            noise_overrides={"THROTTLE_CYCLES": "idle_floor"},
        )
    )
    # Integer vector long tail (silent on FP/branch/cache kernels).
    events.extend(
        family(
            "INT_VEC_RETIRED_EXT",
            EventDomain.PIPELINE,
            {"VNNI_512": {}, "MUL_128": {}, "ADD_512": {}},
            noise_class="idle_floor",
        )
    )
    return events


def sapphire_rapids_events() -> EventRegistry:
    """Build the full SPR core-event catalog (deterministic)."""
    registry = EventRegistry(name="intel_sapphire_rapids")
    for builder in (
        _fp_events,
        _branch_events,
        _cache_events,
        _tlb_events,
        _pipeline_events,
        _frontend_events,
        _misc_events,
        _extended_events,
    ):
        registry.extend(builder())
    return registry
