"""The raw-event model: events as linear functionals over activity.

A PMU event such as ``BR_INST_RETIRED:COND_TAKEN`` is, semantically, a
weighted count of microarchitectural occurrences — here, weight 1 on the
``branch.cond_taken`` activity key.  Subtler events carry non-trivial
weights: Intel's ``FP_ARITH_INST_RETIRED`` family increments *twice* per FMA
instruction, and AMD's ``SQ_INSTS_VALU_ADD_F*`` counts additions *and*
subtractions.  These semantics — not any hand-written answer table — are
what the analysis pipeline later rediscovers.

Events also carry a :class:`~repro.events.noise.NoiseModel` and a domain tag
(which hardware component they describe), used by the CAT runner to decide
which events each benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.events.noise import NoiseModel, no_noise
from repro.activity import Activity

__all__ = ["EventDomain", "RawEvent"]


class EventDomain:
    """Hardware component an event describes (used for benchmark scoping).

    Plain string constants rather than an Enum so catalogs stay terse and
    new domains can be added without central coordination.
    """

    FLOPS = "flops"
    BRANCH = "branch"
    CACHE = "cache"
    TLB = "tlb"
    PIPELINE = "pipeline"
    FRONTEND = "frontend"
    MEMORY = "memory"
    GPU_VALU = "gpu_valu"
    GPU_MEMORY = "gpu_memory"
    GPU_PIPELINE = "gpu_pipeline"
    OTHER = "other"

    ALL: Tuple[str, ...] = (
        FLOPS,
        BRANCH,
        CACHE,
        TLB,
        PIPELINE,
        FRONTEND,
        MEMORY,
        GPU_VALU,
        GPU_MEMORY,
        GPU_PIPELINE,
        OTHER,
    )


@dataclass(frozen=True)
class RawEvent:
    """A raw hardware performance event.

    Attributes
    ----------
    name:
        Base event name (``FP_ARITH_INST_RETIRED``).
    qualifier:
        Umask/modifier (``SCALAR_DOUBLE``); empty for unqualified events.
    domain:
        One of :class:`EventDomain` — which hardware component this event
        monitors.  CAT benchmark runs measure domain-relevant *and* many
        irrelevant events, exactly as a blind sweep over a vendor event list
        would.
    response:
        Sparse weight vector over activity keys.  The measured count of the
        event for a kernel is ``sum(w_k * activity[k])`` before noise.
    noise:
        Run-to-run measurement-noise model.
    description:
        Human-readable documentation string (vendor-sheet style).
    device:
        For GPU events: the device qualifier (``rocm:::...:device=N``).
        ``None`` for CPU events.
    """

    name: str
    qualifier: str = ""
    domain: str = EventDomain.OTHER
    response: Mapping[str, float] = field(default_factory=dict)
    noise: NoiseModel = field(default_factory=no_noise)
    description: str = ""
    device: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("event name must be non-empty")
        if self.domain not in EventDomain.ALL:
            raise ValueError(f"unknown event domain {self.domain!r}")

    @property
    def full_name(self) -> str:
        """PAPI-style full name, e.g. ``FP_ARITH_INST_RETIRED:SCALAR_DOUBLE``
        or ``rocm:::SQ_INSTS_VALU_ADD_F16:device=0``."""
        base = f"{self.name}:{self.qualifier}" if self.qualifier else self.name
        if self.device is not None:
            return f"rocm:::{base}:device={self.device}"
        return base

    def true_count(self, activity: Activity) -> float:
        """Noise-free count of this event for one kernel execution."""
        return float(
            sum(weight * activity.get(key) for key, weight in self.response.items())
        )

    def read(self, activity: Activity, rng: Optional[np.random.Generator] = None) -> float:
        """Measured reading: the true count perturbed by the noise model."""
        return self.noise.apply(self.true_count(activity), rng)

    def responds_to(self, key_prefix: str) -> bool:
        """True if any response key starts with ``key_prefix``."""
        return any(k.startswith(key_prefix) for k in self.response)

    def __str__(self) -> str:
        return self.full_name
