"""Measurement-noise models for raw hardware events.

The paper's Section IV observes a sharply bimodal noise landscape: most
instruction-counting events are bit-exact across repetitions (max RNMSE is
exactly zero), while time-like events (cycles, stalls, frontend activity)
and memory-subsystem events carry run-to-run variability spanning many
orders of magnitude (Figure 2).  These models reproduce that taxonomy.

Determinism policy: a noise model never owns a random generator.  Callers
pass a :class:`numpy.random.Generator` seeded from
``(system seed, event id, repetition, thread)`` so that

* the same (event, repetition) always reads the same value — measurements
  are reproducible artifacts, not ephemeral draws; and
* *different* repetitions of a noisy event differ, which is precisely what
  the max-RNMSE filter quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "NoiseModel",
    "no_noise",
    "quantized",
    "relative_gaussian",
    "spiky",
]


@dataclass(frozen=True)
class NoiseModel:
    """Perturbation applied to an event's true count.

    Attributes
    ----------
    kind:
        One of ``"none"``, ``"relative_gaussian"``, ``"spiky"``,
        ``"quantized"``.
    sigma:
        Relative standard deviation for the Gaussian component.
    floor:
        Additive noise floor in counts (models background firings such as
        interrupts landing in the counting window).
    spike_rate:
        Probability (per reading) of a spike — a reading inflated by a
        large multiplicative factor, as produced by SMIs or page-cache
        interference on real machines.
    spike_scale:
        Relative magnitude of a spike when one occurs.
    quantum:
        For ``"quantized"``: readings snap to multiples of this value
        (models fixed-increment counters such as 64-byte-line traffic).
    """

    kind: str = "none"
    sigma: float = 0.0
    floor: float = 0.0
    spike_rate: float = 0.0
    spike_scale: float = 0.0
    quantum: float = 0.0

    def __post_init__(self) -> None:
        valid = {"none", "relative_gaussian", "spiky", "quantized"}
        if self.kind not in valid:
            raise ValueError(f"unknown noise kind {self.kind!r}; expected one of {sorted(valid)}")
        if self.sigma < 0 or self.floor < 0 or self.spike_rate < 0:
            raise ValueError("noise parameters must be non-negative")

    @property
    def is_deterministic(self) -> bool:
        """True when readings are bit-exact across repetitions."""
        return self.kind == "none" or (
            self.sigma == 0.0
            and self.floor == 0.0
            and self.spike_rate == 0.0
            and self.kind != "quantized"
        )

    def expected_rel_bias(self, expected: float) -> float:
        """Predicted relative bias of a reading at a given true count.

        The noise components are not all zero-mean: the exponential floor
        adds ``floor`` counts on average, and a spike adds
        ``spike_scale * |count|`` with probability ``spike_rate``.  The
        validation layer (:mod:`repro.vet`) centres its tolerance band on
        ``1 + bias`` instead of 1 so a healthy noisy counter is not
        mistaken for an overcounting one.
        """
        scale = max(abs(expected), 1.0)
        return self.floor / scale + self.spike_rate * self.spike_scale

    def predicted_rel_std(self, expected: float) -> float:
        """Predicted relative standard deviation of a single reading.

        Combines the Gaussian term, the exponential floor (std equals its
        mean), the spike mixture (variance ``~2 p s^2`` for rate ``p`` and
        relative scale ``s``) and half a quantum of rounding.  This is the
        width the validation tolerance bands are derived from; it is a
        model property, not a fit, so the bands exist before any
        measurement is taken.
        """
        scale = max(abs(expected), 1.0)
        variance = self.sigma**2 + (self.floor / scale) ** 2
        if self.spike_rate > 0.0:
            variance += 2.0 * self.spike_rate * self.spike_scale**2
        if self.kind == "quantized" and self.quantum > 0.0:
            variance += (self.quantum / (2.0 * scale)) ** 2
        return float(np.sqrt(variance))

    def apply(self, value: float, rng: Optional[np.random.Generator]) -> float:
        """Perturb a true count into a measured reading.

        Counts are physical occurrence totals, so readings are clamped to be
        non-negative.  ``rng`` may be ``None`` only for deterministic models.
        """
        if self.kind == "none":
            return value
        if rng is None:
            raise ValueError(f"noise model {self.kind!r} requires a random generator")
        reading = value
        if self.sigma > 0.0:
            # Relative perturbation scaled by the magnitude of the reading;
            # an idle counter with a noise floor still jitters around it.
            scale = abs(value) if value != 0.0 else 1.0
            reading += rng.normal(0.0, self.sigma * scale)
        if self.floor > 0.0:
            reading += rng.exponential(self.floor)
        if self.spike_rate > 0.0 and rng.random() < self.spike_rate:
            scale = abs(value) if value != 0.0 else 1.0
            reading += rng.exponential(self.spike_scale * scale)
        if self.kind == "quantized" and self.quantum > 0.0:
            reading = self.quantum * np.floor(reading / self.quantum + 0.5)
        return float(max(reading, 0.0))


    def apply_batch(
        self, values: np.ndarray, rng: Optional[np.random.Generator]
    ) -> np.ndarray:
        """Vectorized :meth:`apply` over an array of true counts.

        Semantically equivalent to applying the model element-wise, but all
        draws for the batch come from one generator stream in array order
        (the measurement runner's per-event stream) — orders of magnitude
        cheaper than constructing a generator per reading.
        """
        values = np.asarray(values, dtype=np.float64)
        if self.kind == "none":
            return values.copy()
        if rng is None:
            raise ValueError(f"noise model {self.kind!r} requires a random generator")
        reading = values.copy()
        if self.sigma > 0.0:
            scale = np.where(values != 0.0, np.abs(values), 1.0)
            reading += rng.normal(0.0, 1.0, values.shape) * (self.sigma * scale)
        if self.floor > 0.0:
            reading += rng.exponential(self.floor, values.shape)
        if self.spike_rate > 0.0:
            spiking = rng.random(values.shape) < self.spike_rate
            scale = np.where(values != 0.0, np.abs(values), 1.0)
            spikes = rng.exponential(1.0, values.shape) * (self.spike_scale * scale)
            reading += np.where(spiking, spikes, 0.0)
        if self.kind == "quantized" and self.quantum > 0.0:
            reading = self.quantum * np.floor(reading / self.quantum + 0.5)
        return np.maximum(reading, 0.0)


def no_noise() -> NoiseModel:
    """A deterministic counter (the zero-variability cluster of Fig. 2)."""
    return NoiseModel(kind="none")


def relative_gaussian(sigma: float, floor: float = 0.0) -> NoiseModel:
    """Run-to-run Gaussian variability relative to the count magnitude."""
    return NoiseModel(kind="relative_gaussian", sigma=sigma, floor=floor)


def spiky(sigma: float, spike_rate: float, spike_scale: float, floor: float = 0.0) -> NoiseModel:
    """Gaussian variability plus occasional large positive spikes."""
    return NoiseModel(
        kind="spiky",
        sigma=sigma,
        floor=floor,
        spike_rate=spike_rate,
        spike_scale=spike_scale,
    )


def quantized(quantum: float, sigma: float = 0.0) -> NoiseModel:
    """Readings snapped to a counter quantum, with optional jitter."""
    return NoiseModel(kind="quantized", quantum=quantum, sigma=sigma)
