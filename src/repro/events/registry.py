"""Event registry: the per-architecture catalog of raw events.

The registry is what a PAPI ``papi_native_avail`` sweep would produce on a
real machine: an ordered collection of uniquely named events, with lookup by
full name, filtering by domain or prefix, and stable deterministic ordering
(catalog insertion order), which the analysis relies on for reproducible
pivot tie-breaking.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.events.model import RawEvent

__all__ = ["EventRegistry"]


class EventRegistry:
    """Ordered, name-indexed collection of :class:`RawEvent` objects."""

    def __init__(self, events: Optional[Iterable[RawEvent]] = None, name: str = ""):
        self.name = name
        self._events: List[RawEvent] = []
        self._by_name: Dict[str, RawEvent] = {}
        for event in events or ():
            self.add(event)

    # Construction ---------------------------------------------------------
    def add(self, event: RawEvent) -> None:
        """Register an event; duplicate full names are an error."""
        key = event.full_name
        if key in self._by_name:
            raise ValueError(f"duplicate event {key!r} in registry {self.name!r}")
        self._by_name[key] = event
        self._events.append(event)

    def extend(self, events: Iterable[RawEvent]) -> None:
        for event in events:
            self.add(event)

    # Lookup ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RawEvent]:
        return iter(self._events)

    def __contains__(self, full_name: str) -> bool:
        return full_name in self._by_name

    def get(self, full_name: str) -> RawEvent:
        """Look up an event by its PAPI-style full name."""
        try:
            return self._by_name[full_name]
        except KeyError:
            raise KeyError(
                f"event {full_name!r} not found in registry {self.name!r} "
                f"({len(self)} events)"
            ) from None

    @property
    def full_names(self) -> List[str]:
        """All full names in catalog order."""
        return [e.full_name for e in self._events]

    # Filtering ------------------------------------------------------------
    def select(
        self,
        domains: Optional[Sequence[str]] = None,
        prefix: Optional[str] = None,
        device: Optional[int] = None,
        predicate: Optional[Callable[[RawEvent], bool]] = None,
    ) -> "EventRegistry":
        """Sub-registry of events matching all given filters.

        ``domains`` filters by :class:`~repro.events.model.EventDomain`;
        ``prefix`` matches the start of the full name; ``device`` matches
        the GPU device qualifier; ``predicate`` is an arbitrary filter.
        """
        selected = []
        domain_set = set(domains) if domains is not None else None
        for event in self._events:
            if domain_set is not None and event.domain not in domain_set:
                continue
            if prefix is not None and not event.full_name.startswith(prefix):
                continue
            if device is not None and event.device != device:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        label = f"{self.name}[filtered]" if self.name else "[filtered]"
        return EventRegistry(selected, name=label)

    def domains(self) -> Dict[str, int]:
        """Histogram of event domains (diagnostics / documentation)."""
        hist: Dict[str, int] = {}
        for event in self._events:
            hist[event.domain] = hist.get(event.domain, 0) + 1
        return hist

    def __repr__(self) -> str:
        return f"EventRegistry({self.name!r}, {len(self)} events)"
