"""Event registry: the per-architecture catalog of raw events.

The registry is what a PAPI ``papi_native_avail`` sweep would produce on a
real machine: an ordered collection of uniquely named events, with lookup by
full name, filtering by domain or prefix, and stable deterministic ordering
(catalog insertion order), which the analysis relies on for reproducible
pivot tie-breaking.

For the measurement hot path the registry also exposes a *packed* weight
matrix (:meth:`EventRegistry.weight_matrix`): the dense ``(keys, events)``
matrix of every event's sparse response, built once per registry and cached,
so a sweep evaluates all true counts as one activity-matrix product instead
of a per-event Python loop (see ``docs/substrate.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.activity import Activity
from repro.events.model import RawEvent

__all__ = ["EventRegistry", "PackedWeights"]


def _has_linear_response(event: RawEvent) -> bool:
    """True when the event's true count is the stock linear functional.

    Subclasses may override :meth:`RawEvent.true_count` with an arbitrary
    (non-linear) response; those events cannot ride the weight-matrix path
    and fall back to scalar evaluation.
    """
    return type(event).true_count is RawEvent.true_count


class PackedWeights:
    """Dense weight-matrix form of a registry's event responses.

    Attributes
    ----------
    keys:
        Union of all response keys, in first-seen catalog order (the
        column coordinates of activity vectors).
    key_index:
        ``key -> position`` lookup consistent with ``keys``.
    events:
        The packed events, in registry order (the matrix columns).
    matrix:
        ``(len(keys), len(events))`` weight matrix W; true counts of a
        batch of activities A (``(samples, keys)``) are ``A @ W``.
    fallback:
        ``(column, event)`` pairs whose ``true_count`` is overridden
        (non-linear response): excluded from the vectorized product and
        evaluated scalar by callers.

    The vectorized product is evaluated *term-ordered*: mathematically it
    is exactly ``A @ W``, but the sum over each event's response keys is
    accumulated in response-declaration order, reproducing the scalar
    ``RawEvent.true_count`` summation bit-for-bit (a single BLAS matmul
    reorders the additions and can differ in the last ulp, which would
    break the reproducibility contract's scalar/vectorized equivalence).
    """

    def __init__(self, events: Sequence[RawEvent]):
        self.events: Tuple[RawEvent, ...] = tuple(events)
        keys: List[str] = []
        key_index: Dict[str, int] = {}
        for event in self.events:
            for key in event.response:
                if key not in key_index:
                    key_index[key] = len(keys)
                    keys.append(key)
        self.keys: Tuple[str, ...] = tuple(keys)
        self.key_index: Dict[str, int] = key_index

        self.matrix = np.zeros((len(keys), len(self.events)), dtype=np.float64)
        self.fallback: List[Tuple[int, RawEvent]] = []
        linear: List[int] = []
        for j, event in enumerate(self.events):
            if not _has_linear_response(event):
                self.fallback.append((j, event))
                continue
            linear.append(j)
            for key, weight in event.response.items():
                self.matrix[key_index[key], j] = weight
        self.linear_columns = np.asarray(linear, dtype=np.intp)

        # Term-ordered accumulation schedule: position t holds the t-th
        # (key, weight) response term of every linear event that has one.
        self._terms: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        per_event = [
            (j, list(event.response.items()))
            for j, event in enumerate(self.events)
            if _has_linear_response(event)
        ]
        depth = max((len(terms) for _, terms in per_event), default=0)
        for t in range(depth):
            cols = [(j, terms[t]) for j, terms in per_event if len(terms) > t]
            ev_idx = np.array([j for j, _ in cols], dtype=np.intp)
            k_idx = np.array(
                [key_index[key] for _, (key, _) in cols], dtype=np.intp
            )
            weights = np.array([w for _, (_, w) in cols], dtype=np.float64)
            self._terms.append((ev_idx, k_idx, weights))

    @property
    def n_keys(self) -> int:
        return len(self.keys)

    @property
    def n_events(self) -> int:
        return len(self.events)

    def pack_activities(self, activities: Sequence[Activity]) -> np.ndarray:
        """Stack activity records into a dense ``(samples, keys)`` matrix."""
        out = np.zeros((len(activities), len(self.keys)), dtype=np.float64)
        key_index = self.key_index
        for i, activity in enumerate(activities):
            row = out[i]
            for key, value in activity.items():
                pos = key_index.get(key)
                if pos is not None:
                    row[pos] = value
        return out

    def true_counts(self, activity_matrix: np.ndarray) -> np.ndarray:
        """All linear events' true counts for a batch of activities.

        ``activity_matrix`` is ``(samples, keys)`` in ``self.keys`` order
        (see :meth:`pack_activities`); returns ``(samples, events)``.
        Fallback columns (overridden ``true_count``) are left at zero —
        callers fill them scalar via :attr:`fallback`.
        """
        activity_matrix = np.asarray(activity_matrix, dtype=np.float64)
        if activity_matrix.ndim != 2 or activity_matrix.shape[1] != len(self.keys):
            raise ValueError(
                f"activity matrix must be (samples, {len(self.keys)}); "
                f"got shape {activity_matrix.shape}"
            )
        out = np.zeros(
            (activity_matrix.shape[0], len(self.events)), dtype=np.float64
        )
        for ev_idx, k_idx, weights in self._terms:
            out[:, ev_idx] += activity_matrix[:, k_idx] * weights
        return out


class EventRegistry:
    """Ordered, name-indexed collection of :class:`RawEvent` objects."""

    def __init__(self, events: Optional[Iterable[RawEvent]] = None, name: str = ""):
        self.name = name
        self._events: List[RawEvent] = []
        self._by_name: Dict[str, RawEvent] = {}
        self._packed: Optional[PackedWeights] = None
        self._content_digest: Optional[str] = None
        self._event_digests: Optional[Dict[str, str]] = None
        for event in events or ():
            self.add(event)

    # Construction ---------------------------------------------------------
    def add(self, event: RawEvent) -> None:
        """Register an event; duplicate full names are an error."""
        key = event.full_name
        if key in self._by_name:
            raise ValueError(f"duplicate event {key!r} in registry {self.name!r}")
        self._by_name[key] = event
        self._events.append(event)
        self._packed = None  # the cached weight matrix is now stale
        self._content_digest = None  # and so are the content digests
        self._event_digests = None

    def extend(self, events: Iterable[RawEvent]) -> None:
        for event in events:
            self.add(event)

    # Lookup ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RawEvent]:
        return iter(self._events)

    def __contains__(self, full_name: str) -> bool:
        return full_name in self._by_name

    def get(self, full_name: str) -> RawEvent:
        """Look up an event by its PAPI-style full name."""
        try:
            return self._by_name[full_name]
        except KeyError:
            raise KeyError(
                f"event {full_name!r} not found in registry {self.name!r} "
                f"({len(self)} events)"
            ) from None

    @property
    def full_names(self) -> List[str]:
        """All full names in catalog order."""
        return [e.full_name for e in self._events]

    # Vectorization --------------------------------------------------------
    def weight_matrix(self) -> PackedWeights:
        """The packed ``(keys, events)`` weight matrix of this registry.

        Built once and cached; :meth:`add` invalidates the cache.  This is
        the measurement hot path's substrate: a benchmark's activities are
        packed into one matrix and multiplied against it, replacing the
        per-(thread, row, event) Python loop.
        """
        if self._packed is None:
            self._packed = PackedWeights(self._events)
        return self._packed

    # Content addressing ----------------------------------------------------
    def content_digest(self) -> str:
        """Digest of the whole registry's event content (order-sensitive).

        Built once and cached like :meth:`weight_matrix`; :meth:`add`
        invalidates it.  Catalog freshness checks call this on every read,
        so re-hashing a few hundred events per lookup would dominate the
        serve hot path.
        """
        if self._content_digest is None:
            from repro.io.cache import event_set_digest

            self._content_digest = event_set_digest(self._events)
        return self._content_digest

    def event_digests(self) -> Dict[str, str]:
        """Per-event content digests: ``full name -> digest``.

        Each digest covers exactly one event's (name, response, noise)
        content — the dependency coordinates ``repro.incr`` tracks so a
        registry edit invalidates only the entries that consumed the
        edited event.  Cached; :meth:`add` invalidates.  Returns a fresh
        dict so callers can hold it across later registry mutation.
        """
        if self._event_digests is None:
            from repro.io.cache import event_set_digest

            self._event_digests = {
                event.full_name: event_set_digest([event])[:16]
                for event in self._events
            }
        return dict(self._event_digests)

    # Filtering ------------------------------------------------------------
    def select(
        self,
        domains: Optional[Sequence[str]] = None,
        prefix: Optional[str] = None,
        device: Optional[int] = None,
        predicate: Optional[Callable[[RawEvent], bool]] = None,
    ) -> "EventRegistry":
        """Sub-registry of events matching all given filters.

        ``domains`` filters by :class:`~repro.events.model.EventDomain`;
        ``prefix`` matches the start of the full name; ``device`` matches
        the GPU device qualifier; ``predicate`` is an arbitrary filter.
        """
        selected = []
        domain_set = set(domains) if domains is not None else None
        for event in self._events:
            if domain_set is not None and event.domain not in domain_set:
                continue
            if prefix is not None and not event.full_name.startswith(prefix):
                continue
            if device is not None and event.device != device:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        label = f"{self.name}[filtered]" if self.name else "[filtered]"
        return EventRegistry(selected, name=label)

    def domains(self) -> Dict[str, int]:
        """Histogram of event domains (diagnostics / documentation)."""
        hist: Dict[str, int] = {}
        for event in self._events:
            hist[event.domain] = hist.get(event.domain, 0) + 1
        return hist

    def __repr__(self) -> str:
        return f"EventRegistry({self.name!r}, {len(self)} events)"
