"""Raw-event model, noise taxonomy and per-architecture catalogs."""

from repro.events.model import EventDomain, RawEvent
from repro.events.noise import NoiseModel, no_noise, quantized, relative_gaussian, spiky
from repro.events.registry import EventRegistry, PackedWeights

__all__ = [
    "EventDomain",
    "EventRegistry",
    "NoiseModel",
    "PackedWeights",
    "RawEvent",
    "no_noise",
    "quantized",
    "relative_gaussian",
    "spiky",
]
