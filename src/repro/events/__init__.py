"""Raw-event model, noise taxonomy and per-architecture catalogs."""

from repro.events.model import EventDomain, RawEvent
from repro.events.noise import NoiseModel, no_noise, quantized, relative_gaussian, spiky
from repro.events.registry import EventRegistry

__all__ = [
    "EventDomain",
    "EventRegistry",
    "NoiseModel",
    "RawEvent",
    "no_noise",
    "quantized",
    "relative_gaussian",
    "spiky",
]
