"""The end-to-end analysis pipeline.

Ties the paper's stages together, in order:

1. **Measure** (Section III): run a CAT benchmark over repetitions,
   reading every in-scope raw event through the PMU.
2. **De-noise values** (Sections IV/VII): collapse threads by median.
3. **Discard irrelevant events**: all-zero measurements (footnote 1).
4. **Filter noisy events** (Section IV): max-RNMSE vs the threshold tau.
5. **Represent** (Section III-B): project measurement vectors onto the
   expectation basis; reject events with large residual.
6. **Select** (Section V): specialized QRCP with tolerance alpha picks a
   linearly independent, expectation-aligned subset X-hat.
7. **Compose** (Section VI): least-squares fit of each metric signature
   over X-hat, with the Equation-5 backward error as fitness; coefficients
   optionally rounded (Section VI-D).
8. **Emit** PAPI-style preset definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.cat import (
    BenchmarkRunner,
    BranchBenchmark,
    CPUFlopsBenchmark,
    DCacheBenchmark,
    GPUFlopsBenchmark,
    MeasurementSet,
)
from repro.core.basis import (
    ExpectationBasis,
    branch_basis,
    cpu_flops_basis,
    dcache_basis,
    dtlb_basis,
    gpu_flops_basis,
)
from repro.core.metrics import MetricDefinition, compose_metric, round_coefficients
from repro.core.noise_filter import NoiseReport, analyze_noise
from repro.core.qrcp import QRCPResult, qrcp_specialized
from repro.core.representation import RepresentationReport, represent_events
from repro.core.signatures import Signature, signatures_for
from repro.events.registry import EventRegistry
from repro.hardware.systems import MachineNode
from repro.papi.presets import PresetTable

if TYPE_CHECKING:
    from repro.io.cache import MeasurementCache

__all__ = ["AnalysisPipeline", "PipelineConfig", "PipelineResult"]


@dataclass(frozen=True)
class PipelineConfig:
    """Stage thresholds (paper values per domain via ``for_domain``)."""

    tau: float = 1e-10  # noise threshold (Section IV)
    alpha: float = 5e-4  # QRCP rounding tolerance (Section V)
    representation_threshold: float = 1e-6  # relative residual cap (III-B)
    repetitions: int = 5
    round_snap_tol: float = 0.05  # Section VI-D coefficient snapping
    round_zero_tol: float = 0.02
    # Reuse measurements through the content-addressed cache
    # (repro.io.cache); safe because the substrate is bit-deterministic —
    # the cache key covers everything a reading depends on.
    use_measurement_cache: bool = False

    def __post_init__(self) -> None:
        if self.tau <= 0 or self.alpha <= 0 or self.representation_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if self.repetitions < 2:
            raise ValueError("need at least two repetitions")


#: Paper-stated thresholds per benchmark domain.
DOMAIN_CONFIGS: Dict[str, PipelineConfig] = {
    "cpu_flops": PipelineConfig(tau=1e-10, alpha=5e-4),
    "gpu_flops": PipelineConfig(tau=1e-10, alpha=5e-4),
    "branch": PipelineConfig(tau=1e-10, alpha=5e-4),
    "dcache": PipelineConfig(tau=1e-1, alpha=5e-2, representation_threshold=0.25),
    # Extension domain: translation events share the cache noise regime.
    "dtlb": PipelineConfig(tau=1e-1, alpha=5e-2, representation_threshold=0.25),
}


@dataclass
class PipelineResult:
    """Everything the analysis produced, stage by stage."""

    domain: str
    config: PipelineConfig
    measurement: MeasurementSet
    noise: NoiseReport
    representation: RepresentationReport
    qrcp: QRCPResult
    selected_events: List[str]
    x_hat: np.ndarray
    metrics: Dict[str, MetricDefinition]
    rounded_metrics: Dict[str, MetricDefinition]
    presets: PresetTable

    def metric(self, name: str) -> MetricDefinition:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"metric {name!r} not composed; available: {sorted(self.metrics)}"
            ) from None

    def summary(self) -> str:
        lines = [
            f"domain: {self.domain}",
            f"events measured: {self.noise.n_measured}",
            f"  all-zero (discarded): {len(self.noise.discarded_zero)}",
            f"  noisy (> tau={self.config.tau:g}): {len(self.noise.noisy)}",
            f"  unrepresentable (> {self.config.representation_threshold:g}): "
            f"{len(self.representation.rejected)}",
            f"selected by QRCP (alpha={self.config.alpha:g}): "
            f"{len(self.selected_events)}",
        ]
        for name in self.selected_events:
            lines.append(f"  {name}")
        lines.append("metrics:")
        for metric in self.metrics.values():
            status = "ok" if metric.composable else "NOT COMPOSABLE"
            lines.append(f"  {metric.metric:<40} error {metric.error:.2e}  [{status}]")
        return "\n".join(lines)


class AnalysisPipeline:
    """Configured, reusable analysis for one benchmark domain on one node."""

    def __init__(
        self,
        node: MachineNode,
        benchmark,
        basis: ExpectationBasis,
        signatures: Sequence[Signature],
        config: PipelineConfig = PipelineConfig(),
        events: Optional[EventRegistry] = None,
        cache: Optional["MeasurementCache"] = None,
    ):
        self.node = node
        self.benchmark = benchmark
        self.basis = basis
        self.signatures = list(signatures)
        self.config = config
        self.events = events
        # Used only when config.use_measurement_cache is set; None means
        # the process-wide default cache.
        self.cache = cache
        if tuple(benchmark.row_labels()) != tuple(basis.row_labels):
            raise ValueError(
                "benchmark kernel rows do not match the expectation basis rows; "
                "the analysis would compare incommensurate vectors"
            )

    @classmethod
    def for_domain(
        cls,
        domain: str,
        node: MachineNode,
        config: Optional[PipelineConfig] = None,
        cache: Optional["MeasurementCache"] = None,
        **benchmark_kwargs,
    ) -> "AnalysisPipeline":
        """Standard wiring for the paper's four benchmark domains."""
        if domain == "cpu_flops":
            benchmark = CPUFlopsBenchmark(**benchmark_kwargs)
            basis = cpu_flops_basis()
        elif domain == "gpu_flops":
            benchmark = GPUFlopsBenchmark(**benchmark_kwargs)
            basis = gpu_flops_basis()
        elif domain == "branch":
            benchmark = BranchBenchmark(**benchmark_kwargs)
            basis = branch_basis()
        elif domain == "dcache":
            # The footprint sweep adapts to the node's cache geometry.
            benchmark_kwargs.setdefault("cpu_config", getattr(node.machine, "config", None))
            benchmark = DCacheBenchmark(**benchmark_kwargs)
            basis = dcache_basis(benchmark)
        elif domain == "dtlb":
            from repro.cat.dtlb import DTLBBenchmark

            config_obj = getattr(node.machine, "config", None)
            if config_obj is not None:
                benchmark_kwargs.setdefault("tlb_config", config_obj.tlb)
            benchmark = DTLBBenchmark(**benchmark_kwargs)
            basis = dtlb_basis(benchmark)
        else:
            raise KeyError(
                f"unknown domain {domain!r}; expected one of "
                "cpu_flops, gpu_flops, branch, dcache, dtlb"
            )
        return cls(
            node=node,
            benchmark=benchmark,
            basis=basis,
            signatures=signatures_for(domain),
            config=config or DOMAIN_CONFIGS[domain],
            cache=cache,
        )

    # ------------------------------------------------------------------
    def _measure(self) -> MeasurementSet:
        """The measurement stage, optionally through the content cache."""
        config = self.config
        runner = BenchmarkRunner(self.node, repetitions=config.repetitions)
        registry = (
            self.events
            if self.events is not None
            else runner.select_events(self.benchmark)
        )
        if not config.use_measurement_cache:
            return runner.run(self.benchmark, events=registry)

        from repro.io.cache import default_measurement_cache, measurement_cache_key

        cache = self.cache if self.cache is not None else default_measurement_cache()
        key = measurement_cache_key(
            self.node, self.benchmark, registry, config.repetitions
        )
        return cache.get_or_measure(
            key, lambda: runner.run(self.benchmark, events=registry)
        )

    def run(self, measurement: Optional[MeasurementSet] = None) -> PipelineResult:
        """Execute all stages; ``measurement`` may be injected (e.g. from
        disk) to skip the benchmark run."""
        config = self.config
        if measurement is None:
            measurement = self._measure()

        # Stages 2-4: thread median happens inside the noise analysis and
        # measurement matrix; zero discard + tau filter:
        noise = analyze_noise(measurement, tau=config.tau)

        surviving = measurement.select_events(noise.kept)
        matrix = surviving.measurement_matrix()

        representation = represent_events(
            self.basis, noise.kept, matrix, config.representation_threshold
        )

        qrcp = qrcp_specialized(representation.x_matrix, alpha=config.alpha)
        selected_idx = qrcp.selected
        selected_events = [representation.event_names[i] for i in selected_idx]
        x_hat = representation.x_matrix[:, selected_idx]

        metrics: Dict[str, MetricDefinition] = {}
        rounded: Dict[str, MetricDefinition] = {}
        presets = PresetTable(architecture=self.node.name)
        for signature in self.signatures:
            definition = compose_metric(
                signature.name, x_hat, selected_events, signature
            )
            metrics[signature.name] = definition
            snapped = round_coefficients(
                definition,
                x_hat=x_hat,
                snap_tol=config.round_snap_tol,
                zero_tol=config.round_zero_tol,
            )
            rounded[signature.name] = snapped
            if definition.composable:
                # Presets carry the snapped coefficients (Section VI-D):
                # consumers want 1*EVENT, not 1.00001*EVENT - 3e-16*OTHER.
                presets.define(snapped.as_preset())

        return PipelineResult(
            domain=self.basis.name,
            config=config,
            measurement=measurement,
            noise=noise,
            representation=representation,
            qrcp=qrcp,
            selected_events=selected_events,
            x_hat=x_hat,
            metrics=metrics,
            rounded_metrics=rounded,
            presets=presets,
        )
