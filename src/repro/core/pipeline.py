"""The end-to-end analysis pipeline.

Ties the paper's stages together, in order:

1. **Measure** (Section III): run a CAT benchmark over repetitions,
   reading every in-scope raw event through the PMU.
2. **De-noise values** (Sections IV/VII): collapse threads by median.
3. **Discard irrelevant events**: all-zero measurements (footnote 1).
4. **Filter noisy events** (Section IV): max-RNMSE vs the threshold tau.
5. **Represent** (Section III-B): project measurement vectors onto the
   expectation basis; reject events with large residual.
6. **Select** (Section V): specialized QRCP with tolerance alpha picks a
   linearly independent, expectation-aligned subset X-hat.
7. **Compose** (Section VI): least-squares fit of each metric signature
   over X-hat, with the Equation-5 backward error as fitness; coefficients
   optionally rounded (Section VI-D).
8. **Emit** PAPI-style preset definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.cat import (
    BenchmarkRunner,
    BranchBenchmark,
    CPUFlopsBenchmark,
    DCacheBenchmark,
    GPUFlopsBenchmark,
    MeasurementSet,
)
from repro.core.basis import (
    ExpectationBasis,
    branch_basis,
    cpu_flops_basis,
    dcache_basis,
    dtlb_basis,
    gpu_flops_basis,
)
from repro.core.metrics import MetricDefinition, compose_metric, round_coefficients
from repro.core.noise_filter import NoiseReport, analyze_noise
from repro.core.qrcp import QRCPResult, qrcp_specialized
from repro.core.representation import RepresentationReport, represent_events
from repro.core.signatures import Signature, signatures_for
from repro.events.registry import EventRegistry
from repro.guard import GuardConfig, GuardViolation, certify_metric, require_finite
from repro.hardware.systems import MachineNode
from repro.obs import get_tracer
from repro.papi.presets import PresetTable

if TYPE_CHECKING:
    from repro.faults import (
        FaultConfig,
        FaultInjector,
        RobustnessReport,
        ScrubPolicy,
    )
    from repro.io.cache import MeasurementCache
    from repro.obs import Trace
    from repro.vet.priors import TrustPriors

__all__ = ["AnalysisPipeline", "PipelineConfig", "PipelineResult"]


@dataclass(frozen=True)
class PipelineConfig:
    """Stage thresholds (paper values per domain via ``for_domain``)."""

    tau: float = 1e-10  # noise threshold (Section IV)
    alpha: float = 5e-4  # QRCP rounding tolerance (Section V)
    representation_threshold: float = 1e-6  # relative residual cap (III-B)
    repetitions: int = 5
    round_snap_tol: float = 0.05  # Section VI-D coefficient snapping
    round_zero_tol: float = 0.02
    # Reuse measurements through the content-addressed cache
    # (repro.io.cache); safe because the substrate is bit-deterministic —
    # the cache key covers everything a reading depends on.
    use_measurement_cache: bool = False
    # How many times the measurement stage may be re-attempted after a
    # transient failure or an irreparably corrupted reading (only
    # exercised when a fault injector or scrub policy is active).
    max_measure_retries: int = 2
    # Rank-truncation threshold for the least-squares solves; None uses
    # the LAPACK convention max(m, n) * eps (repro.linalg.default_rcond).
    lstsq_rcond: Optional[float] = None
    # Numerical-robustness layer: conditioning sentinels on the QRCP and
    # composition solves, fallback ladders past the thresholds, and
    # leave-one-kernel-out certification of every composed metric.
    guard: GuardConfig = GuardConfig()
    # Strict mode: raise GuardViolation (naming the offending events)
    # instead of returning metrics whose trust stamp is ``reject``.
    strict: bool = False

    def __post_init__(self) -> None:
        if self.tau <= 0 or self.alpha <= 0 or self.representation_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if self.repetitions < 2:
            raise ValueError("need at least two repetitions")
        if self.max_measure_retries < 0:
            raise ValueError("max_measure_retries must be >= 0")
        if self.lstsq_rcond is not None and self.lstsq_rcond <= 0:
            raise ValueError("lstsq_rcond must be positive (or None for default)")
        if not isinstance(self.guard, GuardConfig):
            raise ValueError("guard must be a GuardConfig")

    def digest(self) -> str:
        """Content address of every knob that shapes the analysis output.

        The frozen-dataclass repr covers all thresholds (including the
        nested :class:`GuardConfig`), so two configs digest equal exactly
        when every analysis-relevant field matches.  ``use_measurement_cache``
        is excluded: the cache returns bit-identical measurements, so it
        cannot change a result — and the metric catalog
        (:mod:`repro.serve`) must key a cached run and an uncached run of
        the same thresholds to the same entry.

        Memoized: the serve layer digests the config on every catalog
        lookup, and the instance is frozen, so hash once.
        """
        cached = getattr(self, "_digest_cache", None)
        if cached is not None:
            return cached
        from dataclasses import replace as _replace

        from repro.io.digest import json_digest

        normalized = _replace(self, use_measurement_cache=False)
        digest = json_digest({"pipeline_config": repr(normalized)}, length=16)
        object.__setattr__(self, "_digest_cache", digest)
        return digest


#: Paper-stated thresholds per benchmark domain.
DOMAIN_CONFIGS: Dict[str, PipelineConfig] = {
    "cpu_flops": PipelineConfig(tau=1e-10, alpha=5e-4),
    "gpu_flops": PipelineConfig(tau=1e-10, alpha=5e-4),
    "branch": PipelineConfig(tau=1e-10, alpha=5e-4),
    "dcache": PipelineConfig(tau=1e-1, alpha=5e-2, representation_threshold=0.25),
    # Extension domain: translation events share the cache noise regime.
    "dtlb": PipelineConfig(tau=1e-1, alpha=5e-2, representation_threshold=0.25),
}


@dataclass
class PipelineResult:
    """Everything the analysis produced, stage by stage."""

    domain: str
    config: PipelineConfig
    measurement: MeasurementSet
    noise: NoiseReport
    representation: RepresentationReport
    qrcp: QRCPResult
    selected_events: List[str]
    x_hat: np.ndarray
    metrics: Dict[str, MetricDefinition]
    rounded_metrics: Dict[str, MetricDefinition]
    presets: PresetTable
    # Fault-injection audit (None when the pipeline ran unfaulted) and
    # whether events were lost to corruption along the way.
    robustness: Optional["RobustnessReport"] = None
    degraded: bool = False
    # Observability handle: the span tree and counter totals recorded for
    # this run (None unless the run executed inside an ``obs.tracing``
    # scope — tracing is off-by-default and costs nothing when off).
    trace: Optional["Trace"] = None

    def metric(self, name: str) -> MetricDefinition:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"metric {name!r} not composed; available: {sorted(self.metrics)}"
            ) from None

    def summary(self) -> str:
        lines = [
            f"domain: {self.domain}"
            + ("  [DEGRADED: events lost to faults]" if self.degraded else ""),
            f"events measured: {self.noise.n_measured}",
            f"  all-zero (discarded): {len(self.noise.discarded_zero)}",
            f"  noisy (> tau={self.config.tau:g}): {len(self.noise.noisy)}",
            *(
                [f"  excluded by vet prior: {len(self.noise.excluded_by_prior)}"]
                if self.noise.excluded_by_prior
                else []
            ),
            f"  unrepresentable (> {self.config.representation_threshold:g}): "
            f"{len(self.representation.rejected)}",
            f"selected by QRCP (alpha={self.config.alpha:g}): "
            f"{len(self.selected_events)}",
        ]
        for name in self.selected_events:
            lines.append(f"  {name}")
        if self.qrcp.health is not None:
            lines.append(f"  numerical health: {self.qrcp.health.describe()}")
        lines.append("metrics:")
        for metric in self.metrics.values():
            status = "ok" if metric.composable else "NOT COMPOSABLE"
            trust = (
                f"  trust={metric.trust.describe()}"
                if metric.trust is not None
                else ""
            )
            lines.append(
                f"  {metric.metric:<40} error {metric.error:.2e}  "
                f"[{status}]{trust}"
            )
        if self.trace is not None:
            lines.append(self.trace.footer())
        return "\n".join(lines)


class AnalysisPipeline:
    """Configured, reusable analysis for one benchmark domain on one node."""

    def __init__(
        self,
        node: MachineNode,
        benchmark,
        basis: ExpectationBasis,
        signatures: Sequence[Signature],
        config: PipelineConfig = PipelineConfig(),
        events: Optional[EventRegistry] = None,
        cache: Optional["MeasurementCache"] = None,
        faults: Optional[object] = None,
        scrub_policy: Optional["ScrubPolicy"] = None,
        priors: Optional["TrustPriors"] = None,
    ):
        self.node = node
        self.benchmark = benchmark
        self.basis = basis
        self.signatures = list(signatures)
        self.config = config
        self.events = events
        # Counter-validation trust priors (repro.vet).  Applied strictly by
        # exclusion after the tau filter, so a run with no priors — or with
        # priors that refute nothing — is bit-identical to today's
        # pipeline (property-tested).  Not part of PipelineConfig: the
        # config digest keys the catalog, and priors must not re-key
        # entries whose analysis output they leave untouched.
        self.priors = priors
        # Used only when config.use_measurement_cache is set; None means
        # the process-wide default cache.
        self.cache = cache
        # Fault injection (a FaultConfig or FaultInjector) and the quorum
        # scrub policy.  With both None the pipeline is byte-for-byte the
        # unfaulted one; an active injector implies scrubbing.
        self._injector = self._as_injector(faults)
        self.scrub_policy = scrub_policy
        if tuple(benchmark.row_labels()) != tuple(basis.row_labels):
            raise ValueError(
                "benchmark kernel rows do not match the expectation basis rows; "
                "the analysis would compare incommensurate vectors"
            )

    @staticmethod
    def _as_injector(faults) -> Optional["FaultInjector"]:
        if faults is None:
            return None
        from repro.faults import FaultConfig, FaultInjector

        if isinstance(faults, FaultConfig):
            return FaultInjector(faults) if faults.enabled else None
        return faults if faults.enabled else None

    @classmethod
    def for_domain(
        cls,
        domain: str,
        node: MachineNode,
        config: Optional[PipelineConfig] = None,
        cache: Optional["MeasurementCache"] = None,
        faults: Optional[object] = None,
        scrub_policy: Optional["ScrubPolicy"] = None,
        events: Optional[EventRegistry] = None,
        priors: Optional["TrustPriors"] = None,
        **benchmark_kwargs,
    ) -> "AnalysisPipeline":
        """Standard wiring for the paper's four benchmark domains."""
        if domain == "cpu_flops":
            benchmark = CPUFlopsBenchmark(**benchmark_kwargs)
            basis = cpu_flops_basis()
        elif domain == "gpu_flops":
            benchmark = GPUFlopsBenchmark(**benchmark_kwargs)
            basis = gpu_flops_basis()
        elif domain == "branch":
            benchmark = BranchBenchmark(**benchmark_kwargs)
            basis = branch_basis()
        elif domain == "dcache":
            # The footprint sweep adapts to the node's cache geometry.
            benchmark_kwargs.setdefault("cpu_config", getattr(node.machine, "config", None))
            benchmark = DCacheBenchmark(**benchmark_kwargs)
            basis = dcache_basis(benchmark)
        elif domain == "dtlb":
            from repro.cat.dtlb import DTLBBenchmark

            config_obj = getattr(node.machine, "config", None)
            if config_obj is not None:
                benchmark_kwargs.setdefault("tlb_config", config_obj.tlb)
            benchmark = DTLBBenchmark(**benchmark_kwargs)
            basis = dtlb_basis(benchmark)
        else:
            raise KeyError(
                f"unknown domain {domain!r}; expected one of "
                "cpu_flops, gpu_flops, branch, dcache, dtlb"
            )
        return cls(
            node=node,
            benchmark=benchmark,
            basis=basis,
            signatures=signatures_for(domain),
            config=config or DOMAIN_CONFIGS[domain],
            events=events,
            cache=cache,
            faults=faults,
            scrub_policy=scrub_policy,
            priors=priors,
        )

    # ------------------------------------------------------------------
    def _measure(self) -> MeasurementSet:
        """The measurement stage, optionally through the content cache.

        Under fault injection the cache still stores the *clean*
        measurement (corruption is applied after this layer), so faulted
        runs populate and reuse the same entries as unfaulted ones and a
        corrupted universe never poisons the cache.
        """
        config = self.config
        runner = BenchmarkRunner(self.node, repetitions=config.repetitions)
        registry = (
            self.events
            if self.events is not None
            else runner.select_events(self.benchmark)
        )
        if not config.use_measurement_cache:
            return runner.run(self.benchmark, events=registry)

        from repro.io.cache import default_measurement_cache, measurement_cache_key

        cache = self.cache if self.cache is not None else default_measurement_cache()
        key = measurement_cache_key(
            self.node, self.benchmark, registry, config.repetitions
        )
        return cache.get_or_measure(
            key, lambda: runner.run(self.benchmark, events=registry)
        )

    def _measure_robust(self, report: "RobustnessReport") -> MeasurementSet:
        """Measurement with the full self-healing loop.

        Each attempt: injected transient failures raise and are retried;
        injected corruption is applied to the (possibly cached) clean
        reading; the quorum scrubber repairs what it can.  If corruption
        beats the quorum (events would be lost) and retries remain, the
        whole measurement is re-attempted — a retry salts the injection
        streams differently, exactly like re-running on real hardware.
        Retries are bounded by ``config.max_measure_retries``; whatever
        is still broken after the last attempt is degraded, not fatal.
        """
        from repro.faults import (
            ScrubPolicy,
            ScrubResult,
            TransientMeasurementError,
            scrub_measurement,
        )

        injector = self._injector
        policy = self.scrub_policy if self.scrub_policy is not None else ScrubPolicy()
        # The scrubber only engages when cell-level corruption is possible
        # (an explicit scrub policy, or an injector with measurement
        # faults).  A crash/hang/run-failure-only universe leaves the data
        # untouched, so its successful runs stay bit-identical to clean.
        do_scrub = self.scrub_policy is not None or (
            injector is not None and injector.config.any_measurement_faults
        )
        context = report.context
        retries = self.config.max_measure_retries
        start = len(injector.records) if injector is not None else 0
        attempt = 0
        while True:
            try:
                if injector is not None:
                    injector.check_run_failure(context, attempt)
                clean = self._measure()
            except TransientMeasurementError as exc:
                if injector is not None:
                    report.records = injector.records[start:]
                if attempt >= retries:
                    report.retries.append(
                        f"measurement attempt {attempt} failed ({exc}); "
                        f"retries exhausted"
                    )
                    raise
                report.mark_retried(
                    "run-failure",
                    context,
                    f"measurement attempt {attempt} failed transiently; re-measured",
                )
                attempt += 1
                continue
            corrupted = (
                clean
                if injector is None
                else injector.corrupt_measurement(clean, context, attempt)
            )
            scrub = (
                scrub_measurement(corrupted, policy)
                if do_scrub
                else ScrubResult(measurement=corrupted)
            )
            if injector is not None:
                report.records = injector.records[start:]
            if scrub.dropped_events and attempt < retries:
                # Quorum could not repair some events: re-measure.  This
                # attempt's cell faults are settled by the re-measurement.
                marker = f"attempt {attempt}"
                for record in report.records:
                    if record.outcome == "injected" and record.detail == marker:
                        record.outcome = "recovered"
                report.retries.append(
                    f"attempt {attempt}: {len(scrub.dropped_events)} event(s) "
                    f"irreparable ({', '.join(scrub.dropped_events[:3])}"
                    f"{'...' if len(scrub.dropped_events) > 3 else ''}); re-measured"
                )
                attempt += 1
                continue
            report.reconcile_scrub(scrub.actions)
            self._settle_subnoise(report, clean, scrub.measurement)
            if injector is not None and self.config.use_measurement_cache:
                from repro.io.cache import default_measurement_cache

                cache = (
                    self.cache
                    if self.cache is not None
                    else default_measurement_cache()
                )
                quarantined = list(getattr(cache, "quarantined", ()))
                report.cache_quarantined.extend(
                    k for k in quarantined if k not in report.cache_quarantined
                )
                report.mark_cache_recovered(quarantined)
            return scrub.measurement

    def _settle_subnoise(
        self,
        report: "RobustnessReport",
        clean: MeasurementSet,
        scrubbed: MeasurementSet,
    ) -> None:
        """Settle still-open cell faults whose analysis-visible effect is
        below the noise floor the analysis already tolerates.

        Both the thread median and the repetition mean stand between a
        raw cell and the measurement matrix A, so most surviving spikes
        never reach the analysis at all.  The test is the paper's own
        Section-IV metric: the RNMSE between the event's clean and
        scrubbed A-columns.  At or below tau the residue is
        indistinguishable from measurement noise by the pipeline's own
        standard — the fault is recovered.  Above tau the records stay
        open for the downstream filters to account for (or to surface as
        genuinely silent corruption).
        """
        open_events = {
            r.event
            for r in report.records
            if r.outcome == "injected" and r.coords is not None
        }
        open_events.discard(None)
        if not open_events:
            return
        a_clean = clean.measurement_matrix()  # (rows, events)
        a_scrub = scrubbed.measurement_matrix()
        clean_idx = {n: i for i, n in enumerate(clean.event_names)}
        scrub_idx = {n: i for i, n in enumerate(scrubbed.event_names)}
        n_rows = a_clean.shape[0]
        settled = set()
        for event in open_events:
            jc, js = clean_idx.get(event), scrub_idx.get(event)
            if jc is None or js is None:
                continue
            col_clean, col_scrub = a_clean[:, jc], a_scrub[:, js]
            mean_product = col_clean.mean() * col_scrub.mean()
            if mean_product <= 0:
                if np.array_equal(col_clean, col_scrub):
                    settled.add(event)
                continue
            rnmse = float(
                np.linalg.norm(col_scrub - col_clean)
                / np.sqrt(n_rows * mean_product)
            )
            if rnmse <= self.config.tau:
                settled.add(event)
        for record in report.records:
            if record.outcome == "injected" and record.event in settled:
                record.outcome = "recovered"
                record.detail += "; below the analysis noise floor (tau)"

    def run(self, measurement: Optional[MeasurementSet] = None) -> PipelineResult:
        """Execute all stages; ``measurement`` may be injected (e.g. from
        disk) to skip the benchmark run.

        Every run records one span per stage into the ambient tracer
        (:mod:`repro.obs`): with tracing off (the default) the hooks are
        no-ops, and inside an ``obs.tracing`` scope the finished trace
        rides out on ``PipelineResult.trace``.  Tracing never feeds back
        into the analysis — traced and untraced runs are bit-identical
        (property-tested).
        """
        tracer = get_tracer()
        with tracer.span(
            "pipeline",
            domain=self.basis.name,
            node=self.node.name,
            benchmark=self.benchmark.name,
        ) as span:
            result = self._run_stages(measurement, tracer)
        if tracer.enabled and span.depth == 0:
            # Only a top-level run owns the trace; nested runs (e.g. sweep
            # tasks) contribute spans to the enclosing scope, which
            # exports one coherent trace for the whole sweep.
            result.trace = tracer.trace()
        return result

    def _run_stages(
        self, measurement: Optional[MeasurementSet], tracer
    ) -> PipelineResult:
        config = self.config
        robustness: Optional["RobustnessReport"] = None
        with tracer.span("measure") as span:
            injected = measurement is not None
            if (
                measurement is not None
                and config.guard.enabled
                and self.scrub_policy is None
            ):
                # An externally supplied measurement (from disk, a cache, a
                # remote run) gets boundary-checked before it reaches the
                # solvers; internally measured data goes through the fault
                # scrubber instead, which owns NaN repair.
                require_finite(
                    np.asarray(measurement.data),
                    "measurement.data",
                    context=f"pipeline[{self.basis.name}]",
                )
            if measurement is None:
                if self._injector is not None or self.scrub_policy is not None:
                    from repro.faults import RobustnessReport

                    robustness = RobustnessReport(
                        context=f"{self.node.name}:{self.benchmark.name}"
                    )
                    measurement = self._measure_robust(robustness)
                else:
                    measurement = self._measure()
            elif self.scrub_policy is not None:
                # An externally supplied measurement can still be scrubbed.
                from repro.faults import RobustnessReport, scrub_measurement

                robustness = RobustnessReport(
                    context=f"{self.node.name}:{self.benchmark.name}"
                )
                scrub = scrub_measurement(measurement, self.scrub_policy)
                robustness.reconcile_scrub(scrub.actions)
                measurement = scrub.measurement
            span.set(
                events=len(measurement.event_names),
                rows=len(measurement.row_labels),
                repetitions=int(measurement.data.shape[0]),
                injected=injected,
            )
        degraded = robustness.degraded if robustness is not None else False
        if degraded:
            tracer.incr("pipeline.degraded")

        # Stages 2-4: thread median happens inside the noise analysis and
        # measurement matrix; zero discard + tau filter:
        with tracer.span("noise-filter") as span:
            noise = analyze_noise(measurement, tau=config.tau)
            span.set(
                measured=noise.n_measured,
                kept=len(noise.kept),
                noisy=len(noise.noisy),
                zero=len(noise.discarded_zero),
            )
        tracer.incr("noise.measured", noise.n_measured)
        tracer.incr("noise.kept", len(noise.kept))
        tracer.incr("noise.noisy", len(noise.noisy))
        tracer.incr("noise.discarded_zero", len(noise.discarded_zero))

        if self.priors is not None:
            # Counter-validation priors: events the campaign refuted are
            # barred from selection *before* QRCP can pivot on them.  A
            # prior set that refutes nothing takes this branch without
            # changing ``kept`` — the downstream stages see byte-identical
            # inputs and produce byte-identical outputs.
            excluded = list(self.priors.excluded_events(noise.kept))
            if excluded:
                with tracer.span("vet-exclude") as span:
                    barred = set(excluded)
                    noise = replace(
                        noise,
                        kept=[e for e in noise.kept if e not in barred],
                        excluded_by_prior=excluded,
                    )
                    span.set(excluded=len(excluded))
                tracer.incr("vet.excluded_by_prior", len(excluded))

        with tracer.span("representation") as span:
            surviving = measurement.select_events(noise.kept)
            matrix = surviving.measurement_matrix()
            representation = represent_events(
                self.basis, noise.kept, matrix, config.representation_threshold
            )
            span.set(
                kept=len(representation.event_names),
                rejected=len(representation.rejected),
            )
        tracer.incr("representation.kept", len(representation.event_names))
        tracer.incr("representation.rejected", len(representation.rejected))

        if robustness is not None:
            # Faults the scrubber deliberately left alone (broad noise is
            # Section-IV territory) are accounted for by the pipeline's
            # own filters: an event rejected by tau or by representation
            # takes its injected faults out of the analysis with it.
            rejected = (
                set(noise.noisy)
                | set(noise.discarded_zero)
                | set(noise.excluded_by_prior)
                | set(representation.rejected)
            )
            for record in robustness.records:
                if record.outcome == "injected" and record.event in rejected:
                    record.outcome = "excluded"

        with tracer.span("qrcp") as span:
            qrcp = qrcp_specialized(
                representation.x_matrix, alpha=config.alpha, guard=config.guard
            )
            selected_idx = qrcp.selected
            selected_events = [representation.event_names[i] for i in selected_idx]
            x_hat = representation.x_matrix[:, selected_idx]
            span.set(
                candidates=int(representation.x_matrix.shape[1]),
                pivots=int(qrcp.rank),
            )
            if qrcp.health is not None and qrcp.health.guards_fired:
                span.set(guards=" -> ".join(qrcp.health.guards_fired))
        tracer.incr("qrcp.pivots", int(qrcp.rank))

        qrcp_guards = qrcp.health.guards_fired if qrcp.health is not None else ()
        certify = config.guard.enabled and config.guard.certify
        if certify:
            kept_idx = {name: i for i, name in enumerate(noise.kept)}
            m_sel = matrix[:, [kept_idx[name] for name in selected_events]]

        vet_stamp = None
        if self.priors is not None:
            from repro.vet.priors import VetStamp

            vet_stamp = VetStamp(
                verdicts={
                    event: self.priors.verdict_for(event)
                    for event in selected_events
                },
                excluded=tuple(noise.excluded_by_prior),
                source=self.priors.source,
            )

        metrics: Dict[str, MetricDefinition] = {}
        rounded: Dict[str, MetricDefinition] = {}
        presets = PresetTable(architecture=self.node.name)
        with tracer.span("compose") as span:
            for signature in self.signatures:
                with tracer.span("lstsq", metric=signature.name) as solve_span:
                    definition = compose_metric(
                        signature.name,
                        x_hat,
                        selected_events,
                        signature,
                        rcond=config.lstsq_rcond,
                        guard=config.guard,
                    )
                    solve_span.set(
                        error=float(definition.error),
                        composable=definition.composable,
                    )
                    if (
                        definition.health is not None
                        and definition.health.guards_fired
                    ):
                        solve_span.set(
                            guards=" -> ".join(definition.health.guards_fired)
                        )
                if degraded:
                    # Composed over a fault-degraded X-hat: flag the fitness.
                    definition = replace(definition, degraded=True)
                if certify:
                    fired = qrcp_guards + (
                        definition.health.guards_fired
                        if definition.health is not None
                        else ()
                    )
                    trust = certify_metric(
                        signature.name,
                        self.basis.matrix,
                        m_sel,
                        signature.coords,
                        selected_events,
                        definition.coefficients,
                        definition.error,
                        config=config.guard,
                        rcond=config.lstsq_rcond,
                        degraded=degraded,
                        guards_fired=fired,
                    )
                    definition = replace(definition, trust=trust)
                if vet_stamp is not None:
                    definition = replace(definition, vet=vet_stamp)
                metrics[signature.name] = definition
                snapped = round_coefficients(
                    definition,
                    x_hat=x_hat,
                    snap_tol=config.round_snap_tol,
                    zero_tol=config.round_zero_tol,
                )
                rounded[signature.name] = snapped
                if definition.composable:
                    # Presets carry the snapped coefficients (Section VI-D):
                    # consumers want 1*EVENT, not 1.00001*EVENT - 3e-16*OTHER.
                    presets.define(snapped.as_preset())
            composable = sum(1 for m in metrics.values() if m.composable)
            span.set(metrics=len(metrics), composable=composable)
        tracer.incr("compose.metrics", len(metrics))
        tracer.incr("compose.composable", composable)
        for definition in metrics.values():
            if definition.trust is not None:
                tracer.incr(f"certify.{definition.trust.level}")

        if config.strict:
            problems: List[str] = []
            if config.guard.enabled and qrcp.health is not None and qrcp.health.guards_fired:
                suspects = [
                    selected_events[i]
                    if i < len(selected_events)
                    else f"pivot {i}"
                    for i in qrcp.health.suspect_columns
                ]
                problems.append(
                    "the QRCP selection needed guarded intervention ("
                    + " -> ".join(qrcp.health.guards_fired)
                    + "); suspect columns: "
                    + (", ".join(suspects) if suspects else "unidentified")
                )
            rejected = {
                name: m.trust
                for name, m in metrics.items()
                if m.trust is not None and m.trust.level == "reject"
            }
            if rejected:
                details = "; ".join(
                    f"{name} (suspect events: "
                    f"{', '.join(trust.suspect_events) or 'unidentified'}; "
                    f"{trust.reasons[0] if trust.reasons else 'no reason recorded'})"
                    for name, trust in rejected.items()
                )
                problems.append(
                    f"{len(rejected)} metric definition(s) rejected by "
                    f"certification — {details}"
                )
            if self.priors is not None:
                # With validation priors in hand, strict mode also refuses
                # metrics that lean on events the campaign never vetted or
                # outright refuted: a metric is only as trustworthy as the
                # counters it is a linear combination of.
                unvetted_deps = {
                    name: sorted(
                        f"{event}={self.priors.verdict_for(event)}"
                        for event, coeff in zip(
                            definition.event_names, definition.coefficients
                        )
                        if coeff != 0.0
                        and self.priors.verdict_for(event) != "accurate"
                    )
                    for name, definition in metrics.items()
                }
                unvetted_deps = {k: v for k, v in unvetted_deps.items() if v}
                if unvetted_deps:
                    details = "; ".join(
                        f"{name} depends on {', '.join(events)}"
                        for name, events in sorted(unvetted_deps.items())
                    )
                    problems.append(
                        f"{len(unvetted_deps)} metric definition(s) depend on "
                        f"unvetted or refuted events — {details}"
                    )
            if problems:
                raise GuardViolation("strict mode: " + " | ".join(problems))

        return PipelineResult(
            domain=self.basis.name,
            config=config,
            measurement=measurement,
            noise=noise,
            representation=representation,
            qrcp=qrcp,
            selected_events=selected_events,
            x_hat=x_hat,
            metrics=metrics,
            rounded_metrics=rounded,
            presets=presets,
            robustness=robustness,
            degraded=degraded,
        )
