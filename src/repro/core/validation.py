"""Validation of derived metric definitions against ground truth.

The paper validates compositions on the CAT kernels themselves (Figure 3).
This module generalizes that check to *arbitrary* workloads: because the
simulated machines expose ground-truth activity, any metric definition can
be evaluated two ways — through its raw-event combination (what a tool
would measure) and directly from the activity record (what actually
happened) — and compared.  A definition that only fits the calibration
kernels but misbehaves on unseen instruction mixes would be caught here.

The bridge between the two views is the signature: each expectation-basis
dimension corresponds to one activity key (the ideal event), so the ground
truth of a metric is the signature-weighted sum of those keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.activity import Activity
from repro.cat.kernels import CPU_FLOPS_DIMENSIONS, GPU_FLOPS_DIMENSIONS
from repro.core.basis import ExpectationBasis
from repro.core.metrics import MetricDefinition
from repro.events.registry import EventRegistry

__all__ = [
    "MetricValidation",
    "dimension_activity_keys",
    "ground_truth",
    "validate_definition",
]

#: Activity keys of the branch and cache ideal dimensions.
_STATIC_DIMENSION_KEYS: Dict[str, Dict[str, str]] = {
    "branch": {
        "CE": "branch.cond_executed",
        "CR": "branch.cond_retired",
        "T": "branch.cond_taken",
        "D": "branch.uncond_direct",
        "M": "branch.mispredicted",
    },
    "dcache": {
        "L1DM": "cache.l1d.demand_miss",
        "L1DH": "cache.l1d.demand_hit",
        "L2DH": "cache.l2.demand_rd_hit",
        "L3DH": "cache.l3.hit",
    },
    "dtlb": {
        "DTLBH": "tlb.dtlb_load_hit",
        "STLBH": "tlb.stlb_hit",
        "WALK": "tlb.walks",
    },
}


def dimension_activity_keys(basis: ExpectationBasis) -> Dict[str, str]:
    """Map each basis dimension label to its ground-truth activity key."""
    if basis.name in _STATIC_DIMENSION_KEYS:
        return dict(_STATIC_DIMENSION_KEYS[basis.name])
    if basis.name == "cpu_flops":
        return {d.symbol: d.activity_key for d in CPU_FLOPS_DIMENSIONS}
    if basis.name == "gpu_flops":
        return {d.symbol: d.activity_key for d in GPU_FLOPS_DIMENSIONS}
    raise KeyError(f"no activity-key mapping for basis {basis.name!r}")


def ground_truth(
    definition: MetricDefinition, basis: ExpectationBasis, activity: Activity
) -> float:
    """What the metric's signature says the workload actually did."""
    if definition.signature is None:
        raise ValueError(
            f"metric {definition.metric!r} carries no signature; ground "
            "truth is signature-defined"
        )
    keys = dimension_activity_keys(basis)
    coords = definition.signature.coords
    return float(
        sum(
            coords[i] * activity.get(keys[label])
            for i, label in enumerate(basis.dimension_labels)
        )
    )


@dataclass(frozen=True)
class MetricValidation:
    """Outcome of validating one metric over a set of workloads."""

    metric: str
    cases: Tuple[Tuple[str, float, float], ...]  # (name, measured, truth)
    tolerance: float

    @property
    def max_abs_error(self) -> float:
        if not self.cases:
            return 0.0
        return max(abs(m - t) for _, m, t in self.cases)

    @property
    def max_rel_error(self) -> float:
        worst = 0.0
        for _, measured, truth in self.cases:
            scale = max(abs(truth), 1.0)
            worst = max(worst, abs(measured - truth) / scale)
        return worst

    @property
    def passed(self) -> bool:
        return self.max_rel_error <= self.tolerance

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{self.metric}: {len(self.cases)} workloads, max relative "
            f"error {self.max_rel_error:.2e} [{status}]"
        )


def validate_definition(
    definition: MetricDefinition,
    basis: ExpectationBasis,
    workloads: Sequence[Tuple[str, Activity]],
    events: EventRegistry,
    tolerance: float = 1e-6,
    rng_for_event=None,
) -> MetricValidation:
    """Evaluate a definition on workloads and compare against ground truth.

    ``workloads`` are (name, activity) pairs — typically produced by
    running application-like kernels on the node's machine.  Readings are
    noise-free unless ``rng_for_event`` supplies generators (to study how
    measurement noise propagates into the composed metric).
    """
    rng_for_event = rng_for_event or (lambda event: None)
    cases: List[Tuple[str, float, float]] = []
    needed = [name for name, c in definition.terms().items()]
    resolved = {name: events.get(name) for name in needed}
    for workload_name, activity in workloads:
        readings = {
            name: event.read(activity, rng_for_event(event))
            for name, event in resolved.items()
        }
        measured = float(
            sum(coeff * readings[name] for name, coeff in definition.terms().items())
        )
        truth = ground_truth(definition, basis, activity)
        cases.append((workload_name, measured, truth))
    return MetricValidation(
        metric=definition.metric, cases=tuple(cases), tolerance=tolerance
    )
