"""Parallel sweep engine: fan (node x domain) pipelines across workers.

The portability story multiplies pipelines — every node runs every
applicable domain, and each pipeline is independent of all others (its
node, benchmark, and noise streams are fully determined by its own
configuration).  That makes the sweep embarrassingly parallel; this module
exploits it with a ``concurrent.futures`` pool while keeping the repo's
reproducibility contract:

* **Deterministic results** — each task's pipeline is bit-deterministic
  (including under fault injection: the injector draws from per-site
  streams), so parallel, serial, and resumed execution produce identical
  artifacts.
* **Deterministic ordering** — outcomes are returned in task-submission
  order regardless of completion order, so downstream consumers (reports,
  portability matrices, CLI output) never observe scheduling jitter.

Resilience: each task runs under a bounded retry loop with exponential
backoff; pool executions honour a per-task timeout so a hung worker can
not stall the sweep; failures capture the exception type and formatted
traceback in :class:`SweepOutcome`; and a :class:`SweepCheckpoint`
directory persists completed outcomes so a killed sweep resumes from
where it died instead of re-running everything.

Used by the ``sweep`` CLI subcommand, the portability benches, and the
cross-architecture example.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
import traceback as traceback_module
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.pipeline import (
    AnalysisPipeline,
    DOMAIN_CONFIGS,
    PipelineConfig,
    PipelineResult,
)
from repro.faults import FaultConfig, FaultInjector, FaultRecord
from repro.hardware.systems import aurora_node, frontier_cpu_node, frontier_node
from repro.io.digest import sha256_hex
from repro.obs import get_tracer

__all__ = [
    "SWEEP_SYSTEMS",
    "SYSTEM_DOMAINS",
    "SweepCheckpoint",
    "SweepEngine",
    "SweepOutcome",
    "SweepTask",
    "expand_grid",
    "result_digest",
    "results_by_label",
]

logger = logging.getLogger(__name__)

#: Node factories by sweep-facing system name.
SWEEP_SYSTEMS = {
    "aurora": aurora_node,
    "frontier": frontier_node,
    "frontier-cpu": frontier_cpu_node,
}

#: Domains each system's substrate can measure (the GPU node only hosts
#: the GPU FLOPs benchmark; the CPU nodes host everything else).
SYSTEM_DOMAINS: Dict[str, Tuple[str, ...]] = {
    "aurora": ("cpu_flops", "branch", "dcache", "dtlb"),
    "frontier": ("gpu_flops",),
    "frontier-cpu": ("cpu_flops", "branch", "dcache", "dtlb"),
}


@dataclass(frozen=True)
class SweepTask:
    """One (system, domain) pipeline invocation.

    ``cache_dir`` points the pipeline's measurement cache at a shared
    on-disk root so cache hits survive process boundaries and re-runs
    (it implies measurement caching even if ``config`` does not set it).
    ``faults`` wraps the task in the fault-injection substrate
    (:mod:`repro.faults`); each task builds its own injector from the
    config, so injection stays deterministic per task regardless of
    which worker runs it.
    """

    system: str
    domain: str
    seed: int = 2024
    config: Optional[PipelineConfig] = None
    cache_dir: Optional[str] = None
    faults: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        from repro.guard.validate import require_int

        if self.system not in SWEEP_SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; expected one of "
                f"{sorted(SWEEP_SYSTEMS)}"
            )
        if self.domain not in SYSTEM_DOMAINS[self.system]:
            raise ValueError(
                f"domain {self.domain!r} is not measurable on "
                f"{self.system!r} (has: {SYSTEM_DOMAINS[self.system]})"
            )
        require_int(
            self.seed, "seed", f"SweepTask[{self.system}:{self.domain}]", minimum=0
        )

    @property
    def label(self) -> str:
        return f"{self.system}:{self.domain}"

    def fingerprint(self) -> str:
        """Content address of everything that determines this task's
        result — the checkpoint key."""
        blob = "\x00".join(
            (
                self.system,
                self.domain,
                str(self.seed),
                repr(self.config),
                repr(self.faults),
            )
        )
        return sha256_hex(blob, length=24)


@dataclass
class SweepOutcome:
    """Result (or failure) of one sweep task, plus execution metadata.

    On failure, ``error`` keeps the human-readable one-liner while
    ``error_type`` and ``traceback`` preserve the exception class name
    and the full formatted traceback — a sweep failure is diagnosable
    without re-running the task.  ``attempts`` counts executions
    (1 = first try succeeded); ``resumed`` marks outcomes loaded from a
    checkpoint instead of executed.
    """

    task: SweepTask
    result: Optional[PipelineResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    traceback: Optional[str] = None
    seconds: float = 0.0
    attempts: int = 1
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def expand_grid(
    systems: Sequence[str],
    domains: Sequence[str],
    seed: int = 2024,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    faults: Optional[FaultConfig] = None,
) -> List[SweepTask]:
    """Cartesian (system x domain) task list, skipping combinations the
    system cannot measure (e.g. ``gpu_flops`` on a CPU node).

    Order is deterministic: systems outer, domains inner, as given.
    """
    use_cache = use_cache or cache_dir is not None
    tasks: List[SweepTask] = []
    for system in systems:
        if system not in SWEEP_SYSTEMS:
            raise ValueError(
                f"unknown system {system!r}; expected one of {sorted(SWEEP_SYSTEMS)}"
            )
        for domain in domains:
            if domain not in SYSTEM_DOMAINS[system]:
                continue
            config = None
            if use_cache:
                if domain not in DOMAIN_CONFIGS:
                    raise KeyError(f"unknown domain {domain!r}")
                config = replace(DOMAIN_CONFIGS[domain], use_measurement_cache=True)
            tasks.append(
                SweepTask(
                    system=system,
                    domain=domain,
                    seed=seed,
                    config=config,
                    cache_dir=cache_dir,
                    faults=faults,
                )
            )
    return tasks


def _execute_task(task: SweepTask, attempt: int = 0) -> PipelineResult:
    """Worker body: build the node and run its pipeline (picklable,
    module-level, so it works under a process pool)."""
    injector = None
    pre_records: List[FaultRecord] = []
    if task.faults is not None and task.faults.enabled:
        injector = FaultInjector(task.faults)
        injector.check_worker_crash(task.label, attempt)
        hang = injector.hang_duration(task.label, attempt)
        if hang > 0:
            time.sleep(hang)
            # The worker outlived its injected hang (no timeout killed
            # it): the fault delayed the task but cost nothing else.
            injector.records[-1].outcome = "recovered"
            injector.records[-1].detail += "; completed after the delay"
        if task.cache_dir is not None:
            injector.maybe_corrupt_cache(task.cache_dir, task.label)
        pre_records = list(injector.records)
    node = SWEEP_SYSTEMS[task.system](seed=task.seed)
    cache = None
    config = task.config
    if task.cache_dir is not None:
        from repro.io.cache import MeasurementCache

        cache = MeasurementCache(root=task.cache_dir)
        if config is None:
            config = replace(DOMAIN_CONFIGS[task.domain], use_measurement_cache=True)
    pipeline = AnalysisPipeline.for_domain(
        task.domain, node, config=config, cache=cache, faults=injector
    )
    result = pipeline.run()
    if pre_records and result.robustness is not None:
        # Worker-level faults (cache corruption, survived hangs) fired
        # before the pipeline opened its record window: fold them into
        # the audit so nothing injected here goes unaccounted.
        result.robustness.records[:0] = pre_records
        if cache is not None:
            result.robustness.mark_cache_recovered(
                getattr(cache, "quarantined", ())
            )
    return result


def _run_one(task: SweepTask, attempt: int = 0) -> SweepOutcome:
    start = time.perf_counter()
    try:
        result = _execute_task(task, attempt)
    except Exception as exc:  # noqa: BLE001 — one task must not sink the sweep
        return SweepOutcome(
            task=task,
            error=f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__,
            traceback=traceback_module.format_exc(),
            seconds=time.perf_counter() - start,
            attempts=attempt + 1,
        )
    return SweepOutcome(
        task=task,
        result=result,
        seconds=time.perf_counter() - start,
        attempts=attempt + 1,
    )


class SweepCheckpoint:
    """Per-task persistence so a killed sweep resumes instead of redoing.

    Each *successful* outcome is pickled under the task's content
    fingerprint (system, domain, seed, config, fault config) — resuming
    with a changed grid or fault universe never reuses stale results.
    Writes are atomic (tmp + rename), so a kill mid-write leaves no
    half-checkpoint; unreadable files are treated as absent.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, task: SweepTask) -> Path:
        return self.root / f"{task.label.replace(':', '_')}-{task.fingerprint()}.pkl"

    def load(self, task: SweepTask) -> Optional[SweepOutcome]:
        path = self._path(task)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                outcome = pickle.load(fh)
        except Exception as exc:  # truncated/corrupt checkpoint: redo
            logger.warning(
                "sweep checkpoint %s unreadable (%s: %s); re-running task",
                path,
                type(exc).__name__,
                exc,
            )
            return None
        if not isinstance(outcome, SweepOutcome) or not outcome.ok:
            return None
        return outcome

    def store(self, outcome: SweepOutcome) -> None:
        if not outcome.ok:
            return  # failures are retried on resume, never replayed
        path = self._path(outcome.task)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(outcome, fh)
        os.replace(tmp, path)


class SweepEngine:
    """Runs sweep tasks across a worker pool with ordered results.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` lets ``concurrent.futures`` pick (CPU count).
    executor:
        ``"process"`` (default — true parallelism; pipelines are
        numpy/CPU-bound), ``"thread"``, or ``"serial"`` (in-process, no
        pool; also the automatic fallback when a pool cannot start, e.g.
        in sandboxes that forbid forking).
    task_timeout:
        Seconds a single task attempt may run before it is abandoned and
        counted as failed (pool executors only; serial execution cannot
        interrupt a task).  ``None`` disables the timeout.
    max_retries:
        How many times a failed (or timed-out) attempt is re-submitted
        before the failure is final.  Retries pass an incremented
        ``attempt`` to the fault injector, so transient injected faults
        clear on retry exactly like transient hardware faults do.
    backoff:
        Base of the exponential backoff slept between retry waves
        (``backoff * 2**wave`` seconds).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        executor: str = "process",
        task_timeout: Optional[float] = None,
        max_retries: int = 1,
        backoff: float = 0.25,
    ):
        if executor not in ("process", "thread", "serial"):
            raise ValueError(
                f"executor must be process, thread or serial; got {executor!r}"
            )
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self.max_workers = max_workers
        self.executor = executor
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.backoff = backoff

    # ------------------------------------------------------------------
    def _make_pool(self) -> Executor:
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=self.max_workers)
        return ThreadPoolExecutor(max_workers=self.max_workers)

    @staticmethod
    def _note_recovery(
        outcome: SweepOutcome, failures: List[Tuple[str, str]]
    ) -> None:
        """Fold earlier attempts' failures into the successful outcome's
        robustness report (injected crashes/hangs settle as recovered)."""
        report = outcome.result.robustness if outcome.result else None
        if report is None:
            return
        for error_type, error in failures:
            report.retries.append(
                f"task attempt failed ({error}); retried successfully"
            )
            kind = {
                "InjectedWorkerCrash": "crash",
                "TimeoutError": "hang",
            }.get(error_type)
            if kind is not None and outcome.task.faults is not None:
                report.records.append(
                    FaultRecord(
                        kind=kind,
                        context=outcome.task.label,
                        outcome="recovered",
                        detail="recovered by sweep retry",
                    )
                )

    def _run_serial(
        self, task: SweepTask, checkpoint: Optional[SweepCheckpoint]
    ) -> SweepOutcome:
        failures: List[Tuple[str, str]] = []
        tracer = get_tracer()
        for attempt in range(self.max_retries + 1):
            if attempt:
                time.sleep(self.backoff * 2 ** (attempt - 1))
                tracer.incr("sweep.retries")
            with tracer.span("sweep-task", label=task.label, attempt=attempt):
                outcome = _run_one(task, attempt)
            if outcome.ok:
                self._note_recovery(outcome, failures)
                if checkpoint is not None:
                    checkpoint.store(outcome)
                return outcome
            failures.append((outcome.error_type or "", outcome.error or ""))
        return outcome

    def _run_pool(
        self,
        tasks: List[SweepTask],
        pending: List[int],
        results: List[Optional[SweepOutcome]],
        checkpoint: Optional[SweepCheckpoint],
    ) -> None:
        pool = self._make_pool()
        try:
            attempt = {i: 0 for i in pending}
            failures: Dict[int, List[Tuple[str, str]]] = {i: [] for i in pending}
            wave_no = 0
            wave = list(pending)
            while wave:
                if wave_no:
                    time.sleep(self.backoff * 2 ** (wave_no - 1))
                futures = {
                    i: pool.submit(_run_one, tasks[i], attempt[i]) for i in wave
                }
                next_wave: List[int] = []
                for i in wave:
                    try:
                        outcome = futures[i].result(timeout=self.task_timeout)
                    except FuturesTimeoutError:
                        futures[i].cancel()
                        outcome = SweepOutcome(
                            task=tasks[i],
                            error=(
                                f"TimeoutError: task exceeded "
                                f"{self.task_timeout:g}s"
                            ),
                            error_type="TimeoutError",
                            seconds=float(self.task_timeout or 0.0),
                            attempts=attempt[i] + 1,
                        )
                    if outcome.ok:
                        self._note_recovery(outcome, failures[i])
                        if checkpoint is not None:
                            checkpoint.store(outcome)
                        results[i] = outcome
                    elif attempt[i] < self.max_retries:
                        failures[i].append(
                            (outcome.error_type or "", outcome.error or "")
                        )
                        attempt[i] += 1
                        next_wave.append(i)
                    else:
                        results[i] = outcome
                wave = next_wave
                wave_no += 1
        finally:
            # wait=False: a worker hung past its timeout must not stall
            # the sweep's exit; live tasks were already abandoned.
            pool.shutdown(wait=False, cancel_futures=True)

    def run(
        self,
        tasks: Sequence[SweepTask],
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ) -> List[SweepOutcome]:
        """Execute all tasks; outcomes are returned in task order.

        With ``checkpoint_dir``, previously completed tasks are loaded
        instead of re-executed (marked ``resumed``) and each new success
        is persisted as soon as it lands — kill the sweep at any point
        and a re-invocation picks up from the survivors.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        tracer = get_tracer()
        checkpoint = (
            SweepCheckpoint(checkpoint_dir) if checkpoint_dir is not None else None
        )
        results: List[Optional[SweepOutcome]] = [None] * len(tasks)
        with tracer.span(
            "sweep", tasks=len(tasks), executor=self.executor
        ) as span:
            pending: List[int] = []
            for i, task in enumerate(tasks):
                loaded = checkpoint.load(task) if checkpoint is not None else None
                if loaded is not None:
                    loaded.resumed = True
                    results[i] = loaded
                else:
                    pending.append(i)

            if pending:
                if self.executor == "serial" or len(pending) == 1:
                    for i in pending:
                        results[i] = self._run_serial(tasks[i], checkpoint)
                else:
                    try:
                        self._run_pool(tasks, pending, results, checkpoint)
                    except (OSError, PermissionError) as exc:
                        # Pool could not start (restricted environment).
                        logger.warning(
                            "sweep worker pool unavailable (%s: %s); "
                            "falling back to serial execution",
                            type(exc).__name__,
                            exc,
                        )
                        for i in pending:
                            if results[i] is None:
                                results[i] = self._run_serial(tasks[i], checkpoint)
            ok = sum(1 for o in results if o is not None and o.ok)
            resumed = sum(1 for o in results if o is not None and o.resumed)
            span.set(ok=ok, failed=len(tasks) - ok, resumed=resumed)
        tracer.incr("sweep.tasks", len(tasks))
        tracer.incr("sweep.ok", ok)
        tracer.incr("sweep.failed", len(tasks) - ok)
        tracer.incr("sweep.resumed", resumed)
        return results  # type: ignore[return-value]

    def run_grid(
        self,
        systems: Sequence[str],
        domains: Sequence[str],
        seed: int = 2024,
        use_cache: bool = False,
        cache_dir: Optional[str] = None,
        faults: Optional[FaultConfig] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ) -> List[SweepOutcome]:
        """Convenience: :func:`expand_grid` + :meth:`run`."""
        return self.run(
            expand_grid(
                systems,
                domains,
                seed=seed,
                use_cache=use_cache,
                cache_dir=cache_dir,
                faults=faults,
            ),
            checkpoint_dir=checkpoint_dir,
        )


def results_by_label(outcomes: Sequence[SweepOutcome]) -> Dict[str, PipelineResult]:
    """``{"system:domain": PipelineResult}`` for the successful outcomes."""
    return {o.task.label: o.result for o in outcomes if o.ok and o.result is not None}


def result_digest(result: PipelineResult) -> str:
    """Deterministic digest of a pipeline result's *analysis content*.

    Covers the measurement data, the surviving event names, the QRCP
    selection and the rounded metric terms — everything reproducibility
    promises — and nothing incidental (timings, attempt counts, object
    identity).  Two runs of the same configuration must agree on this
    digest whether they ran serially, in parallel, or resumed from a
    checkpoint; the CI fault smoke test compares exactly this.
    """
    chunks: List[Union[str, bytes]] = [
        result.measurement.data.tobytes(),
        "\x00".join(result.measurement.event_names),
        "\x00".join(result.selected_events),
    ]
    for name in sorted(result.rounded_metrics):
        metric = result.rounded_metrics[name]
        terms = sorted((e, round(c, 12)) for e, c in metric.terms().items())
        chunks.extend((name, repr(terms), f"{metric.error:.12e}"))
    return sha256_hex(*chunks, length=16)
