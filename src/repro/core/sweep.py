"""Parallel sweep engine: fan (node x domain) pipelines across workers.

The portability story multiplies pipelines — every node runs every
applicable domain, and each pipeline is independent of all others (its
node, benchmark, and noise streams are fully determined by its own
configuration).  That makes the sweep embarrassingly parallel; this module
exploits it with a ``concurrent.futures`` pool while keeping the repo's
reproducibility contract:

* **Deterministic results** — each task's pipeline is bit-deterministic,
  so parallel and serial execution produce identical artifacts.
* **Deterministic ordering** — outcomes are returned in task-submission
  order regardless of completion order, so downstream consumers (reports,
  portability matrices, CLI output) never observe scheduling jitter.

Used by the ``sweep`` CLI subcommand, the portability benches, and the
cross-architecture example.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    AnalysisPipeline,
    DOMAIN_CONFIGS,
    PipelineConfig,
    PipelineResult,
)
from repro.hardware.systems import aurora_node, frontier_cpu_node, frontier_node

__all__ = [
    "SWEEP_SYSTEMS",
    "SYSTEM_DOMAINS",
    "SweepEngine",
    "SweepOutcome",
    "SweepTask",
    "expand_grid",
    "results_by_label",
]

#: Node factories by sweep-facing system name.
SWEEP_SYSTEMS = {
    "aurora": aurora_node,
    "frontier": frontier_node,
    "frontier-cpu": frontier_cpu_node,
}

#: Domains each system's substrate can measure (the GPU node only hosts
#: the GPU FLOPs benchmark; the CPU nodes host everything else).
SYSTEM_DOMAINS: Dict[str, Tuple[str, ...]] = {
    "aurora": ("cpu_flops", "branch", "dcache", "dtlb"),
    "frontier": ("gpu_flops",),
    "frontier-cpu": ("cpu_flops", "branch", "dcache", "dtlb"),
}


@dataclass(frozen=True)
class SweepTask:
    """One (system, domain) pipeline invocation.

    ``cache_dir`` points the pipeline's measurement cache at a shared
    on-disk root so cache hits survive process boundaries and re-runs
    (it implies measurement caching even if ``config`` does not set it).
    """

    system: str
    domain: str
    seed: int = 2024
    config: Optional[PipelineConfig] = None
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.system not in SWEEP_SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; expected one of "
                f"{sorted(SWEEP_SYSTEMS)}"
            )
        if self.domain not in SYSTEM_DOMAINS[self.system]:
            raise ValueError(
                f"domain {self.domain!r} is not measurable on "
                f"{self.system!r} (has: {SYSTEM_DOMAINS[self.system]})"
            )

    @property
    def label(self) -> str:
        return f"{self.system}:{self.domain}"


@dataclass
class SweepOutcome:
    """Result (or failure) of one sweep task, plus wall time."""

    task: SweepTask
    result: Optional[PipelineResult] = None
    error: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def expand_grid(
    systems: Sequence[str],
    domains: Sequence[str],
    seed: int = 2024,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
) -> List[SweepTask]:
    """Cartesian (system x domain) task list, skipping combinations the
    system cannot measure (e.g. ``gpu_flops`` on a CPU node).

    Order is deterministic: systems outer, domains inner, as given.
    """
    use_cache = use_cache or cache_dir is not None
    tasks: List[SweepTask] = []
    for system in systems:
        if system not in SWEEP_SYSTEMS:
            raise ValueError(
                f"unknown system {system!r}; expected one of {sorted(SWEEP_SYSTEMS)}"
            )
        for domain in domains:
            if domain not in SYSTEM_DOMAINS[system]:
                continue
            config = None
            if use_cache:
                if domain not in DOMAIN_CONFIGS:
                    raise KeyError(f"unknown domain {domain!r}")
                config = replace(DOMAIN_CONFIGS[domain], use_measurement_cache=True)
            tasks.append(
                SweepTask(
                    system=system,
                    domain=domain,
                    seed=seed,
                    config=config,
                    cache_dir=cache_dir,
                )
            )
    return tasks


def _execute_task(task: SweepTask) -> PipelineResult:
    """Worker body: build the node and run its pipeline (picklable,
    module-level, so it works under a process pool)."""
    node = SWEEP_SYSTEMS[task.system](seed=task.seed)
    cache = None
    config = task.config
    if task.cache_dir is not None:
        from repro.io.cache import MeasurementCache

        cache = MeasurementCache(root=task.cache_dir)
        if config is None:
            config = replace(DOMAIN_CONFIGS[task.domain], use_measurement_cache=True)
    pipeline = AnalysisPipeline.for_domain(
        task.domain, node, config=config, cache=cache
    )
    return pipeline.run()


def _run_one(task: SweepTask) -> SweepOutcome:
    start = time.perf_counter()
    try:
        result = _execute_task(task)
    except Exception as exc:  # noqa: BLE001 — one task must not sink the sweep
        return SweepOutcome(
            task=task,
            error=f"{type(exc).__name__}: {exc}",
            seconds=time.perf_counter() - start,
        )
    return SweepOutcome(task=task, result=result, seconds=time.perf_counter() - start)


class SweepEngine:
    """Runs sweep tasks across a worker pool with ordered results.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` lets ``concurrent.futures`` pick (CPU count).
    executor:
        ``"process"`` (default — true parallelism; pipelines are
        numpy/CPU-bound), ``"thread"``, or ``"serial"`` (in-process, no
        pool; also the automatic fallback when a pool cannot start, e.g.
        in sandboxes that forbid forking).
    """

    def __init__(self, max_workers: Optional[int] = None, executor: str = "process"):
        if executor not in ("process", "thread", "serial"):
            raise ValueError(
                f"executor must be process, thread or serial; got {executor!r}"
            )
        self.max_workers = max_workers
        self.executor = executor

    # ------------------------------------------------------------------
    def _make_pool(self) -> Executor:
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=self.max_workers)
        return ThreadPoolExecutor(max_workers=self.max_workers)

    def run(self, tasks: Sequence[SweepTask]) -> List[SweepOutcome]:
        """Execute all tasks; outcomes are returned in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.executor == "serial" or len(tasks) == 1:
            return [_run_one(task) for task in tasks]
        try:
            with self._make_pool() as pool:
                # Submission order == result order: determinism regardless
                # of which worker finishes first.
                futures = [pool.submit(_run_one, task) for task in tasks]
                return [f.result() for f in futures]
        except (OSError, PermissionError):
            # Pool could not start (restricted environment): run serial.
            return [_run_one(task) for task in tasks]

    def run_grid(
        self,
        systems: Sequence[str],
        domains: Sequence[str],
        seed: int = 2024,
        use_cache: bool = False,
        cache_dir: Optional[str] = None,
    ) -> List[SweepOutcome]:
        """Convenience: :func:`expand_grid` + :meth:`run`."""
        return self.run(
            expand_grid(
                systems, domains, seed=seed, use_cache=use_cache, cache_dir=cache_dir
            )
        )


def results_by_label(outcomes: Sequence[SweepOutcome]) -> Dict[str, PipelineResult]:
    """``{"system:domain": PipelineResult}`` for the successful outcomes."""
    return {o.task.label: o.result for o in outcomes if o.ok and o.result is not None}
