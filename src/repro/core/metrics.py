"""Metric composition: least squares over the QRCP-selected events.

Paper Section VI.  With the linearly independent event representations
``X-hat`` (one column per selected event, in expectation coordinates) and a
metric signature ``s``, solve ``X-hat y = s`` by least squares.  The
backward error (Equation 5) is the fitness certificate:

* ~machine epsilon — the metric is exactly composable from raw events;
* moderate (e.g. 2.4e-1 for the FMA metrics on SPR) — no event subset
  isolates the concept; the least-squares combination is a best effort and
  the error says *how* partial it is;
* 1.0 — the signature is orthogonal to everything the architecture's
  events can express (e.g. speculatively executed branches on SPR).

Section VI-D's coefficient rounding is also here: cache-event coefficients
land within a couple of percent of {-1, 0, 1} because of measurement noise,
and snapping them recovers the exact combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.signatures import Signature
from repro.linalg import lstsq_qr
from repro.linalg.norms import backward_error
from repro.papi.presets import PAPI_PRESET_NAMES, PresetMetric

if TYPE_CHECKING:
    from repro.guard.certify import TrustScore
    from repro.guard.health import GuardConfig, NumericalHealth
    from repro.vet.priors import VetStamp

__all__ = ["MetricDefinition", "compose_metric", "round_coefficients"]


@dataclass(frozen=True)
class MetricDefinition:
    """A metric as a linear combination of raw events, with fitness.

    ``coefficients`` aligns with ``event_names``.  ``error`` is the paper's
    Equation-5 backward error of the fit.
    """

    metric: str
    event_names: Tuple[str, ...]
    coefficients: np.ndarray
    error: float
    signature: Optional[Signature] = None
    # True when the metric was composed over a fault-degraded X-hat
    # (events were lost to corruption); the fit is a best effort over the
    # survivors and the fitness should be read with that caveat.
    degraded: bool = False
    # Conditioning sentinel readings of the composition solve (populated
    # when the pipeline runs with a guard config).
    health: Optional["NumericalHealth"] = None
    # Leave-one-kernel-out certification stamp (certified/caution/reject
    # with reasons); None when certification was not run.
    trust: Optional["TrustScore"] = None
    # Counter-validation evidence (repro.vet): the verdicts of the events
    # this metric composes over and what the priors excluded; None when
    # the pipeline ran without trust priors.
    vet: Optional["VetStamp"] = None

    def __post_init__(self) -> None:
        coeffs = np.asarray(self.coefficients, dtype=np.float64)
        object.__setattr__(self, "coefficients", coeffs)
        if coeffs.shape != (len(self.event_names),):
            raise ValueError(
                f"{len(self.event_names)} events vs coefficient shape {coeffs.shape}"
            )

    @property
    def composable(self) -> bool:
        """Whether the error certifies a genuine composition (paper: small
        errors mean good definitions; errors near 1 mean absence)."""
        return self.error < 1e-3

    def terms(self, drop_zero: bool = True) -> Dict[str, float]:
        """Event -> coefficient mapping (zero coefficients dropped)."""
        return {
            e: float(c)
            for e, c in zip(self.event_names, self.coefficients)
            if not (drop_zero and c == 0.0)
        }

    def evaluate(self, readings: Dict[str, float]) -> float:
        """Apply the definition to raw readings.

        Zero-coefficient events are skipped — a tool consuming the
        definition would not program counters for them, so their readings
        need not be present.
        """
        return float(
            sum(
                c * readings[e]
                for e, c in zip(self.event_names, self.coefficients)
                if c != 0.0
            )
        )

    def as_preset(self) -> PresetMetric:
        """Convert to a PAPI-style preset definition."""
        name = PAPI_PRESET_NAMES.get(self.metric, self.metric)
        return PresetMetric(
            name=name,
            terms=self.terms(),
            fitness=self.error,
            description=(self.signature.description if self.signature else ""),
        )

    def pretty(self) -> str:
        """Paper-table style rendering."""
        lines = []
        for event, coeff in zip(self.event_names, self.coefficients):
            sign = "-" if coeff < 0 else "+"
            mag = abs(coeff)
            coeff_str = f"{mag:g}" if 1e-3 <= mag else f"{mag:.2e}"
            lines.append(f"  {sign} {coeff_str} x {event}")
        suffix = "  [DEGRADED]" if self.degraded else ""
        if self.trust is not None:
            suffix += f"  [trust: {self.trust.level}]"
        if self.vet is not None and not self.vet.clean:
            suffix += f"  [vet: {self.vet.describe()}]"
        header = f"{self.metric}  (error {self.error:.2e}){suffix}"
        return "\n".join([header] + lines)


def compose_metric(
    metric_name: str,
    x_hat: np.ndarray,
    event_names: Sequence[str],
    signature: Signature,
    rcond: Optional[float] = None,
    guard: Optional["GuardConfig"] = None,
) -> MetricDefinition:
    """Solve ``X-hat y = s`` and wrap the result (paper Section VI).

    With ``guard``, the solve carries a conditioning sentinel and engages
    the fallback ladder (column-scaled re-factorization + iterative
    refinement) when the selection is ill-conditioned; the resulting
    health record rides on the definition.
    """
    x_hat = np.asarray(x_hat, dtype=np.float64)
    if x_hat.shape[1] != len(event_names):
        raise ValueError(
            f"X-hat has {x_hat.shape[1]} columns but {len(event_names)} names given"
        )
    if x_hat.shape[0] != signature.coords.shape[0]:
        raise ValueError(
            f"X-hat rows {x_hat.shape[0]} do not match signature dimension "
            f"{signature.coords.shape[0]}"
        )
    result = lstsq_qr(x_hat, signature.coords, rcond=rcond, guard=guard)
    return MetricDefinition(
        metric=metric_name,
        event_names=tuple(event_names),
        coefficients=result.x,
        error=result.backward_error,
        signature=signature,
        health=result.health,
    )


def round_coefficients(
    definition: MetricDefinition,
    x_hat: Optional[np.ndarray] = None,
    snap_tol: float = 0.05,
    zero_tol: float = 0.02,
) -> MetricDefinition:
    """Snap noisy coefficients to nearby integers (paper Section VI-D).

    Coefficients within ``snap_tol`` (relative) of a nonzero integer snap
    to it; coefficients below ``zero_tol`` in magnitude snap to zero.  If
    ``x_hat`` is provided the error is recomputed for the rounded
    combination against the original signature, so callers can verify the
    snap *improved* the match (paper Figure 3 shows the rounded cache
    combinations match the signatures exactly).
    """
    coeffs = definition.coefficients.copy()
    rounded = np.round(coeffs)
    snap = np.abs(coeffs - rounded) <= snap_tol * np.maximum(np.abs(rounded), 1.0)
    coeffs[snap] = rounded[snap]
    coeffs[np.abs(coeffs) <= zero_tol] = 0.0

    error = definition.error
    if x_hat is not None and definition.signature is not None:
        error = backward_error(
            np.asarray(x_hat, dtype=np.float64), coeffs, definition.signature.coords
        )
    return replace(definition, coefficients=coeffs, error=error)
