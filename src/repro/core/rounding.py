"""Rounding and pivot-scoring formulas of the specialized QRCP.

Paper Section V.  Each matrix element ``u`` is rounded to the closest
multiple of the tolerance ``alpha``:

    R(u) = alpha * floor(u / alpha + 0.5)

and each (rounded, absolute) element ``v`` of a candidate column
contributes to the column's pivot score:

    Sc(v) = v        if v >= 1
            1 / v    if 0 < v < 1
            0        if v == 0

so that columns resembling an expectation-basis dimension — a few ones,
many zeros — score low (good), while columns with large or fractional
entries score high.  The paper's worked example: with alpha = 0.01 the
column (1.002, 0.001, 0.5, 1.5) rounds to (1.0, 0.0, 0.5, 1.5) and scores
1 + 0 + 1/0.5 + 1.5 = 4.5.
"""

from __future__ import annotations

import numpy as np

__all__ = ["round_to_tolerance", "score_column", "score_columns"]


def round_to_tolerance(values: np.ndarray, alpha: float) -> np.ndarray:
    """``R(u) = alpha * floor(u/alpha + 0.5)`` applied element-wise."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    values = np.asarray(values, dtype=np.float64)
    return alpha * np.floor(values / alpha + 0.5)


def score_column(column: np.ndarray, alpha: float) -> float:
    """Pivot score of one column: round to alpha, then sum element scores
    (``v`` for ``v >= 1``, ``1/v`` for ``0 < v < 1``, ``0`` at zero)."""
    v = np.abs(round_to_tolerance(column, alpha))
    score = np.zeros_like(v)
    big = v >= 1.0
    small = (v > 0.0) & ~big
    score[big] = v[big]
    score[small] = 1.0 / v[small]
    return float(score.sum())


def score_columns(matrix: np.ndarray, alpha: float) -> np.ndarray:
    """Vectorized :func:`score_column` over all columns of a matrix."""
    m = np.abs(round_to_tolerance(matrix, alpha))
    scores = np.zeros_like(m)
    big = m >= 1.0
    small = (m > 0.0) & ~big
    scores[big] = m[big]
    scores[small] = 1.0 / m[small]
    return scores.sum(axis=0)
