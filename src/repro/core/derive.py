"""One-call preset derivation for a whole node.

The operational end product the paper motivates: given an architecture,
produce its complete PAPI preset table automatically.  :func:`derive_presets`
runs every applicable benchmark domain on the node, merges the resulting
preset definitions, and reports what could not be composed — the file a
PAPI maintainer would ship, plus the honest list of gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import AnalysisPipeline, PipelineConfig, PipelineResult
from repro.hardware.systems import MachineNode
from repro.papi.presets import PresetTable

__all__ = ["DerivationReport", "applicable_domains", "derive_presets"]

_CPU_DOMAINS = ("cpu_flops", "branch", "dcache", "dtlb")
_GPU_DOMAINS = ("gpu_flops",)


def applicable_domains(node: MachineNode) -> Tuple[str, ...]:
    """The benchmark domains a node's machine type can run."""
    return _GPU_DOMAINS if node.is_gpu else _CPU_DOMAINS


@dataclass
class DerivationReport:
    """Everything one derivation run produced."""

    node: str
    presets: PresetTable
    results: Dict[str, PipelineResult]
    uncomposable: List[Tuple[str, str, float]]  # (domain, metric, error)

    def summary(self) -> str:
        lines = [
            f"derived {len(self.presets)} presets for {self.node} "
            f"from {len(self.results)} benchmark domains"
        ]
        for preset in self.presets:
            lines.append(f"  {preset.pretty()}")
        if self.uncomposable:
            lines.append("not composable on this architecture:")
            for domain, metric, error in self.uncomposable:
                lines.append(f"  [{domain}] {metric}  (error {error:.2e})")
        return "\n".join(lines)


def derive_presets(
    node: MachineNode,
    domains: Optional[Sequence[str]] = None,
    configs: Optional[Dict[str, PipelineConfig]] = None,
) -> DerivationReport:
    """Run the full analysis for every domain and merge the presets.

    ``configs`` optionally overrides per-domain thresholds.  If two domains
    derive a preset of the same name (they do not, with the shipped
    signature tables), the better-fitting definition wins.
    """
    domains = tuple(domains) if domains is not None else applicable_domains(node)
    configs = configs or {}
    merged = PresetTable(architecture=node.name)
    results: Dict[str, PipelineResult] = {}
    uncomposable: List[Tuple[str, str, float]] = []
    for domain in domains:
        pipeline = AnalysisPipeline.for_domain(
            domain, node, config=configs.get(domain)
        )
        result = pipeline.run()
        results[domain] = result
        for preset in result.presets:
            if preset.name in merged and merged.get(preset.name).fitness <= preset.fitness:
                continue
            merged.define(preset)
        for name, metric in result.metrics.items():
            if not metric.composable:
                uncomposable.append((domain, name, metric.error))
    return DerivationReport(
        node=node.name, presets=merged, results=results, uncomposable=uncomposable
    )
