"""Representation of raw-event measurements in an expectation basis.

Paper Section III-B: for each surviving event ``e`` with averaged
measurement vector ``m_e``, solve ``E x_e = m_e`` by least squares.  Events
that cannot be sufficiently represented (relative residual above a
threshold) are disregarded — this is the stage that rejects measurements
contaminated by loop overhead (``INST_RETIRED:ANY``, cycles, uops), whose
constant per-iteration component lies outside the span of the expectation
columns.

The surviving representations are concatenated column-wise into the matrix
``X`` consumed by the specialized QRCP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.basis import ExpectationBasis
from repro.linalg import lstsq_qr

__all__ = ["RepresentationReport", "represent_events"]


@dataclass
class RepresentationReport:
    """Representations and rejections from the basis-projection stage."""

    basis: ExpectationBasis
    threshold: float
    event_names: List[str]  # represented events, measurement order
    x_matrix: np.ndarray  # (n_dimensions, len(event_names))
    residuals: Dict[str, float]  # relative residual for every scored event
    rejected: List[str]  # events with residual > threshold

    def representation(self, event: str) -> np.ndarray:
        try:
            idx = self.event_names.index(event)
        except ValueError:
            raise KeyError(
                f"event {event!r} was rejected or not scored at the "
                "representation stage"
            ) from None
        return self.x_matrix[:, idx].copy()


def represent_events(
    basis: ExpectationBasis,
    event_names: Sequence[str],
    measurement_matrix: np.ndarray,
    threshold: float,
) -> RepresentationReport:
    """Project measurement columns onto the expectation basis.

    Parameters
    ----------
    basis:
        The expectation basis ``E``.
    event_names:
        Names for the columns of ``measurement_matrix``.
    measurement_matrix:
        ``(rows, events)`` averaged measurements (rows must match the
        basis' kernel rows).
    threshold:
        Maximum relative residual ``||E x - m|| / ||m||`` for an event to
        be kept.  Zero-measurement columns are rejected outright (they
        should have been discarded by the noise stage already).
    """
    m = np.asarray(measurement_matrix, dtype=np.float64)
    if m.shape != (basis.n_rows, len(event_names)):
        raise ValueError(
            f"measurement matrix shape {m.shape} does not match basis rows "
            f"{basis.n_rows} x {len(event_names)} events"
        )
    if threshold <= 0:
        raise ValueError("threshold must be positive")

    kept_names: List[str] = []
    columns: List[np.ndarray] = []
    residuals: Dict[str, float] = {}
    rejected: List[str] = []
    for j, name in enumerate(event_names):
        vector = m[:, j]
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            residuals[name] = 1.0
            rejected.append(name)
            continue
        result = lstsq_qr(basis.matrix, vector)
        residuals[name] = result.relative_residual
        if result.relative_residual <= threshold:
            kept_names.append(name)
            columns.append(result.x)
        else:
            rejected.append(name)

    x = (
        np.column_stack(columns)
        if columns
        else np.zeros((basis.n_dimensions, 0))
    )
    return RepresentationReport(
        basis=basis,
        threshold=threshold,
        event_names=kept_names,
        x_matrix=x,
        residuals=residuals,
        rejected=rejected,
    )
