"""Expectation bases: the "ideal hardware dimensions" coordinate systems.

An :class:`ExpectationBasis` collects the expectation vectors of ideal
events — what a perfect event for each hardware concept would measure over
a benchmark's kernel rows (paper Section III-B).  Its matrix ``E`` (rows x
dimensions) is the coordinate system in which raw-event measurements are
re-expressed: solving ``E x_e = m_e`` by least squares yields the
representation ``x_e``, and an event whose measurement cannot be expressed
in the basis (large residual) is rejected from further analysis.

Four concrete bases mirror the paper:

* :func:`cpu_flops_basis` — 16 dimensions, {scalar,128,256,512} x {SP,DP}
  x {FMA,non-FMA}; 48 kernel rows.
* :func:`gpu_flops_basis` — 15 dimensions (A,S,M,SQ,F) x (H,S,D); 45 rows.
* :func:`branch_basis` — 5 dimensions (CE, CR, T, D, M); 11 rows; its
  matrix equals the paper's Equation 3 verbatim (and, by construction, the
  exact output of the simulated branch unit).
* :func:`dcache_basis` — 4 dimensions (L1DM, L1DH, L2DH, L3DH) over the
  data-cache benchmark's size/stride sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cat.branch import BRANCH_KERNEL_SPECS
from repro.cat.dcache import DCacheBenchmark
from repro.cat.kernels import (
    CPU_FLOPS_DIMENSIONS,
    GPU_FLOPS_DIMENSIONS,
    GPU_FLOPS_LOOP_BLOCKS,
)
from repro.hardware.branch import BranchUnit

__all__ = [
    "ExpectationBasis",
    "branch_basis",
    "cpu_flops_basis",
    "dcache_basis",
    "dtlb_basis",
    "gpu_flops_basis",
]


@dataclass(frozen=True)
class ExpectationBasis:
    """A coordinate system of ideal-event expectation vectors.

    Attributes
    ----------
    name:
        Domain name (``cpu_flops`` etc.).
    dimension_labels:
        One symbol per ideal event, in signature order (e.g. ``SSCAL``).
    row_labels:
        One label per kernel row; must match the benchmark's rows.
    matrix:
        ``E`` of shape ``(len(row_labels), len(dimension_labels))``.
    """

    name: str
    dimension_labels: tuple
    row_labels: tuple
    matrix: np.ndarray

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=np.float64)
        object.__setattr__(self, "matrix", m)
        if m.shape != (len(self.row_labels), len(self.dimension_labels)):
            raise ValueError(
                f"basis matrix shape {m.shape} does not match "
                f"{len(self.row_labels)} rows x {len(self.dimension_labels)} dims"
            )
        if np.linalg.matrix_rank(m) != len(self.dimension_labels):
            raise ValueError(
                f"expectation basis {self.name!r} is rank deficient; ideal "
                "dimensions must be independent"
            )

    @property
    def n_dimensions(self) -> int:
        return len(self.dimension_labels)

    @property
    def n_rows(self) -> int:
        return len(self.row_labels)

    def dimension_index(self, label: str) -> int:
        try:
            return self.dimension_labels.index(label)
        except ValueError:
            raise KeyError(
                f"dimension {label!r} not in basis {self.name!r}: "
                f"{self.dimension_labels}"
            ) from None

    def expectation(self, label: str) -> np.ndarray:
        """The expectation vector of one ideal dimension."""
        return self.matrix[:, self.dimension_index(label)].copy()


def cpu_flops_basis() -> ExpectationBasis:
    """Ideal FP-instruction expectations over the CPU-FLOPs kernels."""
    dims = CPU_FLOPS_DIMENSIONS
    row_labels: List[str] = []
    rows: List[np.ndarray] = []
    for kernel_dim in dims:
        for block in kernel_dim.loop_blocks:
            row = np.zeros(len(dims))
            row[dims.index(kernel_dim)] = float(block)
            rows.append(row)
            row_labels.append(f"{kernel_dim.kernel_name}/loop{block}")
    return ExpectationBasis(
        name="cpu_flops",
        dimension_labels=tuple(d.symbol for d in dims),
        row_labels=tuple(row_labels),
        matrix=np.vstack(rows),
    )


def gpu_flops_basis() -> ExpectationBasis:
    """Ideal VALU-instruction expectations over the GPU-FLOPs kernels."""
    dims = GPU_FLOPS_DIMENSIONS
    row_labels: List[str] = []
    rows: List[np.ndarray] = []
    for kernel_dim in dims:
        for block in GPU_FLOPS_LOOP_BLOCKS:
            row = np.zeros(len(dims))
            row[dims.index(kernel_dim)] = float(block)
            rows.append(row)
            row_labels.append(f"{kernel_dim.kernel_name}/loop{block}")
    return ExpectationBasis(
        name="gpu_flops",
        dimension_labels=tuple(d.symbol for d in dims),
        row_labels=tuple(row_labels),
        matrix=np.vstack(rows),
    )


#: The paper's Equation 3, verbatim: rows are the 11 branching kernels,
#: columns are (CE, CR, T, D, M).
BRANCH_EXPECTATION_MATRIX = np.array(
    [
        [2.0, 2.0, 1.5, 0.0, 0.0],
        [2.0, 2.0, 1.0, 0.0, 0.0],
        [2.0, 2.0, 2.0, 0.0, 0.0],
        [2.0, 2.0, 1.5, 0.0, 0.5],
        [2.5, 2.5, 1.5, 0.0, 0.5],
        [2.5, 2.5, 2.0, 0.0, 0.5],
        [2.5, 2.0, 1.5, 0.0, 0.5],
        [3.0, 2.5, 1.5, 0.0, 0.5],
        [3.0, 2.5, 2.0, 0.0, 0.5],
        [2.0, 2.0, 1.0, 1.0, 0.0],
        [1.0, 1.0, 1.0, 0.0, 0.0],
    ]
)


def branch_basis(derive: bool = False) -> ExpectationBasis:
    """The branching expectation basis (CE, CR, T, D, M).

    With ``derive=True`` the matrix is recomputed by running the kernel
    specs through the branch unit instead of using the paper's literal
    Equation 3 — the two agree exactly (asserted in the test suite), which
    is the strongest evidence the simulated substrate matches the paper's
    measured hardware behaviour.
    """
    if derive:
        unit = BranchUnit()
        rows = []
        for _, specs in BRANCH_KERNEL_SPECS:
            counts = unit.run(specs)
            rows.append(
                [
                    counts.cond_executed,
                    counts.cond_retired,
                    counts.cond_taken,
                    counts.uncond_direct,
                    counts.mispredicted,
                ]
            )
        matrix = np.array(rows)
    else:
        matrix = BRANCH_EXPECTATION_MATRIX.copy()
    return ExpectationBasis(
        name="branch",
        dimension_labels=("CE", "CR", "T", "D", "M"),
        row_labels=tuple(label for label, _ in BRANCH_KERNEL_SPECS),
        matrix=matrix,
    )


def dtlb_basis(benchmark: Optional["DTLBBenchmark"] = None) -> ExpectationBasis:
    """Ideal translation expectations over the page-stride chase sweep.

    Per access: within first-level reach every translation hits the DTLB;
    within STLB reach it misses the first level and hits the second;
    beyond that it walks.  Dimensions: (DTLBH, STLBH, WALK).
    """
    from repro.cat.dtlb import DTLBBenchmark

    benchmark = benchmark or DTLBBenchmark()
    regions = benchmark.row_regions()
    dims = ("DTLBH", "STLBH", "WALK")
    matrix = np.zeros((len(regions), len(dims)))
    for i, region in enumerate(regions):
        if region == "TLB":
            matrix[i, dims.index("DTLBH")] = 1.0
        elif region == "STLB":
            matrix[i, dims.index("STLBH")] = 1.0
        else:
            matrix[i, dims.index("WALK")] = 1.0
    return ExpectationBasis(
        name="dtlb",
        dimension_labels=dims,
        row_labels=tuple(benchmark.row_labels()),
        matrix=matrix,
    )


def dcache_basis(benchmark: Optional[DCacheBenchmark] = None) -> ExpectationBasis:
    """Ideal demand-hit/miss expectations over the pointer-chase sweep.

    Per access: within the L1 region every load hits L1; beyond it, every
    load misses L1 and hits the deepest level that holds the working set.
    """
    benchmark = benchmark or DCacheBenchmark()
    regions = benchmark.row_regions()
    dims = ("L1DM", "L1DH", "L2DH", "L3DH")
    matrix = np.zeros((len(regions), len(dims)))
    for i, region in enumerate(regions):
        if region == "L1":
            matrix[i, dims.index("L1DH")] = 1.0
        else:
            matrix[i, dims.index("L1DM")] = 1.0
            if region == "L2":
                matrix[i, dims.index("L2DH")] = 1.0
            elif region == "L3":
                matrix[i, dims.index("L3DH")] = 1.0
            # region "M": misses every level; only L1DM fires.
    return ExpectationBasis(
        name="dcache",
        dimension_labels=dims,
        row_labels=tuple(benchmark.row_labels()),
        matrix=matrix,
    )
