"""Noise analysis: max-RNMSE variability and threshold filtering.

Paper Section IV.  For every event, the measurement vectors of the
benchmark's repetitions are compared pairwise with the root normalized
mean-square error

    RNMSE(m_i, m_j) = ||m_i - m_j||_2 / sqrt(N * mean(m_i) * mean(m_j))

and the maximum over pairs is the event's variability.  Degenerate cases
follow the paper exactly: if one of the two means is zero the pair's
variability is defined as 1 (a 100% error); an event whose every
measurement is zero is discarded as irrelevant (footnote 1) rather than
scored.  Events with variability above the threshold ``tau`` are dropped
from further analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.cat.measurement import MeasurementSet

__all__ = ["NoiseReport", "analyze_noise", "batch_max_rnmse", "max_rnmse"]


def max_rnmse(vectors: np.ndarray) -> float:
    """Maximum pairwise RNMSE over per-repetition measurement vectors.

    ``vectors`` has shape ``(repetitions, rows)``.  All-zero inputs are the
    caller's responsibility (they are discarded before scoring).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[0] < 2:
        raise ValueError(
            f"need a (repetitions >= 2, rows) array, got shape {vectors.shape}"
        )
    reps, n = vectors.shape
    means = vectors.mean(axis=1)
    # Pairwise squared distances via the Gram matrix (no Python pair loop).
    gram = vectors @ vectors.T
    sq_norms = np.diag(gram)
    dist_sq = sq_norms[:, None] + sq_norms[None, :] - 2.0 * gram
    np.maximum(dist_sq, 0.0, out=dist_sq)

    mean_products = means[:, None] * means[None, :]
    iu = np.triu_indices(reps, k=1)
    dists = np.sqrt(dist_sq[iu])
    products = mean_products[iu]

    values = np.empty_like(dists)
    degenerate = products <= 0.0
    values[degenerate] = 1.0  # paper: zero-mean pair -> variability 1
    ok = ~degenerate
    values[ok] = dists[ok] / np.sqrt(n * products[ok])
    # Identical vectors with degenerate products would still be flagged 1,
    # except the all-zero case is excluded before this function; a pair of
    # bit-identical nonzero vectors has dist 0 and positive product -> 0.
    return float(values.max())


@dataclass
class NoiseReport:
    """Outcome of the Section-IV analysis for one benchmark run."""

    benchmark: str
    tau: float
    variabilities: Dict[str, float]  # event -> max RNMSE (zero-mean rule applied)
    kept: List[str]
    noisy: List[str]  # above tau
    discarded_zero: List[str]  # all-zero measurements (footnote 1)
    # Events removed from ``kept`` by validation trust priors
    # (:mod:`repro.vet`) after the tau filter; empty on prior-free runs.
    excluded_by_prior: List[str] = field(default_factory=list)

    def sorted_variabilities(self) -> List[Tuple[str, float]]:
        """(event, variability) sorted ascending — the Fig. 2 series."""
        return sorted(self.variabilities.items(), key=lambda kv: (kv[1], kv[0]))

    @property
    def n_measured(self) -> int:
        return len(self.variabilities) + len(self.discarded_zero)


def batch_max_rnmse(vectors: np.ndarray) -> np.ndarray:
    """:func:`max_rnmse` for many events at once.

    ``vectors`` has shape ``(events, repetitions, rows)``; returns one
    variability per event.  Same math as the scalar function — pairwise
    distances via the batched Gram matrix, the zero-mean-pair rule applied
    per pair — with the event dimension broadcast instead of looped.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 3 or vectors.shape[1] < 2:
        raise ValueError(
            f"need an (events, repetitions >= 2, rows) array, got shape "
            f"{vectors.shape}"
        )
    _, reps, n = vectors.shape
    means = vectors.mean(axis=2)  # (events, reps)
    gram = vectors @ vectors.transpose(0, 2, 1)  # (events, reps, reps)
    sq_norms = np.diagonal(gram, axis1=1, axis2=2)  # (events, reps)
    dist_sq = sq_norms[:, :, None] + sq_norms[:, None, :] - 2.0 * gram
    np.maximum(dist_sq, 0.0, out=dist_sq)

    iu = np.triu_indices(reps, k=1)
    dists = np.sqrt(dist_sq[:, iu[0], iu[1]])  # (events, pairs)
    products = (means[:, :, None] * means[:, None, :])[:, iu[0], iu[1]]

    values = np.ones_like(dists)  # paper: zero-mean pair -> variability 1
    ok = products > 0.0
    values[ok] = dists[ok] / np.sqrt(n * products[ok])
    return values.max(axis=1)


def analyze_noise(measurement: MeasurementSet, tau: float) -> NoiseReport:
    """Score every measured event and split by the noise threshold.

    Thread dimensions are collapsed by the median before scoring (the
    paper's cache de-noising); repetitions remain separate — they are what
    the RNMSE compares.  All events are scored in one batched computation
    (one median over the full data cube, one batched Gram matrix) rather
    than a per-event Python loop.
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    # (reps, threads, rows, events) -> (events, reps, rows), threads medianed.
    medianed = np.median(measurement.data, axis=1)
    vectors = medianed.transpose(2, 0, 1)
    nonzero = vectors.any(axis=(1, 2))

    variabilities: Dict[str, float] = {}
    kept: List[str] = []
    noisy: List[str] = []
    discarded: List[str] = []
    if nonzero.any():
        scores = batch_max_rnmse(vectors[nonzero])
    scored = iter(scores if nonzero.any() else ())
    for i, event in enumerate(measurement.event_names):
        if not nonzero[i]:
            discarded.append(event)
            continue
        value = float(next(scored))
        variabilities[event] = value
        (kept if value <= tau else noisy).append(event)
    return NoiseReport(
        benchmark=measurement.benchmark,
        tau=tau,
        variabilities=variabilities,
        kept=kept,
        noisy=noisy,
        discarded_zero=discarded,
    )
