"""Paper-style report generation from pipeline results.

Renders a :class:`~repro.core.pipeline.PipelineResult` into the artifacts
the paper presents: the Section-V selected-event listing, the Table-V/VIII
style metric tables (raw and rounded), the noise census, and an optional
markdown bundle on disk.  The CLI and the benchmark harness both go
through this module so human-facing output has one source of truth.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.pipeline import PipelineResult
from repro.io.tables import format_float, render_markdown_table, write_markdown
from repro.viz.ascii import log_scatter
from repro.viz.series import fig2_series

__all__ = ["metric_table_rows", "render_report", "write_report"]


def metric_table_rows(
    result: PipelineResult, rounded: bool = False, coeff_floor: float = 1e-6
) -> List[List[str]]:
    """Rows for a paper-style 'Metric | Combination | Error' table.

    When the run was certified (guard enabled), a Trust column is
    appended; the raw and rounded tables share one trust stamp because
    certification covers the definition, not its cosmetic rounding.
    """
    source = result.rounded_metrics if rounded else result.metrics
    certified = any(m.trust is not None for m in result.metrics.values())
    rows: List[List[str]] = []
    for name, metric in source.items():
        terms = [
            f"{format_float(c, signed=True)} x {e}"
            for e, c in zip(metric.event_names, metric.coefficients)
            if abs(c) > coeff_floor
        ]
        combo = "  ".join(terms) if terms else "(no combination: uncomposable)"
        row = [metric.metric, combo, format_float(metric.error)]
        if certified:
            trust = result.metrics[name].trust
            row.append(trust.level if trust is not None else "-")
        rows.append(row)
    return rows


def _health_section(result: PipelineResult) -> List[str]:
    """The 'Numerical health & trust' report section (guarded runs only)."""
    qrcp_health = result.qrcp.health
    certified = any(m.trust is not None for m in result.metrics.values())
    if qrcp_health is None and not certified:
        return []
    lines: List[str] = ["", "## Numerical health & trust", ""]
    if qrcp_health is not None:
        lines.append(f"QRCP selection: {qrcp_health.describe()}")
        if qrcp_health.suspect_columns:
            suspects = ", ".join(
                result.selected_events[i]
                if i < len(result.selected_events)
                else f"pivot {i}"
                for i in qrcp_health.suspect_columns
            )
            lines.append(f"Suspect columns: {suspects}")
        lines.append("")
    if certified:
        rows = []
        for metric in result.metrics.values():
            trust = metric.trust
            if trust is None:
                continue
            rows.append(
                [
                    metric.metric,
                    trust.level,
                    format_float(trust.coefficient_spread),
                    format_float(trust.error_spread),
                    trust.n_holdouts,
                    "; ".join(trust.reasons) if trust.reasons else "-",
                ]
            )
        lines.append(
            render_markdown_table(
                [
                    "Metric",
                    "Trust",
                    "Coeff spread",
                    "Error spread",
                    "Holdouts",
                    "Reasons",
                ],
                rows,
            )
        )
    return lines


def render_report(result: PipelineResult, include_figures: bool = True) -> str:
    """Full textual report for one domain's analysis."""
    lines: List[str] = []
    lines.append(f"# Event analysis report — {result.domain}")
    lines.append("")
    lines.append("## Pipeline census")
    lines.append("")
    noise = result.noise
    census_rows = [
        ["events measured", noise.n_measured],
        ["discarded all-zero (footnote 1)", len(noise.discarded_zero)],
        [f"filtered noisy (tau={result.config.tau:g})", len(noise.noisy)],
        [
            f"rejected unrepresentable (> {result.config.representation_threshold:g})",
            len(result.representation.rejected),
        ],
        ["entered QRCP", len(result.representation.event_names)],
        [f"selected (alpha={result.config.alpha:g})", len(result.selected_events)],
    ]
    lines.append(render_markdown_table(["stage", "events"], census_rows))
    lines.append("")
    lines.append("## Selected events (Section V)")
    lines.append("")
    lines.append(
        render_markdown_table(
            ["pivot", "event"],
            [[i + 1, e] for i, e in enumerate(result.selected_events)],
        )
    )
    certified = any(m.trust is not None for m in result.metrics.values())
    metric_headers = ["Metric", "Combination of Raw Events", "Error"]
    if certified:
        metric_headers.append("Trust")
    lines.append("")
    lines.append("## Metric definitions (Section VI)")
    lines.append("")
    lines.append(
        render_markdown_table(metric_headers, metric_table_rows(result))
    )
    lines.append("")
    lines.append("## Rounded definitions (Section VI-D)")
    lines.append("")
    lines.append(
        render_markdown_table(
            metric_headers, metric_table_rows(result, rounded=True)
        )
    )
    health_lines = _health_section(result)
    if health_lines:
        lines.extend(health_lines)
    if include_figures:
        lines.append("")
        lines.append("## Event variability (Section IV / Figure 2)")
        lines.append("")
        series = fig2_series(noise)
        lines.append("```")
        lines.append(
            log_scatter(
                series.values,
                threshold=series.tau,
                title=f"Sorted max-RNMSE variabilities ({result.domain})",
            )
        )
        lines.append("```")
    lines.append("")
    return "\n".join(lines)


def write_report(
    result: PipelineResult,
    path: Union[str, Path],
    include_figures: bool = True,
) -> Path:
    """Write the rendered report to a markdown file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(result, include_figures=include_figures))
    return path
