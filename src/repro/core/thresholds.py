"""Automatic threshold selection and alternative noise measures.

The paper's Section VII names its future work: "methods to develop
different measures to quantify event noise and more rigorously select
noise suppression thresholds and pivoting criteria."  This module
implements that program:

* **Alternative variability measures** alongside max-RNMSE (Equation 4):

  - :func:`max_relative_range` — worst-case per-row spread relative to the
    per-row mean; more sensitive to single-row glitches than the
    norm-based RNMSE.
  - :func:`coefficient_of_variation` — the classic std/mean aggregated
    over rows; smooth, but underweights rare spikes.
  - :func:`mad_variability` — a median-absolute-deviation measure that is
    robust to one corrupted repetition (an SMI landing in one run), where
    max-RNMSE saturates.

* **Automatic tau selection** (:func:`select_tau`) — finds the widest gap
  in the sorted log-variability sequence (the paper picks tau by eyeballing
  exactly this gap in Figure 2) and places the threshold at its geometric
  midpoint; degenerate distributions fall back to a quantile rule.

* **Automatic alpha selection** (:func:`select_alpha`) — sweeps the QRCP
  tolerance across decades, enumerates the plateaus on which the selected
  column set is stable, and picks the plateau whose selection scores most
  like clean expectation-basis dimensions (the paper's Section V-E
  observation — "a wide range of values for alpha" works — made
  algorithmic, with a guard against the noise-floor plateau where
  measurement noise masquerades as linear independence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.qrcp import qrcp_specialized
from repro.core.rounding import score_columns

__all__ = [
    "AlphaSelection",
    "TauSelection",
    "coefficient_of_variation",
    "mad_variability",
    "max_relative_range",
    "select_alpha",
    "select_tau",
    "variability_measures",
]


# ---------------------------------------------------------------------------
# Alternative variability measures
# ---------------------------------------------------------------------------

def _validate(vectors: np.ndarray) -> np.ndarray:
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[0] < 2:
        raise ValueError(
            f"need a (repetitions >= 2, rows) array, got shape {vectors.shape}"
        )
    return vectors


def max_relative_range(vectors: np.ndarray) -> float:
    """Worst per-row spread relative to the per-row mean.

    ``max_r (max_i m_ir - min_i m_ir) / |mean_i m_ir|``; rows whose mean is
    zero but whose spread is not score 1 (mirroring Equation 4's
    degenerate-pair rule); rows identically zero contribute 0.
    """
    vectors = _validate(vectors)
    spread = vectors.max(axis=0) - vectors.min(axis=0)
    means = np.abs(vectors.mean(axis=0))
    out = np.zeros_like(spread)
    live = means > 0.0
    out[live] = spread[live] / means[live]
    out[(~live) & (spread > 0.0)] = 1.0
    return float(out.max()) if out.size else 0.0


def coefficient_of_variation(vectors: np.ndarray) -> float:
    """Root-mean aggregated per-row coefficient of variation.

    ``sqrt(mean_r (std_i m_ir / mean_i m_ir)^2)`` over rows with nonzero
    mean; degenerate rows handled as in :func:`max_relative_range`.
    """
    vectors = _validate(vectors)
    stds = vectors.std(axis=0)
    means = np.abs(vectors.mean(axis=0))
    cv_sq = np.zeros_like(stds)
    live = means > 0.0
    cv_sq[live] = (stds[live] / means[live]) ** 2
    cv_sq[(~live) & (stds > 0.0)] = 1.0
    return float(np.sqrt(cv_sq.mean())) if cv_sq.size else 0.0


def mad_variability(vectors: np.ndarray) -> float:
    """Median-absolute-deviation variability, robust to one bad repetition.

    Per row, the MAD of the repetitions around their median, normalized by
    the |median|; the measure is the maximum over rows.  A single corrupted
    repetition (which drives max-RNMSE to its spread) leaves the per-row
    median and MAD nearly unchanged.
    """
    vectors = _validate(vectors)
    med = np.median(vectors, axis=0)
    mad = np.median(np.abs(vectors - med[None, :]), axis=0)
    out = np.zeros_like(mad)
    live = np.abs(med) > 0.0
    out[live] = mad[live] / np.abs(med[live])
    out[(~live) & (mad > 0.0)] = 1.0
    return float(out.max()) if out.size else 0.0


#: Registry of measures by name (max-RNMSE lives in noise_filter).
def variability_measures() -> Dict[str, Callable[[np.ndarray], float]]:
    from repro.core.noise_filter import max_rnmse

    return {
        "max_rnmse": max_rnmse,
        "max_relative_range": max_relative_range,
        "coefficient_of_variation": coefficient_of_variation,
        "mad": mad_variability,
    }


# ---------------------------------------------------------------------------
# Automatic tau selection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TauSelection:
    """Outcome of automatic noise-threshold selection."""

    tau: float
    gap_low: float  # largest variability below the chosen threshold
    gap_high: float  # smallest variability above it
    gap_decades: float  # width of the separating gap in decades
    method: str  # "gap" or "quantile"

    @property
    def unambiguous(self) -> bool:
        """True when a Figure-2a-style free window exists (the paper calls
        a gap of several decades 'unambiguous')."""
        return self.method == "gap" and self.gap_decades >= 2.0


def select_tau(
    variabilities: Sequence[float],
    floor: float = 1e-15,
    min_gap_decades: float = 1.0,
    fallback_quantile: float = 0.5,
) -> TauSelection:
    """Pick the noise threshold from the variability distribution.

    Values at or below ``floor`` (including exact zeros) are clamped to
    ``floor``; the widest gap between consecutive sorted log-values that is
    at least ``min_gap_decades`` wide hosts the threshold (geometric
    midpoint).  Without such a gap — the paper's data-cache regime — the
    threshold falls back to the given quantile of the distribution, which
    encodes "keep the quieter half" leniency.
    """
    values = np.asarray(list(variabilities), dtype=np.float64)
    if values.size < 2:
        raise ValueError("need at least two variability values")
    if np.any(values < 0):
        raise ValueError("variabilities must be non-negative")
    clamped = np.sort(np.maximum(values, floor))
    logs = np.log10(clamped)
    gaps = np.diff(logs)
    if gaps.size and gaps.max() >= min_gap_decades:
        idx = int(np.argmax(gaps))
        tau = float(10 ** ((logs[idx] + logs[idx + 1]) / 2.0))
        return TauSelection(
            tau=tau,
            gap_low=float(clamped[idx]),
            gap_high=float(clamped[idx + 1]),
            gap_decades=float(gaps[idx]),
            method="gap",
        )
    tau = float(np.quantile(clamped, fallback_quantile))
    below = clamped[clamped <= tau]
    above = clamped[clamped > tau]
    return TauSelection(
        tau=tau,
        gap_low=float(below.max()) if below.size else floor,
        gap_high=float(above.min()) if above.size else np.inf,
        gap_decades=0.0,
        method="quantile",
    )


# ---------------------------------------------------------------------------
# Automatic alpha selection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AlphaSelection:
    """Outcome of automatic QRCP-tolerance selection."""

    alpha: float
    plateau_low: float
    plateau_high: float
    plateau_decades: float
    selection: Tuple[int, ...]  # column indices selected on the plateau
    sweep: Tuple[Tuple[float, Tuple[int, ...]], ...]  # full (alpha, sel) trace

    @property
    def stable(self) -> bool:
        return self.plateau_decades >= 1.0


def select_alpha(
    x: np.ndarray,
    alphas: Optional[Sequence[float]] = None,
    min_plateau_decades: float = 0.5,
) -> AlphaSelection:
    """Sweep alpha and return the midpoint of the best stable plateau.

    ``x`` is the representation matrix the QRCP consumes.  Stability is
    judged on the *set* of selected columns: a plateau is a maximal run of
    consecutive sweep points with an identical selection.

    Plateau choice is not simply "widest": below the noise scale the QRCP
    sees measurement noise as genuine linear independence (the paper's
    Section II warning) and can stably select too many columns — and even
    with the right *count*, a noise-floor plateau selects columns whose
    residual noise survives the rounding, which the scoring formula
    penalizes heavily.  Among plateaus at least ``min_plateau_decades``
    wide (or the widest available if none qualify), we therefore rank by
    (quantized mean pivot score of the selected columns at the plateau's
    midpoint alpha, selection size, -width): the plateau whose selection
    looks most like clean basis dimensions wins, parsimony and width break
    ties.
    """
    x = np.asarray(x, dtype=np.float64)
    if alphas is None:
        alphas = np.logspace(-6, -0.7, 22)
    alphas = np.sort(np.asarray(list(alphas), dtype=np.float64))
    if alphas.size < 2:
        raise ValueError("need at least two alpha candidates")
    if np.any(alphas <= 0):
        raise ValueError("alphas must be positive")

    sweep: List[Tuple[float, Tuple[int, ...]]] = []
    for alpha in alphas:
        result = qrcp_specialized(x, alpha=float(alpha))
        sweep.append((float(alpha), tuple(sorted(int(i) for i in result.selected))))

    # Enumerate maximal runs of identical selections: (start, end, decades).
    plateaus: List[Tuple[int, int, float]] = []
    start = 0
    for i in range(1, len(sweep) + 1):
        if i == len(sweep) or sweep[i][1] != sweep[start][1]:
            width = np.log10(sweep[i - 1][0]) - np.log10(sweep[start][0])
            plateaus.append((start, i - 1, float(width)))
            start = i

    widest = max(p[2] for p in plateaus)
    candidates = [p for p in plateaus if p[2] >= min(min_plateau_decades, widest)]

    def plateau_key(p):
        start, end, width = p
        selection = sweep[start][1]
        lo, hi = sweep[start][0], sweep[end][0]
        mid_alpha = float(10 ** ((np.log10(lo) + np.log10(hi)) / 2.0))
        if selection:
            scores = score_columns(x[:, list(selection)], mid_alpha)
            mean_score = float(scores.mean())
        else:
            mean_score = np.inf
        # Quantize so numerically equivalent selections tie cleanly.
        return (round(mean_score, 2), len(selection), -width)

    best = min(candidates, key=plateau_key)

    lo, hi = sweep[best[0]][0], sweep[best[1]][0]
    alpha = float(10 ** ((np.log10(lo) + np.log10(hi)) / 2.0))
    return AlphaSelection(
        alpha=alpha,
        plateau_low=lo,
        plateau_high=hi,
        plateau_decades=best[2],
        selection=sweep[best[0]][1],
        sweep=tuple(sweep),
    )
