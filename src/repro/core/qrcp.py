"""Column-pivoted QR factorizations: standard (Algorithm 1) and the paper's
specialized pivoting scheme (Algorithm 2).

Both drive the in-house incremental Householder QR.  The difference is the
pivot rule:

* **Standard QRCP** picks the trailing column of largest residual norm —
  the numerically natural choice, but exactly wrong for event analysis:
  high-magnitude irrelevant columns (cycles-like events) win the pivots.
* **Specialized QRCP** (paper Algorithm 2) scores candidate columns by
  closeness to the expectation-basis dimensions after rounding with the
  noise tolerance ``alpha`` (see :mod:`repro.core.rounding`), picks the
  minimum score, breaks ties by smaller column norm and then by original
  column order, skips candidates whose trailing residual norm falls below
  ``beta = ||(alpha, ..., alpha)||`` (columns that are noise-level or
  already explained by chosen columns), and terminates when no eligible
  candidate remains.

Design choices the paper leaves open, fixed here and exercised by the
ablation benchmarks:

* Scores are recomputed each iteration on the *updated* (partially
  factorized) working matrix, so directions already explained cannot
  attract further pivots; rounding feeds only the scores — the
  factorization itself proceeds on unrounded values.
* The beta cutoff applies to the trailing-row residual norm (rows i:),
  which is the orthogonal distance to the span of the chosen columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.rounding import score_columns
from repro.linalg.householder import HouseholderQR

if TYPE_CHECKING:
    from repro.guard.health import GuardConfig, NumericalHealth

__all__ = ["QRCPResult", "qrcp_specialized", "qrcp_standard", "qrcp_update"]


@dataclass(frozen=True)
class QRCPResult:
    """Outcome of a column-pivoted QR factorization.

    Attributes
    ----------
    permutation:
        Column indices of the input matrix in pivot order; the first
        ``rank`` entries are the selected (independent) columns.
    rank:
        Number of pivots performed before termination.
    r_factor:
        The ``(rank, n)`` upper-trapezoidal R of the permuted matrix.
    health:
        Conditioning sentinel readings for the leading ``rank`` triangle
        (only populated when the factorization ran under a guard config).
    """

    permutation: np.ndarray
    rank: int
    r_factor: np.ndarray
    health: Optional["NumericalHealth"] = None

    @property
    def selected(self) -> np.ndarray:
        """Input-matrix column indices chosen as linearly independent."""
        return self.permutation[: self.rank].copy()


def _guarded(
    x: np.ndarray,
    perm: np.ndarray,
    rank: int,
    r: np.ndarray,
    guard: Optional["GuardConfig"],
    repivot,
) -> QRCPResult:
    """Attach sentinel readings; re-pivot on the column-equilibrated
    matrix when the conditioning crosses the guard thresholds.

    ``repivot`` is the algorithm's pivoting loop (returning
    ``(perm, rank, r)``), re-run on the scaled matrix — the guard is
    pivot-rule-agnostic.  On healthy factors the original
    ``(perm, rank, r)`` pass through untouched, so a guarded run on
    well-conditioned data is bit-identical to an unguarded one.
    """
    if guard is None or not guard.enabled:
        return QRCPResult(permutation=perm, rank=rank, r_factor=r)
    from repro.guard.health import triangular_health

    health = triangular_health(
        r[:, :rank] if rank else r,
        original=x,
        refine_iterations=guard.refine_iterations,
    )
    if health.ok(guard):
        return QRCPResult(permutation=perm, rank=rank, r_factor=r, health=health)

    # Sentinel fired: the selection is near-rank-deficient or the column
    # magnitudes hide the geometry.  Re-run the pivot rule on the
    # column-equilibrated matrix (every nonzero column scaled to unit
    # norm), then re-factorize the *original* matrix in that pivot order
    # so R stays numerically faithful to the input.
    from dataclasses import replace as _replace

    from repro.obs import get_tracer

    get_tracer().incr("guard.fired.qrcp-column-scaled-repivot")

    norms = np.sqrt(np.einsum("ij,ij->j", x, x))
    scale = np.where(norms > 0.0, norms, 1.0)
    perm2, rank2, _ = repivot(x / scale)
    r2 = _refactor_in_order(x, perm2, rank2)
    health2 = triangular_health(
        r2[:, :rank2] if rank2 else r2,
        original=x,
        refine_iterations=guard.refine_iterations,
    )
    health2 = _replace(
        health2,
        rank_gap=max(health.rank_gap, health2.rank_gap),
        suspect_columns=tuple(
            sorted(set(health.suspect_columns) | set(health2.suspect_columns))
        ),
        guards_fired=health.guards_fired + ("qrcp-column-scaled-repivot",),
    )
    return QRCPResult(
        permutation=perm2, rank=rank2, r_factor=r2, health=health2
    )


def _refactor_in_order(x: np.ndarray, perm: np.ndarray, rank: int) -> np.ndarray:
    """R of ``x`` factorized with its columns taken in ``perm`` order."""
    n = x.shape[1]
    if rank == 0:
        return np.zeros((0, n))
    fact = HouseholderQR(x)
    current = np.arange(n)
    for i in range(rank):
        j = int(np.flatnonzero(current == perm[i])[0])
        fact.swap_columns(i, j)
        current[[i, j]] = current[[j, i]]
        fact.step()
    return np.triu(fact.a[:rank, :])


def qrcp_standard(
    x: np.ndarray, tol: float = 1e-10, guard: Optional["GuardConfig"] = None
) -> QRCPResult:
    """Algorithm 1: QRCP with largest-residual-norm pivoting.

    Stops when the largest trailing residual norm drops below ``tol``
    times the largest original column norm (numerical rank detection).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {x.shape}")

    def pivot_loop(work: np.ndarray):
        m, n = work.shape
        fact = HouseholderQR(work)
        perm = np.arange(n)
        norms0 = np.sqrt(np.einsum("ij,ij->j", work, work))
        scale = norms0.max() if n else 0.0
        rank = 0
        for i in range(min(m, n)):
            residual_norms = fact.trailing_column_norms()
            j_rel = int(np.argmax(residual_norms))
            if residual_norms[j_rel] <= tol * max(scale, 1.0):
                break
            j = i + j_rel
            fact.swap_columns(i, j)
            perm[[i, j]] = perm[[j, i]]
            fact.step()
            rank += 1
        r = np.triu(fact.a[:rank, :]) if rank else np.zeros((0, n))
        return perm, rank, r

    perm, rank, r = pivot_loop(x)
    return _guarded(x, perm, rank, r, guard, pivot_loop)


def _specialized_pivot_loop(work: np.ndarray, alpha: float):
    """Algorithm 2's pivoting loop: ``(perm, rank, r)`` of one matrix."""
    m, n = work.shape
    beta = alpha * np.sqrt(m)  # norm of the all-alpha vector
    fact = HouseholderQR(work)
    perm = np.arange(n)
    rank = 0
    for i in range(min(m, n)):
        pivot = _get_pivot(fact, i, alpha, beta)
        if pivot < 0:
            break
        fact.swap_columns(i, pivot)
        perm[[i, pivot]] = perm[[pivot, i]]
        fact.step()
        rank += 1
    r = np.triu(fact.a[:rank, :]) if rank else np.zeros((0, n))
    return perm, rank, r


def qrcp_specialized(
    x: np.ndarray, alpha: float, guard: Optional["GuardConfig"] = None
) -> QRCPResult:
    """Algorithm 2: QRCP with the expectation-closeness pivoting scheme."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {x.shape}")
    if alpha <= 0:
        raise ValueError("alpha must be positive")

    def pivot_loop(work: np.ndarray):
        return _specialized_pivot_loop(work, alpha)

    perm, rank, r = pivot_loop(x)
    return _guarded(x, perm, rank, r, guard, pivot_loop)


def qrcp_update(
    x_new: np.ndarray,
    previous: QRCPResult,
    changed_columns,
    alpha: float,
    guard: Optional["GuardConfig"] = None,
) -> QRCPResult:
    """Incremental specialized QRCP after a few columns of ``x`` changed.

    Replays ``previous``'s pivot order on ``x_new``, *verifying* at every
    step that the paper's pivot rule would still make the same choice.
    The key observation: a column the previous factorization selected is
    (by contract) unchanged, so the replayed reflectors — and with them
    every unchanged column's trailing residual and score at every step —
    are **bit-identical** to a from-scratch run of
    :func:`qrcp_specialized` on ``x_new``.  Only the changed columns can
    disturb the selection, so each step checks just them against the
    incumbent pivot (score, then residual norm, then position — exactly
    ``get_pivot``'s ordering) at a fraction of full re-scoring cost.
    After the replay the loop *continues* the standard algorithm, so a
    changed column that became eligible extends the selection exactly as
    a from-scratch run would.

    On success the result is bit-identical to
    ``qrcp_specialized(x_new, alpha, guard)`` (property-tested).  When a
    changed column would steal a pivot — or was itself previously
    selected — the replay is abandoned and the full factorization runs
    instead (counted on ``incr.qr_fallbacks``); the caller always gets
    the true Algorithm-2 answer either way.

    Parameters
    ----------
    x_new:
        The updated matrix; must have the same shape as the matrix
        ``previous`` factorized.
    previous:
        The prior :class:`QRCPResult` for the unedited matrix.
    changed_columns:
        Indices of every column of ``x_new`` that differs (bitwise) from
        the previous matrix.  Undeclared changes void the bit-identity
        guarantee — this is the caller's side of the contract.
    """
    from repro.obs import get_tracer

    x_new = np.asarray(x_new, dtype=np.float64)
    if x_new.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {x_new.shape}")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    n = x_new.shape[1]
    if previous.permutation.shape[0] != n:
        raise ValueError(
            f"previous factorization covered {previous.permutation.shape[0]} "
            f"columns but x_new has {n}; a column insert/delete needs a "
            "full refactorization, not a replay"
        )
    changed = sorted({int(c) for c in changed_columns})
    if changed and not (0 <= changed[0] and changed[-1] < n):
        raise IndexError(f"changed column out of range [0, {n})")

    tracer = get_tracer()
    selected = set(int(c) for c in previous.selected)

    def fallback() -> QRCPResult:
        tracer.incr("incr.qr_fallbacks")
        return qrcp_specialized(x_new, alpha, guard)

    if any(c in selected for c in changed):
        # An edited column was load-bearing: its reflector — and every
        # trailing update derived from it — is invalid.  Refactorize.
        return fallback()

    def pivot_loop(work: np.ndarray):
        return _specialized_pivot_loop(work, alpha)

    m = x_new.shape[0]
    beta = alpha * np.sqrt(m)
    fact = HouseholderQR(x_new)
    perm = np.arange(n)
    for i in range(previous.rank):
        target = int(previous.permutation[i])
        t = int(np.flatnonzero(perm == target)[0])
        residual = fact.trailing_column_norms()  # over columns i:
        t_rel = t - i
        if residual[t_rel] < beta:
            # The incumbent pivot lost eligibility — cannot happen when
            # the contract holds (its residuals are bit-identical), so
            # treat it as a voided contract and refactorize.
            return fallback()
        ch_rel = [
            int(np.flatnonzero(perm == c)[0]) - i
            for c in changed
        ]
        contenders = [c for c in ch_rel if residual[c] >= beta]
        if contenders:
            cols = [i + c for c in contenders] + [t]
            scores = score_columns(fact.a[:, cols], alpha)
            t_score = scores[-1]
            for rel, score in zip(contenders, scores[:-1]):
                steals = score < t_score or (
                    score == t_score
                    and (
                        residual[rel] < residual[t_rel]
                        or (
                            residual[rel] == residual[t_rel]
                            and rel < t_rel
                        )
                    )
                )
                if steals:
                    return fallback()
        fact.swap_columns(i, t)
        perm[[i, t]] = perm[[t, i]]
        fact.step()

    # Continue the standard loop: a changed column may have become
    # eligible where the previous run terminated (or the previous run
    # was full-rank, in which case this is a no-op).  Unchanged columns
    # were ineligible at termination and still are, so the eligibility
    # pre-check inside get_pivot keeps the common case cheap.
    rank = previous.rank
    for i in range(previous.rank, min(m, n)):
        pivot = _get_pivot(fact, i, alpha, beta)
        if pivot < 0:
            break
        fact.swap_columns(i, pivot)
        perm[[i, pivot]] = perm[[pivot, i]]
        fact.step()
        rank += 1

    tracer.incr("incr.qr_replays")
    r = np.triu(fact.a[:rank, :]) if rank else np.zeros((0, n))
    return _guarded(x_new, perm, rank, r, guard, pivot_loop)


def _get_pivot(fact: HouseholderQR, i: int, alpha: float, beta: float) -> int:
    """The paper's ``get_pivot``: minimum score, tie-broken by norm then
    position; -1 when every candidate is below the beta cutoff."""
    n = fact.n
    if i >= n:
        return -1
    residual_norms = fact.trailing_column_norms()  # over columns i:
    eligible = residual_norms >= beta
    if not eligible.any():
        return -1
    candidates = fact.a[:, i:]
    scores = score_columns(candidates, alpha)
    scores = np.where(eligible, scores, np.inf)
    best_score = scores.min()
    tied = np.flatnonzero(scores == best_score)
    if tied.size > 1:
        tied_norms = residual_norms[tied]
        tied = tied[tied_norms == tied_norms.min()]
    return i + int(tied[0])
