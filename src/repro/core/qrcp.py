"""Column-pivoted QR factorizations: standard (Algorithm 1) and the paper's
specialized pivoting scheme (Algorithm 2).

Both drive the in-house incremental Householder QR.  The difference is the
pivot rule:

* **Standard QRCP** picks the trailing column of largest residual norm —
  the numerically natural choice, but exactly wrong for event analysis:
  high-magnitude irrelevant columns (cycles-like events) win the pivots.
* **Specialized QRCP** (paper Algorithm 2) scores candidate columns by
  closeness to the expectation-basis dimensions after rounding with the
  noise tolerance ``alpha`` (see :mod:`repro.core.rounding`), picks the
  minimum score, breaks ties by smaller column norm and then by original
  column order, skips candidates whose trailing residual norm falls below
  ``beta = ||(alpha, ..., alpha)||`` (columns that are noise-level or
  already explained by chosen columns), and terminates when no eligible
  candidate remains.

Design choices the paper leaves open, fixed here and exercised by the
ablation benchmarks:

* Scores are recomputed each iteration on the *updated* (partially
  factorized) working matrix, so directions already explained cannot
  attract further pivots; rounding feeds only the scores — the
  factorization itself proceeds on unrounded values.
* The beta cutoff applies to the trailing-row residual norm (rows i:),
  which is the orthogonal distance to the span of the chosen columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.rounding import score_columns
from repro.linalg.householder import HouseholderQR

if TYPE_CHECKING:
    from repro.guard.health import GuardConfig, NumericalHealth

__all__ = ["QRCPResult", "qrcp_specialized", "qrcp_standard"]


@dataclass(frozen=True)
class QRCPResult:
    """Outcome of a column-pivoted QR factorization.

    Attributes
    ----------
    permutation:
        Column indices of the input matrix in pivot order; the first
        ``rank`` entries are the selected (independent) columns.
    rank:
        Number of pivots performed before termination.
    r_factor:
        The ``(rank, n)`` upper-trapezoidal R of the permuted matrix.
    health:
        Conditioning sentinel readings for the leading ``rank`` triangle
        (only populated when the factorization ran under a guard config).
    """

    permutation: np.ndarray
    rank: int
    r_factor: np.ndarray
    health: Optional["NumericalHealth"] = None

    @property
    def selected(self) -> np.ndarray:
        """Input-matrix column indices chosen as linearly independent."""
        return self.permutation[: self.rank].copy()


def _guarded(
    x: np.ndarray,
    perm: np.ndarray,
    rank: int,
    r: np.ndarray,
    guard: Optional["GuardConfig"],
    repivot,
) -> QRCPResult:
    """Attach sentinel readings; re-pivot on the column-equilibrated
    matrix when the conditioning crosses the guard thresholds.

    ``repivot`` is the algorithm's pivoting loop (returning
    ``(perm, rank, r)``), re-run on the scaled matrix — the guard is
    pivot-rule-agnostic.  On healthy factors the original
    ``(perm, rank, r)`` pass through untouched, so a guarded run on
    well-conditioned data is bit-identical to an unguarded one.
    """
    if guard is None or not guard.enabled:
        return QRCPResult(permutation=perm, rank=rank, r_factor=r)
    from repro.guard.health import triangular_health

    health = triangular_health(
        r[:, :rank] if rank else r,
        original=x,
        refine_iterations=guard.refine_iterations,
    )
    if health.ok(guard):
        return QRCPResult(permutation=perm, rank=rank, r_factor=r, health=health)

    # Sentinel fired: the selection is near-rank-deficient or the column
    # magnitudes hide the geometry.  Re-run the pivot rule on the
    # column-equilibrated matrix (every nonzero column scaled to unit
    # norm), then re-factorize the *original* matrix in that pivot order
    # so R stays numerically faithful to the input.
    from dataclasses import replace as _replace

    from repro.obs import get_tracer

    get_tracer().incr("guard.fired.qrcp-column-scaled-repivot")

    norms = np.sqrt(np.einsum("ij,ij->j", x, x))
    scale = np.where(norms > 0.0, norms, 1.0)
    perm2, rank2, _ = repivot(x / scale)
    r2 = _refactor_in_order(x, perm2, rank2)
    health2 = triangular_health(
        r2[:, :rank2] if rank2 else r2,
        original=x,
        refine_iterations=guard.refine_iterations,
    )
    health2 = _replace(
        health2,
        rank_gap=max(health.rank_gap, health2.rank_gap),
        suspect_columns=tuple(
            sorted(set(health.suspect_columns) | set(health2.suspect_columns))
        ),
        guards_fired=health.guards_fired + ("qrcp-column-scaled-repivot",),
    )
    return QRCPResult(
        permutation=perm2, rank=rank2, r_factor=r2, health=health2
    )


def _refactor_in_order(x: np.ndarray, perm: np.ndarray, rank: int) -> np.ndarray:
    """R of ``x`` factorized with its columns taken in ``perm`` order."""
    n = x.shape[1]
    if rank == 0:
        return np.zeros((0, n))
    fact = HouseholderQR(x)
    current = np.arange(n)
    for i in range(rank):
        j = int(np.flatnonzero(current == perm[i])[0])
        fact.swap_columns(i, j)
        current[[i, j]] = current[[j, i]]
        fact.step()
    return np.triu(fact.a[:rank, :])


def qrcp_standard(
    x: np.ndarray, tol: float = 1e-10, guard: Optional["GuardConfig"] = None
) -> QRCPResult:
    """Algorithm 1: QRCP with largest-residual-norm pivoting.

    Stops when the largest trailing residual norm drops below ``tol``
    times the largest original column norm (numerical rank detection).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {x.shape}")

    def pivot_loop(work: np.ndarray):
        m, n = work.shape
        fact = HouseholderQR(work)
        perm = np.arange(n)
        norms0 = np.sqrt(np.einsum("ij,ij->j", work, work))
        scale = norms0.max() if n else 0.0
        rank = 0
        for i in range(min(m, n)):
            residual_norms = fact.trailing_column_norms()
            j_rel = int(np.argmax(residual_norms))
            if residual_norms[j_rel] <= tol * max(scale, 1.0):
                break
            j = i + j_rel
            fact.swap_columns(i, j)
            perm[[i, j]] = perm[[j, i]]
            fact.step()
            rank += 1
        r = np.triu(fact.a[:rank, :]) if rank else np.zeros((0, n))
        return perm, rank, r

    perm, rank, r = pivot_loop(x)
    return _guarded(x, perm, rank, r, guard, pivot_loop)


def qrcp_specialized(
    x: np.ndarray, alpha: float, guard: Optional["GuardConfig"] = None
) -> QRCPResult:
    """Algorithm 2: QRCP with the expectation-closeness pivoting scheme."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {x.shape}")
    if alpha <= 0:
        raise ValueError("alpha must be positive")

    def pivot_loop(work: np.ndarray):
        m, n = work.shape
        beta = alpha * np.sqrt(m)  # norm of the all-alpha vector
        fact = HouseholderQR(work)
        perm = np.arange(n)
        rank = 0
        for i in range(min(m, n)):
            pivot = _get_pivot(fact, i, alpha, beta)
            if pivot < 0:
                break
            fact.swap_columns(i, pivot)
            perm[[i, pivot]] = perm[[pivot, i]]
            fact.step()
            rank += 1
        r = np.triu(fact.a[:rank, :]) if rank else np.zeros((0, n))
        return perm, rank, r

    perm, rank, r = pivot_loop(x)
    return _guarded(x, perm, rank, r, guard, pivot_loop)


def _get_pivot(fact: HouseholderQR, i: int, alpha: float, beta: float) -> int:
    """The paper's ``get_pivot``: minimum score, tie-broken by norm then
    position; -1 when every candidate is below the beta cutoff."""
    n = fact.n
    if i >= n:
        return -1
    residual_norms = fact.trailing_column_norms()  # over columns i:
    eligible = residual_norms >= beta
    if not eligible.any():
        return -1
    candidates = fact.a[:, i:]
    scores = score_columns(candidates, alpha)
    scores = np.where(eligible, scores, np.inf)
    best_score = scores.min()
    tied = np.flatnonzero(scores == best_score)
    if tied.size > 1:
        tied_norms = residual_norms[tied]
        tied = tied[tied_norms == tied_norms.min()]
    return i + int(tied[0])
