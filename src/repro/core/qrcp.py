"""Column-pivoted QR factorizations: standard (Algorithm 1) and the paper's
specialized pivoting scheme (Algorithm 2).

Both drive the in-house incremental Householder QR.  The difference is the
pivot rule:

* **Standard QRCP** picks the trailing column of largest residual norm —
  the numerically natural choice, but exactly wrong for event analysis:
  high-magnitude irrelevant columns (cycles-like events) win the pivots.
* **Specialized QRCP** (paper Algorithm 2) scores candidate columns by
  closeness to the expectation-basis dimensions after rounding with the
  noise tolerance ``alpha`` (see :mod:`repro.core.rounding`), picks the
  minimum score, breaks ties by smaller column norm and then by original
  column order, skips candidates whose trailing residual norm falls below
  ``beta = ||(alpha, ..., alpha)||`` (columns that are noise-level or
  already explained by chosen columns), and terminates when no eligible
  candidate remains.

Design choices the paper leaves open, fixed here and exercised by the
ablation benchmarks:

* Scores are recomputed each iteration on the *updated* (partially
  factorized) working matrix, so directions already explained cannot
  attract further pivots; rounding feeds only the scores — the
  factorization itself proceeds on unrounded values.
* The beta cutoff applies to the trailing-row residual norm (rows i:),
  which is the orthogonal distance to the span of the chosen columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.rounding import score_columns
from repro.linalg.householder import HouseholderQR

__all__ = ["QRCPResult", "qrcp_specialized", "qrcp_standard"]


@dataclass(frozen=True)
class QRCPResult:
    """Outcome of a column-pivoted QR factorization.

    Attributes
    ----------
    permutation:
        Column indices of the input matrix in pivot order; the first
        ``rank`` entries are the selected (independent) columns.
    rank:
        Number of pivots performed before termination.
    r_factor:
        The ``(rank, n)`` upper-trapezoidal R of the permuted matrix.
    """

    permutation: np.ndarray
    rank: int
    r_factor: np.ndarray

    @property
    def selected(self) -> np.ndarray:
        """Input-matrix column indices chosen as linearly independent."""
        return self.permutation[: self.rank].copy()


def qrcp_standard(x: np.ndarray, tol: float = 1e-10) -> QRCPResult:
    """Algorithm 1: QRCP with largest-residual-norm pivoting.

    Stops when the largest trailing residual norm drops below ``tol``
    times the largest original column norm (numerical rank detection).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {x.shape}")
    m, n = x.shape
    fact = HouseholderQR(x)
    perm = np.arange(n)
    norms0 = np.sqrt(np.einsum("ij,ij->j", x, x))
    scale = norms0.max() if n else 0.0
    rank = 0
    for i in range(min(m, n)):
        residual_norms = fact.trailing_column_norms()
        j_rel = int(np.argmax(residual_norms))
        if residual_norms[j_rel] <= tol * max(scale, 1.0):
            break
        j = i + j_rel
        fact.swap_columns(i, j)
        perm[[i, j]] = perm[[j, i]]
        fact.step()
        rank += 1
    r = np.triu(fact.a[:rank, :]) if rank else np.zeros((0, n))
    return QRCPResult(permutation=perm, rank=rank, r_factor=r)


def qrcp_specialized(x: np.ndarray, alpha: float) -> QRCPResult:
    """Algorithm 2: QRCP with the expectation-closeness pivoting scheme."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {x.shape}")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    m, n = x.shape
    beta = alpha * np.sqrt(m)  # norm of the all-alpha vector

    fact = HouseholderQR(x)
    perm = np.arange(n)
    rank = 0
    for i in range(min(m, n)):
        pivot = _get_pivot(fact, i, alpha, beta)
        if pivot < 0:
            break
        fact.swap_columns(i, pivot)
        perm[[i, pivot]] = perm[[pivot, i]]
        fact.step()
        rank += 1
    r = np.triu(fact.a[:rank, :]) if rank else np.zeros((0, n))
    return QRCPResult(permutation=perm, rank=rank, r_factor=r)


def _get_pivot(fact: HouseholderQR, i: int, alpha: float, beta: float) -> int:
    """The paper's ``get_pivot``: minimum score, tie-broken by norm then
    position; -1 when every candidate is below the beta cutoff."""
    n = fact.n
    if i >= n:
        return -1
    residual_norms = fact.trailing_column_norms()  # over columns i:
    eligible = residual_norms >= beta
    if not eligible.any():
        return -1
    candidates = fact.a[:, i:]
    scores = score_columns(candidates, alpha)
    scores = np.where(eligible, scores, np.inf)
    best_score = scores.min()
    tied = np.flatnonzero(scores == best_score)
    if tied.size > 1:
        tied_norms = residual_norms[tied]
        tied = tied[tied_norms == tied_norms.min()]
    return i + int(tied[0])
