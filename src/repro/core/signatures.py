"""Metric signatures: Tables I-IV of the paper.

A :class:`Signature` is the handcrafted description of what an ideal event
for a high-level metric would measure, expressed in the coordinates of an
expectation basis.  E.g. "DP Ops" over the CPU FLOPs basis is
``(0,0,0,0, 1,2,4,8, 0,0,0,0, 2,4,8,16)``: each double-precision
instruction class contributes its FLOPs-per-instruction.

Note the paper's instruction-count signatures assign weight 2 to the FMA
dimensions: CAT inherits the convention of Intel's FP_ARITH events (which
fire twice per FMA), so "Instrs." counts FMA instructions twice by
definition — exactly what lets those metrics compose with unit coefficients
on real events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.cat.kernels import (
    CPU_FLOPS_DIMENSIONS,
    GPU_FLOPS_DIMENSIONS,
    flops_per_instruction,
)
from repro.core.basis import ExpectationBasis

__all__ = [
    "Signature",
    "branch_signatures",
    "cpu_flops_signatures",
    "dcache_signatures",
    "dtlb_signatures",
    "gpu_flops_signatures",
    "signatures_for",
]


@dataclass(frozen=True)
class Signature:
    """One metric's coordinates in an expectation basis."""

    name: str
    basis_name: str
    coords: np.ndarray
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "coords", np.asarray(self.coords, dtype=np.float64)
        )

    def in_kernel_space(self, basis: ExpectationBasis) -> np.ndarray:
        """The signature's expected measurement vector over kernel rows."""
        if basis.name != self.basis_name:
            raise ValueError(
                f"signature {self.name!r} belongs to basis {self.basis_name!r}, "
                f"not {basis.name!r}"
            )
        return basis.matrix @ self.coords


def cpu_flops_signatures() -> List[Signature]:
    """Paper Table I: the six CPU floating-point metric signatures."""
    dims = CPU_FLOPS_DIMENSIONS
    n = len(dims)

    def build(name, weight_fn, description=""):
        coords = np.zeros(n)
        for i, d in enumerate(dims):
            coords[i] = weight_fn(d)
        return Signature(name, "cpu_flops", coords, description)

    def instrs(precision):
        # FMA dims weighted 2: the FP_ARITH double-count convention.
        return lambda d: (2.0 if d.fma else 1.0) if d.precision == precision else 0.0

    def ops(precision):
        return lambda d: (
            float(flops_per_instruction(d.width, d.precision, d.fma))
            if d.precision == precision
            else 0.0
        )

    def fma_instrs(precision):
        return lambda d: 2.0 if (d.fma and d.precision == precision) else 0.0

    return [
        build("SP Instrs.", instrs("sp"), "Single-precision FP instructions retired."),
        build("SP Ops.", ops("sp"), "Single-precision floating-point operations."),
        build("SP FMA Instrs.", fma_instrs("sp"), "Single-precision FMA instructions."),
        build("DP Instrs.", instrs("dp"), "Double-precision FP instructions retired."),
        build("DP Ops.", ops("dp"), "Double-precision floating-point operations."),
        build("DP FMA Instrs.", fma_instrs("dp"), "Double-precision FMA instructions."),
    ]


def gpu_flops_signatures() -> List[Signature]:
    """Paper Table II: GPU floating-point metric signatures."""
    dims = GPU_FLOPS_DIMENSIONS
    n = len(dims)

    def coords_for(pred):
        coords = np.zeros(n)
        for i, d in enumerate(dims):
            coords[i] = pred(d)
        return coords

    def single(op, prec):
        return coords_for(lambda d: 1.0 if (d.op == op and d.precision == prec) else 0.0)

    def all_ops(prec):
        # FMA kernels issue instructions worth two operations each.
        return coords_for(
            lambda d: (d.ops_per_instruction if d.precision == prec else 0.0)
        )

    out = [
        Signature("HP Add Ops.", "gpu_flops", single("add", "f16"), "Half-precision additions."),
        Signature("HP Sub Ops.", "gpu_flops", single("sub", "f16"), "Half-precision subtractions."),
        Signature(
            "HP Add and Sub Ops.",
            "gpu_flops",
            single("add", "f16") + single("sub", "f16"),
            "Half-precision additions and subtractions.",
        ),
        Signature("All HP Ops.", "gpu_flops", all_ops("f16"), "All half-precision operations."),
        Signature("All SP Ops.", "gpu_flops", all_ops("f32"), "All single-precision operations."),
        Signature("All DP Ops.", "gpu_flops", all_ops("f64"), "All double-precision operations."),
    ]
    return out


def branch_signatures() -> List[Signature]:
    """Paper Table III: branching metric signatures over (CE, CR, T, D, M)."""
    table = {
        "Unconditional Branches.": [0, 0, 0, 1, 0],
        "Conditional Branches Taken.": [0, 0, 1, 0, 0],
        "Conditional Branches Not Taken.": [0, 1, -1, 0, 0],
        "Mispredicted Branches.": [0, 0, 0, 0, 1],
        "Correctly Predicted Branches.": [0, 1, 0, 0, -1],
        "Conditional Branches Retired.": [0, 1, 0, 0, 0],
        "Conditional Branches Executed.": [1, 0, 0, 0, 0],
    }
    return [Signature(name, "branch", np.array(coords, dtype=float)) for name, coords in table.items()]


def dcache_signatures() -> List[Signature]:
    """Paper Table IV: data-cache metric signatures over
    (L1DM, L1DH, L2DH, L3DH)."""
    table = {
        "L1 Misses.": [1, 0, 0, 0],
        "L1 Hits.": [0, 1, 0, 0],
        "L1 Reads.": [1, 1, 0, 0],
        "L2 Hits.": [0, 0, 1, 0],
        "L2 Misses.": [1, 0, -1, 0],
        "L3 Hits.": [0, 0, 0, 1],
    }
    return [Signature(name, "dcache", np.array(coords, dtype=float)) for name, coords in table.items()]


def dtlb_signatures() -> List[Signature]:
    """Translation metrics over (DTLBH, STLBH, WALK) — the fifth-domain
    extension; structured like the paper's Table IV."""
    table = {
        "DTLB Hits.": [1, 0, 0],
        "DTLB Misses.": [0, 1, 1],
        "STLB Hits.": [0, 1, 0],
        "Page Walks.": [0, 0, 1],
        "Translation Reads.": [1, 1, 1],
    }
    return [Signature(name, "dtlb", np.array(coords, dtype=float)) for name, coords in table.items()]


_SIGNATURE_TABLES = {
    "cpu_flops": cpu_flops_signatures,
    "gpu_flops": gpu_flops_signatures,
    "branch": branch_signatures,
    "dcache": dcache_signatures,
    "dtlb": dtlb_signatures,
}


def signatures_for(domain: str) -> List[Signature]:
    """All paper signatures for a benchmark domain."""
    try:
        return _SIGNATURE_TABLES[domain]()
    except KeyError:
        raise KeyError(
            f"no signature table for domain {domain!r}; "
            f"known: {sorted(_SIGNATURE_TABLES)}"
        ) from None
