"""The paper's analysis pipeline: bases, noise filtering, specialized QRCP,
and least-squares metric composition."""

from repro.core.basis import (
    BRANCH_EXPECTATION_MATRIX,
    ExpectationBasis,
    branch_basis,
    cpu_flops_basis,
    dcache_basis,
    dtlb_basis,
    gpu_flops_basis,
)
from repro.core.stability import StabilityReport, selection_stability
from repro.core.derive import (
    DerivationReport,
    applicable_domains,
    derive_presets,
)
from repro.core.crossarch import (
    PortabilityCell,
    PortabilityMatrix,
    portability_matrix,
)
from repro.core.metrics import MetricDefinition, compose_metric, round_coefficients
from repro.core.noise_filter import (
    NoiseReport,
    analyze_noise,
    batch_max_rnmse,
    max_rnmse,
)
from repro.core.pipeline import AnalysisPipeline, PipelineConfig, PipelineResult
from repro.core.sweep import (
    SweepCheckpoint,
    SweepEngine,
    SweepOutcome,
    SweepTask,
    expand_grid,
    result_digest,
    results_by_label,
)
from repro.core.qrcp import QRCPResult, qrcp_specialized, qrcp_standard
from repro.core.report import metric_table_rows, render_report, write_report
from repro.core.representation import RepresentationReport, represent_events
from repro.core.rounding import round_to_tolerance, score_column, score_columns
from repro.core.validation import (
    MetricValidation,
    dimension_activity_keys,
    ground_truth,
    validate_definition,
)
from repro.core.thresholds import (
    AlphaSelection,
    TauSelection,
    coefficient_of_variation,
    mad_variability,
    max_relative_range,
    select_alpha,
    select_tau,
    variability_measures,
)
from repro.core.signatures import (
    Signature,
    branch_signatures,
    cpu_flops_signatures,
    dcache_signatures,
    dtlb_signatures,
    gpu_flops_signatures,
    signatures_for,
)

__all__ = [
    "AlphaSelection",
    "AnalysisPipeline",
    "BRANCH_EXPECTATION_MATRIX",
    "TauSelection",
    "coefficient_of_variation",
    "mad_variability",
    "max_relative_range",
    "MetricValidation",
    "DerivationReport",
    "StabilityReport",
    "selection_stability",
    "applicable_domains",
    "derive_presets",
    "PortabilityCell",
    "PortabilityMatrix",
    "portability_matrix",
    "dimension_activity_keys",
    "ground_truth",
    "metric_table_rows",
    "validate_definition",
    "render_report",
    "select_alpha",
    "select_tau",
    "variability_measures",
    "write_report",
    "ExpectationBasis",
    "MetricDefinition",
    "NoiseReport",
    "PipelineConfig",
    "PipelineResult",
    "QRCPResult",
    "RepresentationReport",
    "Signature",
    "SweepCheckpoint",
    "SweepEngine",
    "SweepOutcome",
    "SweepTask",
    "analyze_noise",
    "batch_max_rnmse",
    "expand_grid",
    "result_digest",
    "results_by_label",
    "branch_basis",
    "branch_signatures",
    "compose_metric",
    "cpu_flops_basis",
    "cpu_flops_signatures",
    "dcache_basis",
    "dtlb_basis",
    "dcache_signatures",
    "dtlb_signatures",
    "gpu_flops_basis",
    "gpu_flops_signatures",
    "max_rnmse",
    "qrcp_specialized",
    "qrcp_standard",
    "represent_events",
    "round_coefficients",
    "round_to_tolerance",
    "score_column",
    "score_columns",
    "signatures_for",
]
