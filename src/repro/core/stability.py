"""Selection-stability harness: the pipeline's robustness across seeds.

The QRCP's tie-breaks can legitimately land on different — but
*semantically equivalent* — events when the noise realization changes
(two raw events carrying the same expectation dimension).  This harness
quantifies that: it reruns a domain's pipeline over many node seeds and
reports, per expectation dimension, the set of events observed carrying
it and how often each won.

A healthy domain shows (a) identical selections for the exact-measurement
domains, and (b) per-dimension carrier families that are small and
semantically coherent for the noisy domains.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import AnalysisPipeline, PipelineConfig
from repro.events.registry import EventRegistry
from repro.guard.validate import require_nonempty
from repro.hardware.systems import MachineNode

__all__ = ["StabilityReport", "selection_stability"]


@dataclass
class StabilityReport:
    """Observed selections for one domain across seeds."""

    domain: str
    seeds: Tuple[int, ...]
    selections: Dict[int, Tuple[str, ...]]  # seed -> selected events
    dimension_carriers: Dict[str, Counter]  # dimension label -> event counts

    @property
    def is_deterministic(self) -> bool:
        """True when every seed produced the identical event set."""
        unique = {frozenset(sel) for sel in self.selections.values()}
        return len(unique) == 1

    def carrier_families(self) -> Dict[str, List[str]]:
        """Per dimension: every event observed carrying it, ordered by
        frequency."""
        return {
            dim: [event for event, _ in counter.most_common()]
            for dim, counter in self.dimension_carriers.items()
        }

    def modal_selection(self) -> List[str]:
        """The most frequent carrier per dimension."""
        return [
            counter.most_common(1)[0][0]
            for counter in self.dimension_carriers.values()
        ]

    def summary(self) -> str:
        lines = [
            f"{self.domain}: {len(self.seeds)} seeds, "
            f"{'deterministic selection' if self.is_deterministic else 'carrier families vary'}"
        ]
        for dim, counter in self.dimension_carriers.items():
            parts = ", ".join(f"{e} x{c}" for e, c in counter.most_common())
            lines.append(f"  {dim}: {parts}")
        return "\n".join(lines)


def selection_stability(
    node_factory: Callable[[int], MachineNode],
    domain: str,
    seeds: Sequence[int],
    config: Optional[PipelineConfig] = None,
    events: Optional[EventRegistry] = None,
) -> StabilityReport:
    """Rerun the domain's pipeline per seed and aggregate the selections.

    Carrier attribution mirrors what the QR actually did: walking the
    selection in pivot order, each event is assigned to the expectation
    dimension of its largest component *orthogonal to the previously
    selected representations* — the novel direction it contributed.  (A
    plain argmax would misattribute multi-dimension events such as
    ``BR_INST_RETIRED:ALL_BRANCHES``, whose novel contribution after COND
    is the unconditional dimension.)

    ``events`` restricts each pipeline to a fixed registry subset — e.g.
    to probe stability when fewer events than basis dimensions survive
    (a rank-deficient selection, where the report must still be coherent
    rather than crash or misattribute).
    """
    require_nonempty(seeds, "seeds", "selection_stability")
    selections: Dict[int, Tuple[str, ...]] = {}
    carriers: Dict[str, Counter] = {}
    for seed in seeds:
        node = node_factory(seed)
        pipeline = AnalysisPipeline.for_domain(
            domain, node, config=config, events=events
        )
        result = pipeline.run()
        selections[seed] = tuple(result.selected_events)
        basis = result.representation.basis
        chosen_reps: List[np.ndarray] = []
        for event in result.selected_events:
            rep = result.representation.representation(event)
            if chosen_reps:
                q = np.column_stack(chosen_reps)
                coeff, *_ = np.linalg.lstsq(q, rep, rcond=None)
                novel = rep - q @ coeff
            else:
                novel = rep
            dim = basis.dimension_labels[int(np.argmax(np.abs(novel)))]
            carriers.setdefault(dim, Counter())[event] += 1
            chosen_reps.append(rep)
    return StabilityReport(
        domain=domain,
        seeds=tuple(seeds),
        selections=selections,
        dimension_carriers=carriers,
    )
