"""Cross-architecture portability analysis.

The paper's motivating problem is that metric definitions do not transfer
between architectures.  This module quantifies the situation the pipeline
leaves us in: given analysis results for the same domain on several nodes,
it builds a *portability matrix* — metric x architecture -> composable or
not, with the backward error and the raw-event combination per cell — and
summarizes which concepts are universal, which are architecture-specific,
and which raw vocabularies realize them.

This is the artifact a middleware maintainer actually wants from the
automation: one table saying "PAPI_DP_OPS exists on SPR via FP_ARITH...,
does not exist on Zen 3, exists on MI250X via SQ_INSTS_VALU...".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import MetricDefinition
from repro.core.pipeline import PipelineResult
from repro.io.tables import render_markdown_table

__all__ = ["PortabilityCell", "PortabilityMatrix", "portability_matrix"]


@dataclass(frozen=True)
class PortabilityCell:
    """One (metric, architecture) outcome."""

    architecture: str
    metric: str
    error: float
    composable: bool
    events: Tuple[str, ...]

    def combination(self) -> str:
        if not self.composable:
            return "—"
        return " + ".join(self.events) if self.events else "(zero)"


@dataclass
class PortabilityMatrix:
    """Portability of a domain's metrics across architectures."""

    domain: str
    architectures: List[str]
    metrics: List[str]
    cells: Dict[Tuple[str, str], PortabilityCell]  # (metric, arch) -> cell

    def cell(self, metric: str, architecture: str) -> PortabilityCell:
        try:
            return self.cells[(metric, architecture)]
        except KeyError:
            raise KeyError(
                f"no cell for metric {metric!r} on {architecture!r}; "
                f"metrics: {self.metrics}, architectures: {self.architectures}"
            ) from None

    def universal_metrics(self) -> List[str]:
        """Metrics composable on every analyzed architecture."""
        return [
            m
            for m in self.metrics
            if all(self.cell(m, a).composable for a in self.architectures)
        ]

    def architecture_specific(self) -> Dict[str, List[str]]:
        """architecture -> metrics composable there but not everywhere."""
        universal = set(self.universal_metrics())
        out: Dict[str, List[str]] = {}
        for arch in self.architectures:
            out[arch] = [
                m
                for m in self.metrics
                if self.cell(m, arch).composable and m not in universal
            ]
        return out

    def uncomposable_everywhere(self) -> List[str]:
        return [
            m
            for m in self.metrics
            if not any(self.cell(m, a).composable for a in self.architectures)
        ]

    def vocabulary_overlap(self) -> float:
        """Jaccard overlap of the raw-event vocabularies used across
        architectures (0 = completely disjoint — the expected case, and
        the reason the automation matters)."""
        vocabularies = []
        for arch in self.architectures:
            vocab = set()
            for m in self.metrics:
                vocab.update(self.cell(m, arch).events)
            vocabularies.append(vocab)
        union = set().union(*vocabularies) if vocabularies else set()
        if not union:
            return 1.0
        intersection = set(vocabularies[0])
        for v in vocabularies[1:]:
            intersection &= v
        return len(intersection) / len(union)

    def to_markdown(self) -> str:
        headers = ["Metric"] + [
            f"{arch} (error)" for arch in self.architectures
        ]
        rows = []
        for m in self.metrics:
            row: List[str] = [m]
            for arch in self.architectures:
                cell = self.cell(m, arch)
                mark = "yes" if cell.composable else "NO"
                row.append(f"{mark} ({cell.error:.1e})")
            rows.append(row)
        return render_markdown_table(headers, rows)


def portability_matrix(
    results: Sequence[Tuple[str, PipelineResult]],
    composable_threshold: float = 1e-3,
) -> PortabilityMatrix:
    """Build the portability matrix from per-architecture pipeline results.

    ``results`` are (architecture label, PipelineResult) pairs; all results
    should cover comparable metric sets (typically the same domain, but
    cross-domain comparisons — e.g. CPU-FLOPs vs GPU-FLOPs metrics — are
    allowed: missing metrics are recorded as uncomposable-with-error-1).
    """
    if not results:
        raise ValueError("need at least one pipeline result")
    architectures = [label for label, _ in results]
    if len(set(architectures)) != len(architectures):
        raise ValueError("architecture labels must be unique")
    metric_names: List[str] = []
    for _, result in results:
        for name in result.metrics:
            if name not in metric_names:
                metric_names.append(name)

    cells: Dict[Tuple[str, str], PortabilityCell] = {}
    for label, result in results:
        for name in metric_names:
            definition: Optional[MetricDefinition] = result.metrics.get(name)
            if definition is None:
                cells[(name, label)] = PortabilityCell(
                    architecture=label,
                    metric=name,
                    error=1.0,
                    composable=False,
                    events=(),
                )
                continue
            composable = definition.error <= composable_threshold
            events = tuple(
                e for e, c in definition.terms().items() if abs(c) > 1e-6
            )
            cells[(name, label)] = PortabilityCell(
                architecture=label,
                metric=name,
                error=definition.error,
                composable=composable,
                events=events if composable else (),
            )
    domain = results[0][1].domain
    return PortabilityMatrix(
        domain=domain,
        architectures=architectures,
        metrics=metric_names,
        cells=cells,
    )
