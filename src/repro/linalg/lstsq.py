"""Least squares via our Householder QR, with the paper's fitness measure.

The pipeline solves two families of least-squares problems:

1. *Representation*: ``E x_e = m_e`` projects a raw-event measurement vector
   onto the expectation basis (paper Section III-B).
2. *Metric composition*: ``X-hat y = s`` combines the QRCP-chosen events to
   match a metric signature (paper Section VI).

Both need the residual and the Equation-5 backward error alongside the
solution, so :func:`lstsq_qr` returns a :class:`LstsqResult` bundling them.

Rank-deficient systems are handled by truncating negligible diagonal entries
of R (a pivoting-free variant of the usual QR-with-column-pivoting approach;
adequate here because the QRCP stage has already removed dependent columns
from the matrices this solver sees in the metric-composition path).  The
truncation threshold follows the LAPACK convention by default:
``rcond = max(m, n) * eps`` relative to the largest diagonal magnitude of R
(a proxy for ``||A||``), instead of a hardcoded absolute constant.

With a :class:`~repro.guard.health.GuardConfig`, the solve carries a
conditioning sentinel: the triangular factor's condition number is
estimated, and when it crosses the configured threshold a fallback ladder
engages — column-scaled re-factorization, then one step of iterative
refinement in float64 and again in longdouble — with every rung recorded
in the result's :class:`~repro.guard.health.NumericalHealth`.  Below the
threshold the guard is pure observation and the solution is bit-identical
to the unguarded path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.linalg.householder import HouseholderQR
from repro.linalg.norms import backward_error, vector_norm
from repro.linalg.triangular import solve_upper
from repro.obs import get_tracer

if TYPE_CHECKING:
    from repro.guard.health import GuardConfig, NumericalHealth

__all__ = ["LstsqResult", "default_rcond", "lstsq_qr"]


@dataclass(frozen=True)
class LstsqResult:
    """Solution bundle for an ``A x ~= b`` least-squares problem.

    Attributes
    ----------
    x:
        The minimum-residual solution (with zeros in directions truncated
        for rank deficiency).
    residual_norm:
        ``||A x - b||_2``.
    relative_residual:
        ``||A x - b||_2 / ||b||_2`` (defined as 0 when ``b`` is zero).
    backward_error:
        The paper's Equation 5: ``||A x - b|| / (||A||_2 ||x|| + ||b||)``.
    rank:
        Numerical rank used for the solve.
    health:
        Conditioning sentinel readings (only populated when the solve ran
        under a guard config; ``None`` otherwise).
    """

    x: np.ndarray
    residual_norm: float
    relative_residual: float
    backward_error: float
    rank: int
    health: Optional["NumericalHealth"] = None


def default_rcond(m: int, n: int) -> float:
    """The LAPACK-convention truncation threshold ``max(m, n) * eps``.

    Applied relative to ``max|diag(R)|`` (which tracks ``||A||`` for the
    QR of a column-pivoted or well-scaled matrix), this scales the rank
    decision with both the problem size and the data magnitude instead of
    freezing an absolute cutoff.
    """
    return max(m, n) * float(np.finfo(np.float64).eps)


def _qr_solve(
    a: np.ndarray, b: np.ndarray, rcond: float
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Factor ``A`` and solve with diagonal truncation.

    Returns ``(x, rank, r)`` where ``r`` is the ``(n, n)`` triangle used
    for conditioning sentinels.
    """
    m, n = a.shape
    fact = HouseholderQR(a)
    for _ in range(n):
        fact.step()
    qtb = fact.apply_qt(b)
    r = fact.r_factor()[:, :n]
    diag = np.abs(np.diag(r))
    threshold = rcond * (diag.max() if diag.size else 0.0)
    keep = diag > threshold
    rank = int(keep.sum())

    x = np.zeros(n)
    if rank == n:
        x = solve_upper(r, qtb[:n])
    elif rank > 0:
        # Rank-deficient: minimize over the independent columns only, using
        # *all* rows of R (an independent column may have R entries in rows
        # belonging to truncated columns).  The sub-matrix has full column
        # rank, so the recursive call terminates after one level.
        idx = np.flatnonzero(keep)
        sub = lstsq_qr(r[:, idx], qtb[:n], rcond=rcond)
        x[idx] = sub.x
    return x, rank, r


def _refine(
    a: np.ndarray,
    b: np.ndarray,
    x: np.ndarray,
    solve_residual,
    dtype,
) -> np.ndarray:
    """One iterative-refinement step: the residual is computed in
    ``dtype`` (float64 or longdouble) and the correction comes from the
    already-factorized system via ``solve_residual``."""
    residual = b.astype(dtype) - a.astype(dtype) @ x.astype(dtype)
    dx = solve_residual(np.asarray(residual, dtype=np.float64))
    return np.asarray(x.astype(dtype) + dx.astype(dtype), dtype=np.float64)


def lstsq_qr(
    a: np.ndarray,
    b: np.ndarray,
    rcond: Optional[float] = None,
    guard: Optional["GuardConfig"] = None,
) -> LstsqResult:
    """Solve ``min_x ||A x - b||_2`` using the in-house Householder QR.

    Parameters
    ----------
    a:
        An ``(m, n)`` matrix with ``m >= n``.
    b:
        A right-hand-side vector of length ``m``.
    rcond:
        Diagonal entries of R smaller than ``rcond * max|diag(R)|`` are
        treated as zero (rank truncation); the corresponding solution
        entries are set to zero.  ``None`` (default) uses the LAPACK
        convention ``max(m, n) * eps`` (see :func:`default_rcond`).
    guard:
        A :class:`~repro.guard.health.GuardConfig`; when given (and
        enabled), the solve estimates the conditioning of R, and crosses
        into the fallback ladder — column-scaled re-factorization plus
        iterative refinement in float64 then longdouble — when the
        estimate exceeds ``guard.condition_threshold``.  The resulting
        :class:`~repro.guard.health.NumericalHealth` is attached to the
        returned :class:`LstsqResult`.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {a.shape}")
    m, n = a.shape
    if b.shape != (m,):
        raise ValueError(f"rhs shape {b.shape} does not match matrix rows {m}")
    if m < n:
        raise ValueError(
            f"lstsq_qr requires m >= n (got {a.shape}); the pipeline never "
            "produces underdetermined systems"
        )
    if rcond is None:
        rcond = default_rcond(m, n)
    if n == 0:
        res = vector_norm(b)
        rel = 0.0 if res == 0.0 else 1.0
        return LstsqResult(
            x=np.zeros(0),
            residual_norm=res,
            relative_residual=rel,
            backward_error=0.0 if res == 0.0 else 1.0,
            rank=0,
        )

    x, rank, r = _qr_solve(a, b, rcond)

    health: Optional["NumericalHealth"] = None
    if guard is not None and guard.enabled:
        from repro.guard.health import triangular_health

        health = triangular_health(
            r, original=a, refine_iterations=guard.refine_iterations
        )
        if health.condition_estimate > guard.condition_threshold:
            x, health = _fallback_ladder(a, b, x, rcond, guard, health)

    resid = vector_norm(a @ x - b)
    b_norm = vector_norm(b)
    rel = 0.0 if b_norm == 0.0 else resid / b_norm
    bwd = backward_error(a, x, b)
    if health is not None:
        health = replace(health, residual_bound=bwd)
    return LstsqResult(
        x=x,
        residual_norm=resid,
        relative_residual=rel,
        backward_error=bwd,
        rank=rank,
        health=health,
    )


def _fallback_ladder(
    a: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    rcond: float,
    guard: "GuardConfig",
    health: "NumericalHealth",
) -> Tuple[np.ndarray, "NumericalHealth"]:
    """The guarded solve for an ill-conditioned system.

    Rung 1: column-scaled re-factorization — equilibrating the columns
    removes the artificial conditioning contributed by wildly different
    event magnitudes (often orders of magnitude in raw counters).
    Rung 2: one iterative-refinement step per ``max_refinements`` with the
    residual in float64.
    Rung 3: the same with the residual accumulated in longdouble, which
    recovers the digits float64 cancellation destroyed.  Every rung is
    recorded; the caller keeps whichever solution has the smaller
    backward error (never worse than the unguarded one).
    """
    from repro.guard.health import triangular_health

    fired = list(health.guards_fired)
    norms = np.sqrt(np.einsum("ij,ij->j", a, a))
    scale = np.where(norms > 0.0, norms, 1.0)
    a_scaled = a / scale
    fired.append("column-scaling")
    z, rank, r_scaled = _qr_solve(a_scaled, b, rcond)
    x = z / scale

    def solve_residual(res: np.ndarray) -> np.ndarray:
        dz, _, _ = _qr_solve(a_scaled, res, rcond)
        return dz / scale

    iterations = 0
    for _ in range(guard.max_refinements):
        fired.append("iterative-refinement-float64")
        x = _refine(a, b, x, solve_residual, np.float64)
        iterations += 1
        fired.append("iterative-refinement-longdouble")
        x = _refine(a, b, x, solve_residual, np.longdouble)
        iterations += 1

    # Keep the better of (unguarded, guarded) by backward error: the
    # ladder must never make a solution worse.
    if backward_error(a, x, b) > backward_error(a, x0, b):
        x = x0
        fired.append("fallback-discarded")

    scaled_health = triangular_health(
        r_scaled, original=a_scaled, refine_iterations=guard.refine_iterations
    )
    tracer = get_tracer()
    for rung in fired[len(health.guards_fired):]:
        tracer.incr(f"guard.fired.{rung}")
    return x, replace(
        health,
        condition_estimate=health.condition_estimate,
        rank_gap=max(health.rank_gap, scaled_health.rank_gap),
        suspect_columns=tuple(
            sorted(set(health.suspect_columns) | set(scaled_health.suspect_columns))
        ),
        refinement_iterations=iterations,
        guards_fired=tuple(fired),
    )
