"""Least squares via our Householder QR, with the paper's fitness measure.

The pipeline solves two families of least-squares problems:

1. *Representation*: ``E x_e = m_e`` projects a raw-event measurement vector
   onto the expectation basis (paper Section III-B).
2. *Metric composition*: ``X-hat y = s`` combines the QRCP-chosen events to
   match a metric signature (paper Section VI).

Both need the residual and the Equation-5 backward error alongside the
solution, so :func:`lstsq_qr` returns a :class:`LstsqResult` bundling them.

Rank-deficient systems are handled by truncating negligible diagonal entries
of R (a pivoting-free variant of the usual QR-with-column-pivoting approach;
adequate here because the QRCP stage has already removed dependent columns
from the matrices this solver sees in the metric-composition path).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.householder import HouseholderQR
from repro.linalg.norms import backward_error, vector_norm
from repro.linalg.triangular import solve_upper

__all__ = ["LstsqResult", "lstsq_qr"]


@dataclass(frozen=True)
class LstsqResult:
    """Solution bundle for an ``A x ~= b`` least-squares problem.

    Attributes
    ----------
    x:
        The minimum-residual solution (with zeros in directions truncated
        for rank deficiency).
    residual_norm:
        ``||A x - b||_2``.
    relative_residual:
        ``||A x - b||_2 / ||b||_2`` (defined as 0 when ``b`` is zero).
    backward_error:
        The paper's Equation 5: ``||A x - b|| / (||A||_2 ||x|| + ||b||)``.
    rank:
        Numerical rank used for the solve.
    """

    x: np.ndarray
    residual_norm: float
    relative_residual: float
    backward_error: float
    rank: int


def lstsq_qr(a: np.ndarray, b: np.ndarray, rcond: float = 1e-12) -> LstsqResult:
    """Solve ``min_x ||A x - b||_2`` using the in-house Householder QR.

    Parameters
    ----------
    a:
        An ``(m, n)`` matrix with ``m >= n``.
    b:
        A right-hand-side vector of length ``m``.
    rcond:
        Diagonal entries of R smaller than ``rcond * max|diag(R)|`` are
        treated as zero (rank truncation); the corresponding solution
        entries are set to zero.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {a.shape}")
    m, n = a.shape
    if b.shape != (m,):
        raise ValueError(f"rhs shape {b.shape} does not match matrix rows {m}")
    if m < n:
        raise ValueError(
            f"lstsq_qr requires m >= n (got {a.shape}); the pipeline never "
            "produces underdetermined systems"
        )
    if n == 0:
        res = vector_norm(b)
        rel = 0.0 if res == 0.0 else 1.0
        return LstsqResult(
            x=np.zeros(0),
            residual_norm=res,
            relative_residual=rel,
            backward_error=0.0 if res == 0.0 else 1.0,
            rank=0,
        )

    fact = HouseholderQR(a)
    for _ in range(n):
        fact.step()
    qtb = fact.apply_qt(b)
    r = fact.r_factor()[:, :n]
    diag = np.abs(np.diag(r))
    threshold = rcond * (diag.max() if diag.size else 0.0)
    keep = diag > threshold
    rank = int(keep.sum())

    x = np.zeros(n)
    if rank == n:
        x = solve_upper(r, qtb[:n])
    elif rank > 0:
        # Rank-deficient: minimize over the independent columns only, using
        # *all* rows of R (an independent column may have R entries in rows
        # belonging to truncated columns).  The sub-matrix has full column
        # rank, so the recursive call terminates after one level.
        idx = np.flatnonzero(keep)
        sub = lstsq_qr(r[:, idx], qtb[:n], rcond=rcond)
        x[idx] = sub.x

    resid = vector_norm(a @ x - b)
    b_norm = vector_norm(b)
    rel = 0.0 if b_norm == 0.0 else resid / b_norm
    return LstsqResult(
        x=x,
        residual_norm=resid,
        relative_residual=rel,
        backward_error=backward_error(a, x, b),
        rank=rank,
    )
