"""Householder reflectors and an incremental QR factorization.

The QRCP algorithms in :mod:`repro.core.qrcp` need a QR that exposes its
internals: after each pivot selection they swap a column into place, compute
a single Householder reflector, and apply it to the *trailing* columns
("Update A using column pivot" in the paper's Algorithm 1/2 listings).  The
:class:`HouseholderQR` class provides exactly that incremental interface;
:func:`qr_decompose` wraps it into a conventional one-shot factorization used
by the least-squares solver and the tests.

All reflector applications are vectorized rank-1 updates
(``A -= beta * v @ (v.T @ A)``); there are no elementwise Python loops.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "HouseholderQR",
    "apply_householder",
    "householder_vector",
    "qr_decompose",
]


def householder_vector(x: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """Compute a Householder reflector annihilating ``x[1:]``.

    Returns ``(v, beta, alpha)`` such that ``(I - beta * v v^T) x =
    (alpha, 0, ..., 0)`` with ``v[0] == 1``.  Uses the sign convention
    ``alpha = -sign(x[0]) * ||x||`` for numerical stability (no cancellation
    when forming ``v``).

    For a zero (or effectively zero) input the reflector is the identity:
    ``beta == 0``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValueError(f"expected a non-empty 1-D array, got shape {x.shape}")
    v = x.copy()
    norm_x = float(np.sqrt(np.dot(x, x)))
    if norm_x == 0.0:
        v[:] = 0.0
        v[0] = 1.0
        return v, 0.0, 0.0
    alpha = -norm_x if x[0] >= 0.0 else norm_x
    v0 = x[0] - alpha
    if v0 == 0.0:
        # x is already (alpha, 0, ..., 0): identity reflector.
        v[:] = 0.0
        v[0] = 1.0
        return v, 0.0, float(alpha)
    v /= v0
    v[0] = 1.0
    # beta = 2 / (v^T v); computed directly for clarity and stability.
    beta = 2.0 / float(np.dot(v, v))
    return v, beta, float(alpha)


def apply_householder(a: np.ndarray, v: np.ndarray, beta: float) -> None:
    """Apply the reflector ``(I - beta v v^T)`` to ``a`` in place.

    ``a`` may be a vector or a matrix whose rows match ``v``; the update is a
    single rank-1 BLAS-style operation.
    """
    if beta == 0.0:
        return
    a_mat = a if a.ndim == 2 else a.reshape(-1, 1)
    w = v @ a_mat  # shape (n_cols,)
    a_mat -= np.outer(beta * v, w)


class HouseholderQR:
    """Incremental Householder QR over a working copy of a matrix.

    The factorization proceeds column by column under external control: the
    caller (a QRCP driver) inspects the working matrix, optionally swaps a
    pivot column into position ``k``, and calls :meth:`step` to eliminate
    below the diagonal of column ``k`` and update the trailing columns.

    Attributes
    ----------
    a:
        The working matrix; after ``k`` steps its leading ``k`` columns hold
        the R factor rows and the reflector tails are stored below the
        diagonal (standard compact form).
    rank:
        Number of steps performed so far.
    """

    def __init__(self, a: np.ndarray):
        a = np.array(a, dtype=np.float64, copy=True)
        if a.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {a.shape}")
        self.a = a
        self.m, self.n = a.shape
        self.rank = 0
        self._betas: list = []

    def swap_columns(self, i: int, j: int) -> None:
        """Swap columns ``i`` and ``j`` of the working matrix."""
        if i == j:
            return
        self.a[:, [i, j]] = self.a[:, [j, i]]

    def trailing_column_norms(self) -> np.ndarray:
        """Norms of the trailing rows (``rank:``) of columns ``rank:``.

        These are the residual norms of the not-yet-chosen columns after
        orthogonalization against the columns chosen so far — the quantity
        both pivoting schemes consult.
        """
        k = self.rank
        tail = self.a[k:, k:]
        if tail.size == 0:
            return np.zeros(self.n - k)
        return np.sqrt(np.einsum("ij,ij->j", tail, tail))

    def step(self) -> float:
        """Eliminate column ``rank`` below its diagonal; update trailing cols.

        Returns the diagonal value ``R[k, k]`` produced by the reflector.
        """
        k = self.rank
        if k >= min(self.m, self.n):
            raise RuntimeError("QR factorization is already complete")
        v, beta, alpha = householder_vector(self.a[k:, k])
        self.a[k, k] = alpha
        self.a[k + 1 :, k] = v[1:]  # store reflector tail in compact form
        if k + 1 < self.n:
            apply_householder(self.a[k:, k + 1 :], v, beta)
        self._betas.append(beta)
        self.rank += 1
        return float(alpha)

    def r_factor(self) -> np.ndarray:
        """Upper-triangular R restricted to the ``rank`` processed columns."""
        k = self.rank
        return np.triu(self.a[:k, :])

    def apply_qt(self, b: np.ndarray) -> np.ndarray:
        """Apply ``Q^T`` (product of performed reflectors) to ``b``.

        ``b`` may be a vector of length ``m`` or an ``(m, p)`` matrix; a new
        array is returned.
        """
        b = np.array(b, dtype=np.float64, copy=True)
        vec_input = b.ndim == 1
        b_mat = b.reshape(self.m, -1)
        for k in range(self.rank):
            beta = self._betas[k]
            if beta == 0.0:
                continue
            v = np.empty(self.m - k)
            v[0] = 1.0
            v[1:] = self.a[k + 1 :, k]
            apply_householder(b_mat[k:, :], v, beta)
        return b_mat.ravel() if vec_input else b_mat


def qr_decompose(
    a: np.ndarray, economy: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot QR factorization ``A = Q R`` built on :class:`HouseholderQR`.

    Parameters
    ----------
    a:
        An ``(m, n)`` matrix with ``m >= n`` (tall or square).
    economy:
        If true (default) return the thin factors ``Q (m, n)``, ``R (n, n)``;
        otherwise the full ``Q (m, m)``, ``R (m, n)``.
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    if m < n:
        raise ValueError(f"qr_decompose requires m >= n, got shape {a.shape}")
    fact = HouseholderQR(a)
    for _ in range(n):
        fact.step()
    # Form Q by applying the reflectors to the identity: Q = H_1 ... H_n I.
    q_cols = n if economy else m
    q = np.eye(m, q_cols)
    for k in range(n - 1, -1, -1):
        beta = fact._betas[k]
        if beta == 0.0:
            continue
        v = np.empty(m - k)
        v[0] = 1.0
        v[1:] = fact.a[k + 1 :, k]
        apply_householder(q[k:, :], v, beta)
    r_full = np.triu(fact.a)
    r = r_full[:n, :n] if economy else r_full
    return q, r
