"""Vector and matrix norms, and the paper's backward-error fitness measure.

The backward error (paper Equation 5) is the quantity the paper uses to
decide whether a metric *can* be composed from the raw events available on an
architecture: values near machine epsilon certify an exact composition,
while a value of 1.0 certifies that the signature lies entirely outside the
span of the chosen events (e.g. "Conditional Branches Executed" on Sapphire
Rapids, paper Table VII).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "backward_error",
    "column_norms",
    "frobenius_norm",
    "spectral_norm",
    "vector_norm",
]


def vector_norm(x: np.ndarray) -> float:
    """Euclidean norm of a vector, as a Python float."""
    x = np.asarray(x, dtype=np.float64)
    return float(np.sqrt(np.dot(x.ravel(), x.ravel())))


def column_norms(a: np.ndarray) -> np.ndarray:
    """Euclidean norms of each column of a 2-D array.

    Computed as a single vectorized reduction; no per-column Python loop.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {a.shape}")
    return np.sqrt(np.einsum("ij,ij->j", a, a))


def frobenius_norm(a: np.ndarray) -> float:
    """Frobenius norm of a matrix."""
    a = np.asarray(a, dtype=np.float64)
    return float(np.sqrt(np.einsum("ij,ij->", a, a)))


def spectral_norm(a: np.ndarray) -> float:
    """Spectral norm (largest singular value) of a matrix.

    Uses an SVD restricted to singular values only; the matrices in this
    pipeline are tiny (tens of rows/columns), so the cubic cost is
    irrelevant, but we still avoid forming singular vectors.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.size == 0:
        return 0.0
    return float(np.linalg.svd(a, compute_uv=False)[0])


def backward_error(a: np.ndarray, y: np.ndarray, s: np.ndarray) -> float:
    """Backward error of a least-squares solution (paper Equation 5).

    ``||A @ y - s||_2 / (||A||_2 * ||y||_2 + ||s||_2)``

    Parameters
    ----------
    a:
        The matrix of chosen event representations (paper: ``X-hat``).
    y:
        The least-squares solution (event coefficients).
    s:
        The metric signature being composed.

    Returns
    -------
    float
        A value in ``[0, 1]`` (up to rounding); near-zero means the
        combination reproduces the signature, 1.0 means the signature is
        orthogonal to everything the events can express.
    """
    a = np.asarray(a, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    s = np.asarray(s, dtype=np.float64)
    residual = vector_norm(a @ y - s)
    denom = spectral_norm(a) * vector_norm(y) + vector_norm(s)
    if denom == 0.0:
        # Both the signature and the solution are zero: the (trivial)
        # composition is exact.
        return 0.0
    return residual / denom
