"""Triangular solvers by substitution.

These back the QR-based least-squares path.  Row updates are vectorized;
the outer loop is over the (small) triangular dimension only.
"""

from __future__ import annotations

import numpy as np

__all__ = ["solve_lower", "solve_upper"]

_SINGULAR_MSG = "triangular matrix is singular (zero diagonal at index {idx})"


def solve_upper(r: np.ndarray, b: np.ndarray, tol: float = 0.0) -> np.ndarray:
    """Solve ``R x = b`` for upper-triangular ``R`` by back substitution.

    Parameters
    ----------
    r:
        An ``(n, n)`` upper-triangular matrix (entries below the diagonal are
        ignored).
    b:
        Right-hand side of length ``n`` or an ``(n, p)`` block.
    tol:
        Diagonal entries with absolute value ``<= tol`` raise
        :class:`numpy.linalg.LinAlgError`; the default 0.0 only rejects exact
        zeros.
    """
    r = np.asarray(r, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = r.shape[0]
    if r.shape != (n, n):
        raise ValueError(f"expected a square matrix, got shape {r.shape}")
    vec_input = b.ndim == 1
    x = np.array(b, dtype=np.float64, copy=True).reshape(n, -1)
    for i in range(n - 1, -1, -1):
        diag = r[i, i]
        if abs(diag) <= tol:
            raise np.linalg.LinAlgError(_SINGULAR_MSG.format(idx=i))
        if i + 1 < n:
            x[i, :] -= r[i, i + 1 :] @ x[i + 1 :, :]
        x[i, :] /= diag
    return x.ravel() if vec_input else x


def solve_lower(l: np.ndarray, b: np.ndarray, tol: float = 0.0) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L`` by forward substitution."""
    l = np.asarray(l, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = l.shape[0]
    if l.shape != (n, n):
        raise ValueError(f"expected a square matrix, got shape {l.shape}")
    vec_input = b.ndim == 1
    x = np.array(b, dtype=np.float64, copy=True).reshape(n, -1)
    for i in range(n):
        diag = l[i, i]
        if abs(diag) <= tol:
            raise np.linalg.LinAlgError(_SINGULAR_MSG.format(idx=i))
        if i > 0:
            x[i, :] -= l[i, :i] @ x[:i, :]
        x[i, :] /= diag
    return x.ravel() if vec_input else x
