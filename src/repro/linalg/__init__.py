"""Supporting dense linear algebra for the event-analysis pipeline.

The paper's contribution hinges on a *specialized* column-pivoted QR
factorization (its Algorithm 2), which cannot be expressed as a call into
LAPACK's ``geqp3``: the pivot choice depends on a rounding/scoring scheme
over the partially factorized matrix rather than on column norms.  This
subpackage therefore provides the Householder machinery, triangular solves
and least-squares kernels the pipeline needs, implemented directly on top of
vectorized NumPy primitives.

The public surface:

* :func:`repro.linalg.householder.householder_vector` /
  :func:`repro.linalg.householder.apply_householder` — reflector
  construction and blocked application.
* :class:`repro.linalg.householder.HouseholderQR` — incremental QR with
  explicit per-column updates (the form both QRCP algorithms consume).
* :func:`repro.linalg.triangular.solve_upper` /
  :func:`repro.linalg.triangular.solve_lower` — substitution solvers.
* :func:`repro.linalg.lstsq.lstsq_qr` — least squares via our QR.
* :class:`repro.linalg.updates.UpdatableQR` — rank-one column
  insert/delete/replace updates of a QR with guard-certified solves
  (the ``repro.incr`` fast path).
* :func:`repro.linalg.norms.backward_error` — the paper's Equation 5
  fitness measure.
"""

from repro.linalg.householder import (
    HouseholderQR,
    apply_householder,
    householder_vector,
    qr_decompose,
)
from repro.linalg.lstsq import LstsqResult, default_rcond, lstsq_qr
from repro.linalg.norms import backward_error, frobenius_norm, spectral_norm
from repro.linalg.triangular import solve_lower, solve_upper
from repro.linalg.updates import UpdatableQR, givens_rotation

__all__ = [
    "HouseholderQR",
    "LstsqResult",
    "UpdatableQR",
    "givens_rotation",
    "apply_householder",
    "backward_error",
    "default_rcond",
    "frobenius_norm",
    "householder_vector",
    "lstsq_qr",
    "qr_decompose",
    "solve_lower",
    "solve_upper",
    "spectral_norm",
]
