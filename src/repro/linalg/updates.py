"""Rank-one column updates of a QR factorization (the ``repro.incr`` core).

A registry edit changes one column of the measurement matrix, yet the
pipeline re-factorizes from scratch: O(m n^2) Householder work to absorb a
single-column change.  The classic alternative (Golub & Van Loan 12.5,
Daniel/Gragg/Kaufman/Stewart) updates the existing factors with Givens
rotations in O(m^2 + m n): this module implements it as
:class:`UpdatableQR`, a QR of a tall matrix that supports inserting,
deleting, and replacing columns in place.

Where the one-shot :class:`~repro.linalg.householder.HouseholderQR` keeps
compact reflectors, :class:`UpdatableQR` carries an *explicit* orthogonal
``Q (m, m)`` and ``R (m, n)`` — rotations compose into them directly and
``Q^T b`` is a matmul.  The memory trade (m^2 floats) is right for the
pipeline's shapes (m is the expectation-basis dimension, tens of rows).

Column insertion at position ``j``: with ``w = Q^T a`` spliced in as the
new column, rotations ``G(k-1, k)`` for ``k = m-1 .. j+1`` zero the spike
below row ``j``.  Each rotation can only fill the diagonal of a
right-shifted column (its row index grew by one), so the triangle
survives.  Deletion at ``j`` leaves the trailing block upper Hessenberg;
rotations ``G(k, k+1)`` for ``k = j .. n-2`` restore it.  Replacement is
delete + insert.

Numerics and the guard contract: each update is backward stable but the
factors drift away from a from-scratch factorization in the last ulps,
and repeated updates of a near-singular matrix can lose orthogonality.
:meth:`UpdatableQR.lstsq` therefore carries the same conditioning
sentinel as :func:`~repro.linalg.lstsq.lstsq_qr`: every updated solve is
stamped with the ``incr-rank-one-update`` guard rung (an updated result
is *certified*, never silently passed off as a from-scratch one), and
when the sentinel fires — condition estimate or rank gap past the
:class:`~repro.guard.health.GuardConfig` thresholds — the solve falls
back to a full re-factorization of the tracked matrix via ``lstsq_qr``,
bit-identical to the from-scratch path, stamped ``incr-refactorized``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.linalg.householder import qr_decompose
from repro.linalg.lstsq import LstsqResult, default_rcond, lstsq_qr
from repro.linalg.norms import backward_error, vector_norm
from repro.linalg.triangular import solve_upper
from repro.obs import get_tracer

if TYPE_CHECKING:
    from repro.guard.health import GuardConfig

__all__ = ["UpdatableQR", "givens_rotation"]


def givens_rotation(a: float, b: float) -> Tuple[float, float]:
    """``(c, s)`` with ``c*a + s*b = r`` and ``-s*a + c*b = 0``.

    The textbook construction via ``hypot`` (no overflow for large
    entries); ``b == 0`` yields the identity rotation.
    """
    if b == 0.0:
        return 1.0, 0.0
    r = float(np.hypot(a, b))
    return a / r, b / r


class UpdatableQR:
    """QR factorization of a tall matrix supporting rank-one column edits.

    Attributes
    ----------
    q:
        Explicit orthogonal factor, shape ``(m, m)``.
    r:
        Upper-triangular (in its leading ``n`` rows) factor, ``(m, n)``.
    a:
        The tracked matrix the factors currently represent; kept so the
        guarded solve can fall back to a from-scratch factorization.
    updates:
        Number of column edits absorbed since construction; a solve off
        an updated factorization is guard-stamped, one off a pristine
        factorization is not.
    """

    def __init__(self, a: np.ndarray):
        a = np.array(a, dtype=np.float64, copy=True)
        if a.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {a.shape}")
        m, n = a.shape
        if m < n:
            raise ValueError(
                f"UpdatableQR requires m >= n, got shape {a.shape}"
            )
        self.q, r_thin = qr_decompose(a, economy=False)
        self.r = r_thin
        self.a = a
        self.updates = 0

    @property
    def m(self) -> int:
        return self.q.shape[0]

    @property
    def n(self) -> int:
        return self.r.shape[1]

    # -- rotations -------------------------------------------------------
    def _rotate(self, i: int, k: int, c: float, s: float, col0: int) -> None:
        """Apply ``G(i, k)`` to rows of R (columns ``col0:``) and fold its
        transpose into the columns of Q (``A = (Q G^T)(G R)``)."""
        ri, rk = self.r[i, col0:].copy(), self.r[k, col0:].copy()
        self.r[i, col0:] = c * ri + s * rk
        self.r[k, col0:] = -s * ri + c * rk
        qi, qk = self.q[:, i].copy(), self.q[:, k].copy()
        self.q[:, i] = c * qi + s * qk
        self.q[:, k] = -s * qi + c * qk

    # -- column edits ----------------------------------------------------
    def _note_update(self) -> None:
        self.updates += 1
        get_tracer().incr("incr.qr_updates")

    def insert_column(self, j: int, column: np.ndarray) -> None:
        """Insert ``column`` so it becomes column ``j`` of the matrix."""
        self._insert_column(j, column)
        self._note_update()

    def _insert_column(self, j: int, column: np.ndarray) -> None:
        m, n = self.m, self.n
        if not 0 <= j <= n:
            raise IndexError(f"insert position {j} out of range [0, {n}]")
        if n + 1 > m:
            raise ValueError(
                f"inserting a column would make the matrix wide "
                f"({m}x{n + 1}); UpdatableQR requires m >= n"
            )
        column = np.asarray(column, dtype=np.float64)
        if column.shape != (m,):
            raise ValueError(
                f"column shape {column.shape} does not match matrix rows {m}"
            )
        w = self.q.T @ column
        r_new = np.empty((m, n + 1))
        r_new[:, :j] = self.r[:, :j]
        r_new[:, j] = w
        r_new[:, j + 1 :] = self.r[:, j:]
        self.r = r_new
        # Zero the spike below row j, bottom up; each rotation touches
        # only columns j: (everything to the left is zero in rows >= j).
        for k in range(m - 1, j, -1):
            a_, b_ = self.r[k - 1, j], self.r[k, j]
            if b_ == 0.0:
                continue
            c, s = givens_rotation(a_, b_)
            self._rotate(k - 1, k, c, s, j)
            self.r[k, j] = 0.0  # exact zero: the rotation was built for it
        self.a = np.insert(self.a, j, column, axis=1)

    def delete_column(self, j: int) -> None:
        """Remove column ``j`` of the matrix."""
        self._delete_column(j)
        self._note_update()

    def _delete_column(self, j: int) -> None:
        n = self.n
        if not 0 <= j < n:
            raise IndexError(f"column {j} out of range [0, {n})")
        self.r = np.delete(self.r, j, axis=1)
        # The trailing block is upper Hessenberg; chase the subdiagonal.
        for k in range(j, n - 1):
            a_, b_ = self.r[k, k], self.r[k + 1, k]
            if b_ == 0.0:
                continue
            c, s = givens_rotation(a_, b_)
            self._rotate(k, k + 1, c, s, k)
            self.r[k + 1, k] = 0.0
        self.a = np.delete(self.a, j, axis=1)

    def replace_column(self, j: int, column: np.ndarray) -> None:
        """Replace column ``j`` of the matrix with ``column``."""
        n = self.n
        if not 0 <= j < n:
            raise IndexError(f"column {j} out of range [0, {n})")
        self._delete_column(j)
        self._insert_column(j, column)
        self._note_update()

    # -- solves ----------------------------------------------------------
    def _solve(
        self, b: np.ndarray, rcond: float
    ) -> Tuple[np.ndarray, int, np.ndarray]:
        """Mirror of ``lstsq._qr_solve`` off the maintained factors:
        diagonal rank truncation, recursive sub-solve when deficient."""
        n = self.n
        qtb = self.q.T @ b
        r = np.triu(self.r[:n, :])
        diag = np.abs(np.diag(r))
        threshold = rcond * (diag.max() if diag.size else 0.0)
        keep = diag > threshold
        rank = int(keep.sum())
        x = np.zeros(n)
        if rank == n:
            x = solve_upper(r, qtb[:n])
        elif rank > 0:
            idx = np.flatnonzero(keep)
            sub = lstsq_qr(r[:, idx], qtb[:n], rcond=rcond)
            x[idx] = sub.x
        return x, rank, r

    def lstsq(
        self,
        b: np.ndarray,
        rcond: Optional[float] = None,
        guard: Optional["GuardConfig"] = None,
    ) -> LstsqResult:
        """Guard-certified least squares off the updated factorization.

        Semantics match :func:`~repro.linalg.lstsq.lstsq_qr` with one
        addition: when this factorization has absorbed column edits the
        result's health carries the ``incr-rank-one-update`` rung — an
        incremental answer is always identifiable as one.  A sentinel
        firing (condition estimate or rank gap past the guard
        thresholds) abandons the updated factors entirely: the solve
        re-factorizes ``self.a`` from scratch through ``lstsq_qr``
        (bit-identical to the non-incremental path) and records
        ``incr-refactorized``.
        """
        b = np.asarray(b, dtype=np.float64)
        m, n = self.m, self.n
        if b.shape != (m,):
            raise ValueError(
                f"rhs shape {b.shape} does not match matrix rows {m}"
            )
        if rcond is None:
            rcond = default_rcond(m, n)
        x, rank, r = self._solve(b, rcond)

        health = None
        if guard is not None and guard.enabled:
            from dataclasses import replace as _replace

            from repro.guard.health import triangular_health

            health = triangular_health(
                r, original=self.a, refine_iterations=guard.refine_iterations
            )
            if not health.ok(guard):
                # Sentinel fired: do not trust drifted factors near the
                # thresholds — hand the whole problem back to the
                # from-scratch guarded solve.
                get_tracer().incr("incr.qr_fallbacks")
                full = lstsq_qr(self.a, b, rcond=rcond, guard=guard)
                full_health = full.health
                if full_health is not None:
                    full_health = _replace(
                        full_health,
                        guards_fired=("incr-refactorized",)
                        + full_health.guards_fired,
                    )
                return LstsqResult(
                    x=full.x,
                    residual_norm=full.residual_norm,
                    relative_residual=full.relative_residual,
                    backward_error=full.backward_error,
                    rank=full.rank,
                    health=full_health,
                )
            if self.updates > 0:
                health = _replace(
                    health,
                    guards_fired=health.guards_fired
                    + ("incr-rank-one-update",),
                )

        resid = vector_norm(self.a @ x - b)
        b_norm = vector_norm(b)
        rel = 0.0 if b_norm == 0.0 else resid / b_norm
        bwd = backward_error(self.a, x, b)
        if health is not None:
            from dataclasses import replace as _replace

            health = _replace(health, residual_bound=bwd)
        return LstsqResult(
            x=x,
            residual_norm=resid,
            relative_residual=rel,
            backward_error=bwd,
            rank=rank,
            health=health,
        )

    def __repr__(self) -> str:
        return (
            f"UpdatableQR({self.m}x{self.n}, {self.updates} update(s))"
        )
