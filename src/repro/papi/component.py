"""PAPI-style components: named providers of raw events.

Real PAPI organizes native events into components (``perf_event`` for the
CPU core PMU, ``rocm`` for AMD GPUs, …); tools enumerate components and the
events each exposes.  Here a component wraps an event registry together
with the machine that realizes measurements, which is all the middleware
needs to service event sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.events.registry import EventRegistry

__all__ = ["Component", "ComponentTable"]


@dataclass
class Component:
    """One event provider (``cpu``, ``rocm``, …)."""

    name: str
    events: EventRegistry
    description: str = ""

    def __contains__(self, full_name: str) -> bool:
        return full_name in self.events

    def native_avail(self, prefix: Optional[str] = None) -> List[str]:
        """Enumerate native event names (the ``papi_native_avail`` view)."""
        names = self.events.full_names
        if prefix is not None:
            names = [n for n in names if n.startswith(prefix)]
        return names


class ComponentTable:
    """The set of components visible on a node."""

    def __init__(self, components: Iterable[Component] = ()):
        self._components: Dict[str, Component] = {}
        for component in components:
            self.register(component)

    def register(self, component: Component) -> None:
        if component.name in self._components:
            raise ValueError(f"component {component.name!r} already registered")
        self._components[component.name] = component

    def get(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise KeyError(
                f"component {name!r} not found; available: {sorted(self._components)}"
            ) from None

    def resolve_event(self, full_name: str) -> Component:
        """Find the component exposing an event (PAPI name resolution)."""
        for component in self._components.values():
            if full_name in component:
                return component
        raise KeyError(f"event {full_name!r} not exposed by any component")

    def __iter__(self):
        return iter(self._components.values())

    def __len__(self) -> int:
        return len(self._components)
