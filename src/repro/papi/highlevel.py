"""PAPI high-level API: region-based instrumentation over derived presets.

Real tools rarely juggle event sets by hand — they wrap code regions with
``PAPI_hl_region_begin``/``_end`` and read preset metrics.  This module
closes the reproduction's loop the same way: a :class:`HighLevelMonitor`
takes the preset table the analysis pipeline derived, resolves each
preset's native events against the node's catalog, schedules them onto the
PMU (splitting across event sets when the counter budget requires — the
paper's "far fewer physical counters than events" reality), and reports
per-region metric values.

The "workload" is anything that produces an :class:`~repro.activity.Activity`
on the node's machine; in this simulated setting that is a kernel run, and
on real hardware it would be the instrumented region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.activity import Activity
from repro.hardware.systems import MachineNode
from repro.papi.component import Component
from repro.papi.eventset import EventSet, PAPIError
from repro.papi.presets import PresetMetric, PresetTable

__all__ = ["HighLevelMonitor", "RegionReading"]


@dataclass(frozen=True)
class RegionReading:
    """Measurements for one instrumented region."""

    region: str
    metrics: Dict[str, float]
    raw: Dict[str, float]
    runs: int  # how many passes the counter budget required

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"metric {name!r} was not monitored in region {self.region!r}; "
                f"monitored: {sorted(self.metrics)}"
            ) from None


class HighLevelMonitor:
    """Region-based preset measurement on one node."""

    def __init__(self, node: MachineNode, presets: PresetTable):
        self.node = node
        self.presets = presets
        self._component = Component(name="cpu", events=node.events)
        # Resolve and validate every preset's native events up front so a
        # missing event fails at construction, not mid-measurement.
        missing = [
            (p.name, e)
            for p in presets
            for e in p.native_events
            if e not in node.events
        ]
        if missing:
            raise PAPIError(
                f"presets reference events absent from {node.events.name!r}: "
                f"{missing[:5]}"
            )

    def _fits(self, names: List[str]) -> bool:
        trial = EventSet(self._component, self.node.pmu)
        try:
            for name in names:
                trial.add_event(name)
        except PAPIError:
            return False
        return True

    def _event_groups(self, names: List[str]) -> List[List[str]]:
        """Split native events into counter-budget-sized measurement sets
        (greedy first-fit, like CAT's own scheduling)."""
        groups: List[List[str]] = []
        for name in names:
            for group in groups:
                if self._fits(group + [name]):
                    group.append(name)
                    break
            else:
                groups.append([name])
        return groups

    def measure_region(
        self,
        region: str,
        activity: Activity,
        metrics: Optional[List[str]] = None,
    ) -> RegionReading:
        """Measure the given activity under the named region.

        ``metrics`` selects presets by name (default: every preset in the
        table).  Multiple measurement passes are scheduled automatically
        when the union of native events exceeds one counter group —
        deterministic activity makes the passes coherent, exactly as CAT's
        repeated complete executions do.
        """
        selected = [
            self.presets.get(name) for name in (metrics or [p.name for p in self.presets])
        ]
        native: List[str] = []
        for preset in selected:
            for event in preset.native_events:
                if event not in native:
                    native.append(event)

        readings: Dict[str, float] = {}
        groups = self._event_groups(native)
        for group in groups:
            eventset = EventSet(self._component, self.node.pmu)
            for name in group:
                eventset.add_event(name)
            eventset.start()
            readings.update(eventset.stop(activity))

        values = {p.name: p.evaluate(readings) for p in selected}
        return RegionReading(
            region=region, metrics=values, raw=readings, runs=len(groups)
        )
