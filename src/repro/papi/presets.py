"""Preset metrics: the artifact the paper's pipeline exists to produce.

PAPI presets (``PAPI_DP_OPS``, ``PAPI_BR_MSP``, …) are named metrics defined
per architecture as scaled sums of native events.  Historically these
definitions were written by hand from vendor documentation; the paper
automates their derivation.  :class:`PresetTable` holds derived definitions
and evaluates them against event readings, closing the loop: the analysis
pipeline emits presets, and tools consume them through this table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = ["PresetMetric", "PresetTable", "PAPI_PRESET_NAMES"]

#: Conventional PAPI preset names for the metrics the paper composes.
PAPI_PRESET_NAMES: Dict[str, str] = {
    "SP Instrs.": "PAPI_SP_INS",
    "SP Ops.": "PAPI_SP_OPS",
    "DP Instrs.": "PAPI_DP_INS",
    "DP Ops.": "PAPI_DP_OPS",
    "Mispredicted Branches.": "PAPI_BR_MSP",
    "Correctly Predicted Branches.": "PAPI_BR_PRC",
    "Conditional Branches Taken.": "PAPI_BR_TKN",
    "Conditional Branches Not Taken.": "PAPI_BR_NTK",
    "Unconditional Branches.": "PAPI_BR_UCN",
    "Conditional Branches Retired.": "PAPI_BR_CN",
    "L1 Misses.": "PAPI_L1_DCM",
    "L1 Hits.": "PAPI_L1_DCH",
    "L1 Reads.": "PAPI_L1_DCR",
    "L2 Hits.": "PAPI_L2_DCH",
    "L2 Misses.": "PAPI_L2_DCM",
    "L3 Hits.": "PAPI_L3_DCH",
    "DTLB Misses.": "PAPI_TLB_DM",
}


@dataclass(frozen=True)
class PresetMetric:
    """A named metric defined as a scaled sum of native events.

    ``terms`` maps native event full names to coefficients.  ``fitness`` is
    the backward error of the least-squares fit that produced the
    definition (paper Equation 5); consumers can gate on it.
    """

    name: str
    terms: Mapping[str, float]
    fitness: float = 0.0
    description: str = ""

    def evaluate(self, readings: Mapping[str, float]) -> float:
        """Apply the definition to a set of raw-event readings."""
        missing = [e for e in self.terms if e not in readings]
        if missing:
            raise KeyError(f"readings missing events for {self.name}: {missing}")
        return float(sum(c * readings[e] for e, c in self.terms.items()))

    @property
    def native_events(self) -> List[str]:
        return list(self.terms.keys())

    def pretty(self) -> str:
        """Paper-table style rendering of the combination."""
        parts = []
        for event, coeff in self.terms.items():
            sign = "-" if coeff < 0 else "+"
            mag = abs(coeff)
            coeff_str = f"{mag:g}" if mag >= 1e-3 else f"{mag:.2e}"
            parts.append(f"{sign} {coeff_str} x {event}")
        body = " ".join(parts).lstrip("+ ")
        return f"{self.name} = {body}   (error {self.fitness:.2e})"


class PresetTable:
    """Derived preset definitions for one architecture."""

    def __init__(self, architecture: str):
        self.architecture = architecture
        self._presets: Dict[str, PresetMetric] = {}

    def define(self, preset: PresetMetric) -> None:
        self._presets[preset.name] = preset

    def get(self, name: str) -> PresetMetric:
        try:
            return self._presets[name]
        except KeyError:
            raise KeyError(
                f"preset {name!r} not defined for {self.architecture!r}; "
                f"available: {sorted(self._presets)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._presets

    def __iter__(self):
        return iter(self._presets.values())

    def __len__(self) -> int:
        return len(self._presets)

    def composable(self, max_fitness: float = 1e-3) -> List[PresetMetric]:
        """Presets whose backward error certifies a real composition."""
        return [p for p in self._presets.values() if p.fitness <= max_fitness]
