"""PAPI-style event sets: the start/stop/read measurement lifecycle.

An :class:`EventSet` collects raw events (all from one component, as PAPI
requires), validates them against the PMU's counter budget, and reads them
against the activity produced by a workload run.  This is the same
interface CAT itself uses when measuring its microkernels.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.activity import Activity
from repro.events.model import RawEvent
from repro.hardware.pmu import PMU
from repro.papi.component import Component

__all__ = ["EventSet", "EventSetState", "PAPIError"]


class PAPIError(RuntimeError):
    """Lifecycle or capacity violation (mirrors PAPI error returns)."""


class EventSetState(Enum):
    STOPPED = "stopped"
    RUNNING = "running"


class EventSet:
    """A measured group of events from a single component."""

    def __init__(self, component: Component, pmu: PMU):
        self.component = component
        self.pmu = pmu
        self._events: List[RawEvent] = []
        self.state = EventSetState.STOPPED
        self._readings: Optional[Dict[str, float]] = None

    @property
    def events(self) -> List[RawEvent]:
        return list(self._events)

    def add_event(self, full_name: str) -> None:
        """Add a native event by name; must fit a single counter group."""
        if self.state is not EventSetState.STOPPED:
            raise PAPIError("cannot add events while the event set is running")
        if full_name not in self.component:
            raise PAPIError(
                f"event {full_name!r} is not exposed by component "
                f"{self.component.name!r}"
            )
        if any(e.full_name == full_name for e in self._events):
            raise PAPIError(f"event {full_name!r} already in the set")
        candidate = self._events + [self.component.events.get(full_name)]
        if self.pmu.schedule(candidate).n_runs > 1:
            raise PAPIError(
                f"adding {full_name!r} exceeds the PMU counter budget "
                f"({self.pmu.programmable_counters} programmable counters); "
                "split events across sets/runs"
            )
        self._events.append(candidate[-1])

    def start(self) -> None:
        if self.state is EventSetState.RUNNING:
            raise PAPIError("event set is already running")
        if not self._events:
            raise PAPIError("cannot start an empty event set")
        self.state = EventSetState.RUNNING
        self._readings = None

    def stop(
        self,
        activity: Activity,
        rng_for_event: Optional[Callable[[RawEvent], Optional[np.random.Generator]]] = None,
    ) -> Dict[str, float]:
        """Stop counting against the activity of the measured region.

        The simulated machine produces the region's activity; stop() turns
        it into per-event readings through each event's response and noise
        model.  Returns the readings and caches them for :meth:`read`.
        """
        if self.state is not EventSetState.RUNNING:
            raise PAPIError("event set is not running")
        rng_for_event = rng_for_event or (lambda event: None)
        self._readings = self.pmu.read(self._events, activity, rng_for_event)
        self.state = EventSetState.STOPPED
        return dict(self._readings)

    def read(self) -> Dict[str, float]:
        """Last readings (after a stop)."""
        if self._readings is None:
            raise PAPIError("no readings available; run start/stop first")
        return dict(self._readings)

    def cleanup(self) -> None:
        """Remove all events (PAPI_cleanup_eventset)."""
        if self.state is not EventSetState.STOPPED:
            raise PAPIError("cannot clean up a running event set")
        self._events.clear()
        self._readings = None
