"""PAPI-like middleware: components, event sets, and preset metrics."""

from repro.papi.component import Component, ComponentTable
from repro.papi.eventset import EventSet, EventSetState, PAPIError
from repro.papi.highlevel import HighLevelMonitor, RegionReading
from repro.papi.presets import PAPI_PRESET_NAMES, PresetMetric, PresetTable

__all__ = [
    "Component",
    "HighLevelMonitor",
    "RegionReading",
    "ComponentTable",
    "EventSet",
    "EventSetState",
    "PAPIError",
    "PAPI_PRESET_NAMES",
    "PresetMetric",
    "PresetTable",
]
