"""In-memory incremental analysis: absorb column edits without resweeping.

:class:`IncrementalAnalysis` wraps one finished
:class:`~repro.core.pipeline.PipelineResult` and answers "the
representation of event E changed — what are the metrics now?" without
re-running selection and composition from scratch:

1. **Selection** replays the previous pivot order through
   :func:`~repro.core.qrcp.qrcp_update` — a verified replay that is
   bit-identical to from-scratch QRCP when it succeeds, and falls back
   to :func:`~repro.core.qrcp.qrcp_specialized` when the edit could
   have changed the pivots.
2. **Composition** depends on the edit's blast radius:

   * the edited event was *not selected* and the selection is unchanged
     — the metrics are untouched, zero solves run;
   * the edited event *is selected* but the selection is otherwise
     unchanged — one :meth:`UpdatableQR.replace_column` rank-one update
     absorbs the new X-hat column, and every signature re-solves off the
     shared updated factors (guard-certified, ``incr-rank-one-update``
     stamped; a firing sentinel re-factorizes, bit-identical to the
     from-scratch solve);
   * the selection changed — full recomposition via
     :func:`~repro.core.metrics.compose_metric`, exactly the pipeline's
     own path.

The session does not re-run measurement, noise filtering, or
representation — callers hand it representation-space columns (pair it
with :func:`~repro.incr.delta.measure_with_deltas` for the measurement
side).  Trust certification and coefficient rounding are pipeline-level
concerns and are not reproduced here; the session's output is the raw
guarded definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import MetricDefinition, compose_metric
from repro.core.pipeline import PipelineResult
from repro.core.qrcp import QRCPResult, qrcp_update
from repro.core.signatures import signatures_for
from repro.linalg.updates import UpdatableQR
from repro.obs import get_tracer

__all__ = ["IncrementalAnalysis", "IncrementalUpdate"]


@dataclass
class IncrementalUpdate:
    """The outcome of one absorbed column edit."""

    event: str
    #: "untouched" | "rank-one" | "recomposed"
    path: str
    selected_events: List[str]
    metrics: Dict[str, MetricDefinition]
    qrcp: QRCPResult


class IncrementalAnalysis:
    """Incremental selection + composition state for one domain."""

    def __init__(self, result: PipelineResult):
        self.domain = result.domain
        self.config = result.config
        self.signatures = signatures_for(result.domain)
        self.x_matrix = np.array(
            result.representation.x_matrix, dtype=np.float64, copy=True
        )
        self.event_names: List[str] = list(result.representation.event_names)
        self.qrcp = result.qrcp
        self.selected_events: List[str] = list(result.selected_events)
        self.metrics: Dict[str, MetricDefinition] = dict(result.metrics)
        self._qr: Optional[UpdatableQR] = None

    # ------------------------------------------------------------------
    @property
    def x_hat(self) -> np.ndarray:
        return self.x_matrix[:, self.qrcp.selected]

    def _shared_qr(self) -> UpdatableQR:
        """The shared QR over X-hat; every signature solves off it."""
        if self._qr is None:
            self._qr = UpdatableQR(self.x_hat)
        return self._qr

    def _compose_from_qr(self, qr: UpdatableQR) -> Dict[str, MetricDefinition]:
        config = self.config
        metrics: Dict[str, MetricDefinition] = {}
        for signature in self.signatures:
            solve = qr.lstsq(
                signature.coords, rcond=config.lstsq_rcond, guard=config.guard
            )
            metrics[signature.name] = MetricDefinition(
                metric=signature.name,
                event_names=tuple(self.selected_events),
                coefficients=solve.x,
                error=solve.backward_error,
                signature=signature,
                health=solve.health,
            )
        return metrics

    def _recompose(self) -> Dict[str, MetricDefinition]:
        config = self.config
        x_hat = self.x_hat
        return {
            signature.name: compose_metric(
                signature.name,
                x_hat,
                self.selected_events,
                signature,
                rcond=config.lstsq_rcond,
                guard=config.guard,
            )
            for signature in self.signatures
        }

    # ------------------------------------------------------------------
    def update_column(
        self, event_name: str, new_column: np.ndarray
    ) -> IncrementalUpdate:
        """Absorb a new representation column for ``event_name``.

        Returns the (possibly unchanged) metric definitions and records
        which path composed them; the session's state advances to the
        edited matrix either way.
        """
        try:
            j = self.event_names.index(event_name)
        except ValueError:
            raise KeyError(
                f"event {event_name!r} is not in this session's "
                f"representation ({len(self.event_names)} events)"
            ) from None
        new_column = np.asarray(new_column, dtype=np.float64)
        if new_column.shape != (self.x_matrix.shape[0],):
            raise ValueError(
                f"column shape {new_column.shape} does not match the "
                f"representation dimension {self.x_matrix.shape[0]}"
            )

        x_new = self.x_matrix.copy()
        x_new[:, j] = new_column
        previous = self.qrcp
        qrcp_new = qrcp_update(
            x_new,
            previous,
            changed_columns=[j],
            alpha=self.config.alpha,
            guard=self.config.guard,
        )
        selected_new = [self.event_names[i] for i in qrcp_new.selected]
        same_selection = list(qrcp_new.selected) == list(previous.selected)
        tracer = get_tracer()

        if same_selection and j not in set(previous.selected):
            # The edit never reached X-hat: every solve is provably
            # unchanged, so the previous definitions stand, bit for bit.
            path = "untouched"
            self.x_matrix = x_new
            self.qrcp = qrcp_new
            tracer.incr("incr.session_untouched")
        elif same_selection:
            path = "rank-one"
            # Materialize the shared QR off the *previous* X-hat before
            # advancing state, so the replacement below is the genuine
            # old-column -> new-column rank-one update.
            qr = self._shared_qr()
            self.x_matrix = x_new
            self.qrcp = qrcp_new
            pos = list(qrcp_new.selected).index(j)
            qr.replace_column(pos, x_new[:, j])
            self.selected_events = selected_new
            self.metrics = self._compose_from_qr(qr)
            tracer.incr("incr.session_rank_one")
        else:
            path = "recomposed"
            self.x_matrix = x_new
            self.qrcp = qrcp_new
            self.selected_events = selected_new
            self._qr = None
            self.metrics = self._recompose()
            tracer.incr("incr.session_recomposed")

        return IncrementalUpdate(
            event=event_name,
            path=path,
            selected_events=list(self.selected_events),
            metrics=dict(self.metrics),
            qrcp=qrcp_new,
        )
