"""Dependency-tracked catalog refresh: recompute only what an edit broke.

The full sweep rebuilds every (system, domain) analysis whenever anything
changes.  This engine inverts that: each catalog entry records the
per-event digests of the registry slice it consumed
(:attr:`~repro.serve.catalog.CatalogEntry.event_digests`), so freshness
is a pure lookup — an entry is stale exactly when the current digests of
its domain's events differ from the recorded ones.  A registry edit
therefore invalidates only the domains that measure the edited event;
every other entry is proven fresh without measuring or solving anything.

Stale domains re-run the standard :class:`~repro.core.pipeline.AnalysisPipeline`
— same configs, same guard, same composition — but over a measurement
assembled by :func:`~repro.incr.delta.measure_with_deltas`, so even a
stale domain re-measures only its changed columns.  Refreshed entries go
through :meth:`MetricCatalogStore.put`, whose content dedup means a
recompute that lands on identical bits does not grow the version history.

Running :func:`refresh_catalog` against an empty store is simply a full
build through this same code path, which is what makes the bit-identity
contract testable: refresh-after-edit must equal build-from-scratch on
the edited registry, entry content digest for entry content digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import AnalysisPipeline, DOMAIN_CONFIGS, PipelineConfig
from repro.core.signatures import signatures_for
from repro.events.registry import EventRegistry
from repro.hardware.systems import MachineNode
from repro.incr.delta import DeltaReport, measure_with_deltas
from repro.io.cache import MeasurementCache
from repro.obs import get_tracer
from repro.serve.catalog import (
    CatalogEntry,
    MetricCatalogStore,
    analysis_config_digest,
    entries_from_result,
)

__all__ = [
    "RefreshReport",
    "domain_event_digests",
    "measured_event_domains",
    "refresh_catalog",
]


def measured_event_domains(domain: str) -> Tuple[str, ...]:
    """The event domains a benchmark domain's blind sweep measures.

    Read off the benchmark classes' ``measured_domains`` attribute so
    the dependency slice is, by construction, exactly what the runner
    would select.
    """
    if domain == "cpu_flops":
        from repro.cat import CPUFlopsBenchmark as cls
    elif domain == "gpu_flops":
        from repro.cat import GPUFlopsBenchmark as cls
    elif domain == "branch":
        from repro.cat import BranchBenchmark as cls
    elif domain == "dcache":
        from repro.cat import DCacheBenchmark as cls
    elif domain == "dtlb":
        from repro.cat.dtlb import DTLBBenchmark as cls
    else:
        raise KeyError(
            f"unknown domain {domain!r}; expected one of "
            "cpu_flops, gpu_flops, branch, dcache, dtlb"
        )
    return tuple(cls.measured_domains)


def domain_event_digests(
    registry: EventRegistry, domain: str
) -> Dict[str, str]:
    """Per-event dependency digests of one benchmark domain's slice.

    This map covers *all* events the domain's sweep would measure (not
    just the ones QRCP ends up selecting): an added or edited event can
    change the noise filter, the representation set, and hence the
    selection, so the dependency set must be the whole measured slice.
    """
    return registry.select(domains=measured_event_domains(domain)).event_digests()


@dataclass
class RefreshReport:
    """What one :func:`refresh_catalog` invocation did."""

    arch: str
    seed: int
    #: (domain, metric) keys recomputed this refresh, with their stored
    #: entries (post-dedup, so ``version`` reflects the catalog's truth).
    refreshed: List[Tuple[str, str]] = field(default_factory=list)
    #: (domain, metric) keys proven fresh without recomputation.
    unchanged: List[Tuple[str, str]] = field(default_factory=list)
    entries: Dict[Tuple[str, str], CatalogEntry] = field(default_factory=dict)
    #: Per-domain measurement-reuse accounting (stale domains only).
    deltas: Dict[str, DeltaReport] = field(default_factory=dict)

    @property
    def stale_domains(self) -> List[str]:
        return sorted({domain for domain, _ in self.refreshed})

    def summary(self) -> str:
        lines = [
            f"refresh {self.arch} (seed {self.seed}): "
            f"{len(self.refreshed)} refreshed, {len(self.unchanged)} unchanged"
        ]
        for domain in self.stale_domains:
            delta = self.deltas.get(domain)
            reuse = (
                f" ({delta.reused}/{delta.total} columns reused)"
                if delta is not None
                else ""
            )
            metrics = sorted(m for d, m in self.refreshed if d == domain)
            lines.append(f"  {domain}{reuse}: {', '.join(metrics)}")
        return "\n".join(lines)


def refresh_catalog(
    store: MetricCatalogStore,
    node: MachineNode,
    domains: Sequence[str],
    *,
    registry: Optional[EventRegistry] = None,
    cache: Optional[MeasurementCache] = None,
    configs: Optional[Dict[str, PipelineConfig]] = None,
) -> RefreshReport:
    """Bring the catalog up to date with ``registry`` for ``domains``.

    ``registry`` defaults to the node's stock registry; pass the output
    of :func:`~repro.incr.registry_edit.apply_edits` to refresh against
    an edited one.  ``cache`` feeds the per-column measurement reuse
    (:func:`~repro.incr.delta.measure_with_deltas`); ``configs`` may
    override the per-domain pipeline configs (defaults to
    ``DOMAIN_CONFIGS``, digest-compatible with the metric service).

    Increments ``incr.entries_refreshed`` / ``incr.entries_unchanged``.
    """
    registry = registry if registry is not None else node.events
    full_digest = registry.content_digest()
    tracer = get_tracer()
    report = RefreshReport(arch=node.name, seed=node.seed)

    for domain in domains:
        config = (configs or {}).get(domain) or DOMAIN_CONFIGS[domain]
        config_digest = analysis_config_digest(domain, node.seed, config)
        dependencies = domain_event_digests(registry, domain)
        signatures = signatures_for(domain)

        cached = {
            signature.name: store.latest(
                node.name,
                signature.name,
                config_digest,
                # Entries with a recorded dependency map are checked
                # against it; legacy entries fall back to the coarse
                # whole-registry digest (stale on any edit, then
                # recomputed with the map — a one-refresh migration).
                events_digest=full_digest,
                event_digests=dependencies,
            )
            for signature in signatures
        }
        if all(entry is not None for entry in cached.values()):
            for name, entry in cached.items():
                report.unchanged.append((domain, name))
                report.entries[(domain, name)] = entry
            tracer.incr("incr.entries_unchanged", len(cached))
            continue

        pipeline = AnalysisPipeline.for_domain(domain, node, config=config)
        domain_registry = registry.select(
            domains=tuple(pipeline.benchmark.measured_domains)
        )
        measurement, delta = measure_with_deltas(
            node,
            pipeline.benchmark,
            events=domain_registry,
            repetitions=config.repetitions,
            cache=cache,
        )
        result = pipeline.run(measurement=measurement)
        entries = entries_from_result(
            result,
            arch=node.name,
            seed=node.seed,
            events_digest=full_digest,
            event_digests=dependencies,
        )
        for entry in entries:
            stored = store.put(entry)
            report.refreshed.append((domain, entry.metric))
            report.entries[(domain, entry.metric)] = stored
        report.deltas[domain] = delta
        tracer.incr("incr.entries_refreshed", len(entries))

    return report
