"""Registry edits: declarative, replayable changes to an event registry.

The incremental engine needs edits as *data* — a CLI invocation, a CI
job, and a benchmark all have to apply the same change and get the same
edited registry.  A :class:`RegistryEdit` names one change:

* ``remove`` — drop an event by full name;
* ``scale-response`` — multiply every response weight of an event by
  ``factor`` (the canonical "vendor errata" edit: the event now counts
  differently);
* ``set-weight`` — set one response key's weight (adding the key when
  absent, deleting it when ``weight`` is 0);
* ``add`` — register a new event (programmatically via ``new_event``,
  or from JSON via name/qualifier/domain/response fields, which builds
  a noise-free :class:`~repro.events.model.RawEvent`).

:func:`apply_edits` is pure: it returns a new
:class:`~repro.events.registry.EventRegistry` preserving catalog order
(edited events stay in place; added events append), never mutating the
input — the unedited registry remains valid for comparison runs.

:func:`load_edits` reads a JSON edit file and caches the parsed tuple by
``(path, mtime)``, so repeated CLI/service refreshes against the same
file parse it once.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.events.model import RawEvent
from repro.events.registry import EventRegistry

__all__ = ["RegistryEdit", "apply_edits", "load_edits", "parse_edits"]

_ACTIONS = ("remove", "scale-response", "set-weight", "add")


@dataclass(frozen=True)
class RegistryEdit:
    """One declarative change to an event registry."""

    action: str
    #: Full name of the targeted event (for ``add``: the new event's).
    event: str = ""
    #: Response key (``set-weight`` only).
    key: Optional[str] = None
    #: Multiplier (``scale-response`` only).
    factor: Optional[float] = None
    #: New weight (``set-weight`` only; 0 deletes the key).
    weight: Optional[float] = None
    #: The event to register (``add`` only).
    new_event: Optional[RawEvent] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown edit action {self.action!r}; expected one of "
                f"{_ACTIONS}"
            )
        if self.action == "add":
            if self.new_event is None:
                raise ValueError("an 'add' edit needs new_event")
        elif not self.event:
            raise ValueError(f"a {self.action!r} edit needs a target event")
        if self.action == "scale-response" and self.factor is None:
            raise ValueError("a 'scale-response' edit needs factor")
        if self.action == "set-weight" and (
            self.key is None or self.weight is None
        ):
            raise ValueError("a 'set-weight' edit needs key and weight")

    def describe(self) -> str:
        if self.action == "remove":
            return f"remove {self.event}"
        if self.action == "scale-response":
            return f"scale {self.event} response x{self.factor:g}"
        if self.action == "set-weight":
            return f"set {self.event}[{self.key}] = {self.weight:g}"
        return f"add {self.new_event.full_name}"


def _edit_event(event: RawEvent, edit: RegistryEdit) -> RawEvent:
    response = dict(event.response)
    if edit.action == "scale-response":
        response = {k: w * float(edit.factor) for k, w in response.items()}
    else:  # set-weight
        if edit.weight == 0.0:
            response.pop(edit.key, None)
        else:
            response[edit.key] = float(edit.weight)
    return dataclasses.replace(event, response=response)


def apply_edits(
    registry: EventRegistry, edits: Iterable[RegistryEdit]
) -> EventRegistry:
    """A new registry with every edit applied, catalog order preserved.

    Targeting an event the registry does not have is an error (a typo'd
    edit silently doing nothing would defeat the whole point of the
    refresh machinery).
    """
    events: List[RawEvent] = list(registry)
    index: Dict[str, int] = {e.full_name: i for i, e in enumerate(events)}

    def _position(edit: RegistryEdit) -> int:
        pos = index.get(edit.event)
        if pos is None:
            raise KeyError(
                f"edit {edit.describe()!r} targets an event not in "
                f"registry {registry.name!r}"
            )
        return pos

    for edit in edits:
        if edit.action == "add":
            name = edit.new_event.full_name
            if name in index:
                raise ValueError(
                    f"edit 'add {name}' duplicates an existing event"
                )
            index[name] = len(events)
            events.append(edit.new_event)
        elif edit.action == "remove":
            pos = _position(edit)
            events.pop(pos)
            index = {e.full_name: i for i, e in enumerate(events)}
        else:
            pos = _position(edit)
            events[pos] = _edit_event(events[pos], edit)

    label = f"{registry.name}[edited]" if registry.name else "[edited]"
    return EventRegistry(events, name=label)


def parse_edits(payload: Sequence[dict]) -> Tuple[RegistryEdit, ...]:
    """Edits from their JSON form (a list of action dicts)."""
    if not isinstance(payload, (list, tuple)):
        raise ValueError("an edit file must hold a JSON list of edits")
    edits = []
    for i, item in enumerate(payload):
        if not isinstance(item, dict) or "action" not in item:
            raise ValueError(f"edit #{i} is not an action dict: {item!r}")
        action = item["action"]
        if action == "add":
            new_event = RawEvent(
                name=item["name"],
                qualifier=item.get("qualifier", ""),
                domain=item.get("domain", "other"),
                response={
                    k: float(v) for k, v in item.get("response", {}).items()
                },
                description=item.get("description", ""),
                device=item.get("device"),
            )
            edits.append(RegistryEdit(action="add", new_event=new_event))
            continue
        edits.append(
            RegistryEdit(
                action=action,
                event=item.get("event", ""),
                key=item.get("key"),
                factor=item.get("factor"),
                weight=item.get("weight"),
            )
        )
    return tuple(edits)


_EDITS_CACHE: Dict[str, Tuple[float, Tuple[RegistryEdit, ...]]] = {}


def load_edits(path: Union[str, Path]) -> Tuple[RegistryEdit, ...]:
    """Parse a JSON edit file, cached by ``(path, mtime)``."""
    path = Path(path)
    mtime = path.stat().st_mtime
    cached = _EDITS_CACHE.get(str(path))
    if cached is not None and cached[0] == mtime:
        return cached[1]
    edits = parse_edits(json.loads(path.read_text()))
    _EDITS_CACHE[str(path)] = (mtime, edits)
    return edits
