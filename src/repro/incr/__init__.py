"""Incremental recomputation: update, don't re-run.

The pipeline is deterministic and content-addressed end to end, which
makes minimal recomputation a bookkeeping problem rather than a
numerical gamble.  This package turns a registry or config edit into
the smallest recompute that provably reproduces a from-scratch run:

* :mod:`repro.incr.delta` — per-column measurement reuse: only events
  whose content digest changed are re-measured; the matrix is assembled
  from cached columns plus the delta run, bit-identical to a full sweep.
* :mod:`repro.incr.registry_edit` — declarative, replayable registry
  edits (remove / scale-response / set-weight / add) with mtime-cached
  JSON loading for the CLI and CI.
* :mod:`repro.incr.engine` — dependency-tracked catalog refresh: each
  entry records the digests of the events it consumed, so a refresh
  recomputes only the (arch, metric) entries an edit actually feeds
  (``repro-cat catalog refresh`` is the CLI verb on top).
* :mod:`repro.incr.session` — in-memory incremental selection and
  composition: verified QRCP pivot replay plus rank-one
  :class:`~repro.linalg.updates.UpdatableQR` updates of the shared
  X-hat factorization, guard-certified with bit-identical fallback.

Counters (``repro.obs``): ``incr.columns_reused`` /
``incr.columns_measured`` (delta measurement), ``incr.qr_updates`` /
``incr.qr_replays`` / ``incr.qr_fallbacks`` (linear algebra),
``incr.entries_refreshed`` / ``incr.entries_unchanged`` (catalog
refresh), ``incr.session_*`` (session paths).
"""

from repro.incr.delta import (
    DeltaReport,
    column_key,
    default_column_cache,
    measure_with_deltas,
)
from repro.incr.engine import (
    RefreshReport,
    domain_event_digests,
    measured_event_domains,
    refresh_catalog,
)
from repro.incr.registry_edit import (
    RegistryEdit,
    apply_edits,
    load_edits,
    parse_edits,
)
from repro.incr.session import IncrementalAnalysis, IncrementalUpdate

__all__ = [
    "DeltaReport",
    "IncrementalAnalysis",
    "IncrementalUpdate",
    "RefreshReport",
    "RegistryEdit",
    "apply_edits",
    "column_key",
    "default_column_cache",
    "domain_event_digests",
    "load_edits",
    "measure_with_deltas",
    "measured_event_domains",
    "parse_edits",
    "refresh_catalog",
]
