"""Delta-keyed measurement reuse: re-measure only the changed columns.

Measuring is the expensive stage of a pipeline run, yet a registry edit
changes the measured data of exactly the edited events — every other
column of the ``(repetitions, threads, rows, events)`` array is, by the
substrate's reproducibility contract, bit-identical to the previous
sweep's.  The runner consumes each event's noise stream independently
(seeded by ``(node seed, event-name CRC)`` and drawn in (rep, thread,
row) order), environment noise is salted per event, and true counts are
per-column functionals of the shared activity — so a column measured as
part of *any* event subset equals the same column of the full sweep,
bit for bit.  That makes the column the natural unit of caching.

:func:`column_key` derives a content address for one event's column from
the same lineage coordinates as :func:`repro.io.cache.measurement_cache_key`
— node fingerprint, benchmark fingerprint, the *single event's* content
digest, repetition count — so an edited event misses (its content digest
changed), an added event misses (never stored), a removed event simply
stops being asked for, and everything else hits.

:func:`measure_with_deltas` assembles a full measurement set from cached
columns plus one benchmark run over only the missing events, and returns
it with a :class:`DeltaReport`.  The assembled set is bit-identical to a
from-scratch ``BenchmarkRunner.run`` over the same registry (property
tested), including the PMU scheduling metadata, which is recomputed for
the full event set (how many hardware runs a real sweep would need does
depend on the co-scheduled set, so per-column caching cannot reuse it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cat.measurement import MeasurementSet
from repro.cat.runner import BenchmarkRunner, CATBenchmark
from repro.events.model import RawEvent
from repro.events.registry import EventRegistry
from repro.hardware.systems import MachineNode
from repro.io.cache import (
    MeasurementCache,
    _benchmark_fingerprint,
    _node_fingerprint,
    event_set_digest,
)
from repro.io.digest import json_digest
from repro.obs import get_tracer

__all__ = [
    "DeltaReport",
    "column_key",
    "default_column_cache",
    "measure_with_deltas",
]


def column_key(
    node: MachineNode,
    benchmark: CATBenchmark,
    event: RawEvent,
    repetitions: int,
) -> str:
    """Content address of one event's measurement column.

    Covers everything the column's bits depend on: the node (seed,
    machine geometry, PMU budget), the benchmark configuration, the
    event's own content (name, response weights, noise model), and the
    repetition count.  Deliberately *not* the rest of the registry —
    per-event noise streams make columns independent of their
    co-measured set, which is what lets an unrelated registry edit keep
    this column's cache entry valid.
    """
    payload = {
        "node": _node_fingerprint(node),
        "benchmark": _benchmark_fingerprint(benchmark),
        "event": event_set_digest([event]),
        "repetitions": repetitions,
        "column": True,
    }
    return json_digest(payload)


@dataclass(frozen=True)
class DeltaReport:
    """Accounting of one delta-assembled measurement."""

    total: int
    reused: int
    measured: int
    measured_events: Tuple[str, ...] = ()

    @property
    def full_run(self) -> bool:
        """True when nothing was reusable (a cold cache or a new node)."""
        return self.reused == 0


_COLUMN_CACHE: Optional[MeasurementCache] = None


def default_column_cache() -> MeasurementCache:
    """Process-wide cache sized for per-column entries.

    The whole-set default cache keeps 32 entries — fine for ~10 sweep
    measurements, hopeless for ~300 single-event columns, which would
    thrash the LRU on every assembly.  Column entries are two orders of
    magnitude smaller, so a much larger capacity costs the same memory.
    """
    global _COLUMN_CACHE
    if _COLUMN_CACHE is None:
        _COLUMN_CACHE = MeasurementCache(max_memory_entries=4096)
    return _COLUMN_CACHE


def measure_with_deltas(
    node: MachineNode,
    benchmark: CATBenchmark,
    events: Optional[EventRegistry] = None,
    repetitions: int = 5,
    cache: Optional[MeasurementCache] = None,
) -> Tuple[MeasurementSet, DeltaReport]:
    """Measure ``benchmark``, reusing every column whose key hits.

    Missing columns are measured in *one* benchmark run over the
    sub-registry of missing events and stored back per column.  Returns
    the assembled measurement (bit-identical to a from-scratch run over
    the full registry) plus the reuse accounting; increments the
    ``incr.columns_reused`` / ``incr.columns_measured`` counters.
    """
    registry = (
        events
        if events is not None
        else node.events.select(domains=tuple(benchmark.measured_domains))
    )
    if cache is None:
        cache = default_column_cache()
    event_list = list(registry)
    if not event_list:
        raise ValueError(f"no events selected for benchmark {benchmark.name!r}")

    keys = [column_key(node, benchmark, e, repetitions) for e in event_list]
    columns = [cache.get(k) for k in keys]
    missing = [i for i, col in enumerate(columns) if col is None]

    measured_names: Tuple[str, ...] = ()
    if missing:
        missing_set = {event_list[i].full_name for i in missing}
        sub_registry = registry.select(
            predicate=lambda e: e.full_name in missing_set
        )
        runner = BenchmarkRunner(node, repetitions=repetitions)
        fresh = runner.run(benchmark, events=sub_registry)
        for i in missing:
            name = event_list[i].full_name
            piece = fresh.select_events([name])
            # pmu_runs is scheduling metadata of the co-measured set, not
            # a property of the column; strip it so a column's cache entry
            # is independent of which delta run produced it.
            column = MeasurementSet(
                benchmark=piece.benchmark,
                row_labels=list(piece.row_labels),
                event_names=list(piece.event_names),
                data=piece.data,
                pmu_runs=None,
            )
            cache.put(keys[i], column)
            columns[i] = column
        measured_names = tuple(event_list[i].full_name for i in missing)

    reused = len(event_list) - len(missing)
    tracer = get_tracer()
    if reused:
        tracer.incr("incr.columns_reused", reused)
    if missing:
        tracer.incr("incr.columns_measured", len(missing))

    data = np.concatenate([col.data for col in columns], axis=3)
    assembled = MeasurementSet(
        benchmark=benchmark.name,
        row_labels=benchmark.row_labels(),
        event_names=[e.full_name for e in event_list],
        data=data,
        pmu_runs=node.pmu.schedule(event_list).n_runs,
    )
    report = DeltaReport(
        total=len(event_list),
        reused=reused,
        measured=len(missing),
        measured_events=measured_names,
    )
    return assembled, report
