"""Typed model of externally collected counter data.

Everything the ingestion layer hands downstream is built from two small
types: a :class:`CounterReading` (one event's value in one collection,
with its quality) and a :class:`CounterSample` (one complete collection —
one ``perf stat`` run, or one ``-I`` interval).  The quality vocabulary
is deliberately tiny and closed:

* ``ok`` — the counter ran for the whole measurement.
* ``multiplexed`` — the PMU time-sliced the counter and the collector
  *already scaled* the value to the full run (perf prints the enabled
  percentage it scaled by).  Ingestion keeps the value exactly as
  reported and surfaces the flag — it never rescales, because a scaled
  estimate silently entering a composed metric is precisely the failure
  mode Röhl et al. document.
* ``not_counted`` — the counter never ran (``<not counted>``); the value
  is a typed zero, not a measurement.
* ``not_supported`` — the event does not exist on this machine
  (``<not supported>``); likewise a typed zero.

Parse failures raise :class:`IngestParseError`, which names the file,
the 1-based line, and the 1-based character column of the offending
token — the CLI maps it to exit status 2 (usage/validation), the same
status as a bad flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "CounterReading",
    "CounterSample",
    "IngestError",
    "IngestParseError",
    "QUALITIES",
    "QUALITY_MULTIPLEXED",
    "QUALITY_NOT_COUNTED",
    "QUALITY_NOT_SUPPORTED",
    "QUALITY_OK",
]

QUALITY_OK = "ok"
QUALITY_MULTIPLEXED = "multiplexed"
QUALITY_NOT_COUNTED = "not_counted"
QUALITY_NOT_SUPPORTED = "not_supported"

#: The closed quality vocabulary, in severity order.
QUALITIES = (
    QUALITY_OK,
    QUALITY_MULTIPLEXED,
    QUALITY_NOT_COUNTED,
    QUALITY_NOT_SUPPORTED,
)


class IngestError(ValueError):
    """Malformed or inconsistent ingestion input (CLI exit status 2)."""


class IngestParseError(IngestError):
    """A parse failure that can name its exact source location."""

    def __init__(
        self,
        reason: str,
        source: str = "<string>",
        line: Optional[int] = None,
        column: Optional[int] = None,
    ):
        self.reason = reason
        self.source = source
        self.line = line
        self.column = column
        where = source
        if line is not None:
            where += f":{line}"
            if column is not None:
                where += f":{column}"
        super().__init__(f"{where}: {reason}")


@dataclass(frozen=True)
class CounterReading:
    """One event's reading in one collection.

    ``value`` is exactly what the collector reported (for a multiplexed
    counter that is perf's *scaled* estimate); ``scale_pct`` is the
    multiplex enabled-percentage when the collector printed one (100.0
    for an un-multiplexed counter, ``None`` when the format carries no
    percentage).  ``<not counted>`` / ``<not supported>`` readings carry
    value 0.0 with the matching quality.
    """

    event: str
    value: float
    quality: str = QUALITY_OK
    scale_pct: Optional[float] = None

    def __post_init__(self) -> None:
        if self.quality not in QUALITIES:
            raise ValueError(
                f"unknown reading quality {self.quality!r}; "
                f"expected one of {', '.join(QUALITIES)}"
            )


@dataclass
class CounterSample:
    """One complete collection: every event read together, once.

    A plain ``perf stat`` run (human or ``-x,`` CSV) is one sample; an
    interval-mode (``-I``) run is one sample per distinct interval
    timestamp; a PAPI CSV matrix row is one sample of one kernel row.
    """

    source: str
    format: str
    readings: List[CounterReading] = field(default_factory=list)
    #: Interval timestamp in seconds for ``-I`` samples, else None.
    interval: Optional[float] = None

    @property
    def event_names(self) -> Tuple[str, ...]:
        return tuple(r.event for r in self.readings)

    def reading(self, event: str) -> CounterReading:
        for r in self.readings:
            if r.event == event:
                return r
        raise KeyError(f"event {event!r} not in sample from {self.source}")
