"""Parser and canonical serializer for PAPI/CAT CSV matrices.

A PAPI collection is one CSV file holding the *whole* measurement: a
header row naming the kernel-row and repetition columns followed by one
event name per remaining column, then one line per (kernel row,
repetition) with that collection's readings::

    row,repetition,PAPI_BR_INS,EX_RET_BRN_TKN,...
    k01_alternating,0,2.0,1.5,...
    k01_alternating,1,2.0,1.5,...

Cells are plain floats; ``<not counted>`` / ``<not supported>`` are
accepted in a cell and become typed zero readings, exactly as in the
perf formats.  (PAPI has no multiplex percentage column — the CAT
harness pins one event group per run — so PAPI readings are never
``multiplexed``.)

The canonical serializer renders values via ``repr`` and is a fixpoint
of ``serialize ∘ parse`` (property-tested alongside the perf formats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.ingest.model import (
    QUALITY_NOT_COUNTED,
    QUALITY_NOT_SUPPORTED,
    QUALITY_OK,
    CounterReading,
    CounterSample,
    IngestParseError,
)

__all__ = ["PapiMatrix", "PapiRecord", "parse_papi_csv", "serialize_papi_csv"]

_NOT_COUNTED = "<not counted>"
_NOT_SUPPORTED = "<not supported>"


@dataclass
class PapiRecord:
    """One (kernel row, repetition) collection of a PAPI matrix."""

    row: str
    repetition: int
    sample: CounterSample


@dataclass
class PapiMatrix:
    """A parsed PAPI CSV file: column order and all records."""

    source: str
    event_names: Tuple[str, ...]
    records: List[PapiRecord]

    @property
    def row_labels(self) -> Tuple[str, ...]:
        """Kernel rows in first-seen file order."""
        seen: List[str] = []
        for record in self.records:
            if record.row not in seen:
                seen.append(record.row)
        return tuple(seen)


def _field_column(fields: Sequence[str], index: int) -> int:
    return sum(len(f) + 1 for f in fields[:index]) + 1


def parse_papi_csv(text: str, source: str = "<string>") -> PapiMatrix:
    """Parse one PAPI/CAT CSV matrix file."""
    lines = [
        (no, line)
        for no, line in enumerate(text.splitlines(), start=1)
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not lines:
        raise IngestParseError("empty PAPI CSV", source)
    header_no, header = lines[0]
    head_fields = header.split(",")
    if len(head_fields) < 3 or [f.strip() for f in head_fields[:2]] != [
        "row",
        "repetition",
    ]:
        raise IngestParseError(
            "PAPI CSV header must start 'row,repetition,<event>,...'",
            source,
            header_no,
            1,
        )
    events = tuple(f.strip() for f in head_fields[2:])
    for i, event in enumerate(events):
        if not event:
            raise IngestParseError(
                "empty event name in PAPI CSV header",
                source,
                header_no,
                _field_column(head_fields, i + 2),
            )

    records: List[PapiRecord] = []
    seen_keys = set()
    for line_no, line in lines[1:]:
        fields = line.split(",")
        if len(fields) != len(head_fields):
            raise IngestParseError(
                f"expected {len(head_fields)} fields (per the header), "
                f"got {len(fields)}",
                source,
                line_no,
                len(line) + 1,
            )
        row = fields[0].strip()
        try:
            repetition = int(fields[1])
        except ValueError:
            raise IngestParseError(
                f"unreadable repetition index {fields[1]!r}",
                source,
                line_no,
                _field_column(fields, 1),
            ) from None
        key = (row, repetition)
        if key in seen_keys:
            raise IngestParseError(
                f"duplicate (row, repetition) = {key!r}",
                source,
                line_no,
                1,
            )
        seen_keys.add(key)
        sample = CounterSample(source=source, format="papi-csv")
        for i, (event, cell) in enumerate(zip(events, fields[2:])):
            cell = cell.strip()
            if cell == _NOT_COUNTED:
                value, quality = 0.0, QUALITY_NOT_COUNTED
            elif cell == _NOT_SUPPORTED:
                value, quality = 0.0, QUALITY_NOT_SUPPORTED
            else:
                try:
                    value, quality = float(cell), QUALITY_OK
                except ValueError:
                    raise IngestParseError(
                        f"unreadable counter value {cell!r} for {event}",
                        source,
                        line_no,
                        _field_column(fields, i + 2),
                    ) from None
            sample.readings.append(
                CounterReading(event=event, value=value, quality=quality)
            )
        records.append(PapiRecord(row=row, repetition=repetition, sample=sample))
    if not records:
        raise IngestParseError("PAPI CSV has a header but no data rows", source)
    return PapiMatrix(source=source, event_names=events, records=records)


def serialize_papi_csv(matrix: PapiMatrix) -> str:
    """Canonical text of a PAPI matrix (``repr`` floats, header first)."""
    lines = ["row,repetition," + ",".join(matrix.event_names)]
    for record in matrix.records:
        cells = []
        for reading in record.sample.readings:
            if reading.quality == QUALITY_NOT_COUNTED:
                cells.append(_NOT_COUNTED)
            elif reading.quality == QUALITY_NOT_SUPPORTED:
                cells.append(_NOT_SUPPORTED)
            else:
                cells.append(repr(reading.value))
        lines.append(f"{record.row},{record.repetition}," + ",".join(cells))
    return "\n".join(lines) + "\n"
