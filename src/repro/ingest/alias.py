"""Per-microarchitecture event aliasing: collector names onto the registry.

Collectors and registries never agree on names.  ``perf`` spells Intel
events ``br_inst_retired.all_branches``, exposes generic software names
like ``branch-misses``, and PAPI overlays its own preset vocabulary
(``PAPI_BR_INS``) — while the :class:`~repro.events.registry.EventRegistry`
speaks PAPI-native full names (``BR_INST_RETIRED:ALL_BRANCHES``).  This
module owns the translation, ``KEY_EVENT_MAPPINGS``-style: one explicit
table per microarchitecture family, consulted between an exact-name
check and a mechanical normalization fallback.

Resolution order, per collector name:

1. **Exact** — the name is already a registry full name.
2. **Alias table** — the family's explicit ``KEY_EVENT_MAPPINGS`` row
   (generic perf names, PAPI presets, known vendor respellings).
3. **Normalization** — uppercase with ``.`` → ``:`` (the mechanical
   perf↔PAPI respelling: ``br_inst_retired.cond`` →
   ``BR_INST_RETIRED:COND``), accepted only if the result is a
   registry member.
4. Otherwise the name is **unmapped**: reported explicitly and dropped,
   never guessed at.

Families: the Intel client/server line (``skylake``, ``icelake``,
``sapphire``) resolves onto the Sapphire Rapids registry — the only
Intel registry this reproduction carries; the shared generics make the
older uarches ingestable against it, with per-uarch rows diverging only
where the vendors renamed an event.  ``zen3`` resolves onto the Zen 3
registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.events.catalogs import sapphire_rapids_events, zen3_events
from repro.events.registry import EventRegistry
from repro.ingest.model import IngestError

__all__ = [
    "KEY_EVENT_MAPPINGS",
    "AliasResolution",
    "normalize_event_name",
    "registry_for_family",
    "resolve_events",
    "resolve_uarch",
]

#: Generic names every Intel family shares (perf software aliases and
#: PAPI presets); per-family tables below extend/override these.
_INTEL_COMMON: Dict[str, str] = {
    "branches": "BR_INST_RETIRED:ALL_BRANCHES",
    "branch-instructions": "BR_INST_RETIRED:ALL_BRANCHES",
    "branch-misses": "BR_MISP_RETIRED",
    "cycles": "CPU_CLK_UNHALTED:THREAD",
    "cpu-cycles": "CPU_CLK_UNHALTED:THREAD",
    "ref-cycles": "CPU_CLK_UNHALTED:REF_TSC",
    "L1-dcache-load-misses": "MEM_LOAD_RETIRED:L1_MISS",
    "L1-dcache-loads": "MEM_INST_RETIRED:ALL_LOADS",
    "LLC-load-misses": "MEM_LOAD_RETIRED:L3_MISS",
    "PAPI_BR_INS": "BR_INST_RETIRED:ALL_BRANCHES",
    "PAPI_BR_MSP": "BR_MISP_RETIRED",
    "PAPI_BR_CN": "BR_INST_RETIRED:COND",
    "PAPI_BR_TKN": "BR_INST_RETIRED:COND_TAKEN",
    "PAPI_BR_NTK": "BR_INST_RETIRED:COND_NTAKEN",
    "PAPI_L1_DCM": "MEM_LOAD_RETIRED:L1_MISS",
    "PAPI_L2_DCM": "MEM_LOAD_RETIRED:L2_MISS",
}

#: Explicit per-family alias tables (collector name -> registry name).
KEY_EVENT_MAPPINGS: Dict[str, Dict[str, str]] = {
    # Pre-SPR Intel spells the conditional-branch events br_inst_retired
    # .conditional / .not_taken; SPR renamed them .cond / .cond_ntaken.
    "skylake": {
        **_INTEL_COMMON,
        "br_inst_retired.conditional": "BR_INST_RETIRED:COND",
        "br_inst_retired.not_taken": "BR_INST_RETIRED:COND_NTAKEN",
        "br_misp_retired.conditional": "BR_MISP_RETIRED:COND",
    },
    "icelake": {
        **_INTEL_COMMON,
        "br_inst_retired.conditional": "BR_INST_RETIRED:COND",
        "br_inst_retired.not_taken": "BR_INST_RETIRED:COND_NTAKEN",
        "br_misp_retired.conditional": "BR_MISP_RETIRED:COND",
    },
    "sapphire": dict(_INTEL_COMMON),
    "zen3": {
        "branches": "EX_RET_BRN",
        "branch-instructions": "EX_RET_BRN",
        "branch-misses": "EX_RET_BRN_MISP",
        "cycles": "LS_NOT_HALTED_CYC",
        "cpu-cycles": "LS_NOT_HALTED_CYC",
        "instructions": "EX_RET_INSTR",
        "PAPI_BR_INS": "EX_RET_BRN",
        "PAPI_BR_MSP": "EX_RET_BRN_MISP",
        "PAPI_BR_CN": "EX_RET_COND",
        "PAPI_BR_TKN": "EX_RET_BRN_TKN",
        "PAPI_BR_UCN": "EX_RET_UNCOND_BRNCH_INSTR",
        # perf's AMD naming keeps the vendor mnemonics but lowercases
        # them; normalization handles the plain ones, these carry the
        # respellings normalization cannot.
        "ex_ret_brn_tkn_misp.all": "EX_RET_BRN_TKN_MISP",
        "ex_ret_cond_misp.all": "EX_RET_COND_MISP",
    },
}

#: Substring predicates mapping a reported uarch string onto a family
#: (the pmu-tools detection idiom: match model names, not exact strings).
_FAMILY_PATTERNS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("sapphire", ("sapphire", "spr", "emerald", "granite")),
    ("icelake", ("icelake", "icl", "icx", "tigerlake", "rocketlake")),
    ("skylake", ("skylake", "skl", "skx", "cascade", "cooper", "kaby", "coffee")),
    ("zen3", ("zen3", "zen 3", "milan", "trento", "vermeer", "cezanne")),
)

#: Which event registry each family resolves onto.
_FAMILY_REGISTRY = {
    "sapphire": sapphire_rapids_events,
    "icelake": sapphire_rapids_events,
    "skylake": sapphire_rapids_events,
    "zen3": zen3_events,
}


def resolve_uarch(uarch: str) -> str:
    """The alias family of a reported microarchitecture string."""
    lowered = uarch.strip().lower()
    if not lowered:
        raise IngestError("empty uarch name")
    for family, patterns in _FAMILY_PATTERNS:
        if any(pattern in lowered for pattern in patterns):
            return family
    raise IngestError(
        f"unknown uarch {uarch!r}; known families: "
        + ", ".join(sorted(KEY_EVENT_MAPPINGS))
    )


def registry_for_family(family: str) -> EventRegistry:
    """The event registry a family's collector names resolve onto."""
    try:
        return _FAMILY_REGISTRY[family]()
    except KeyError:
        raise IngestError(
            f"unknown uarch family {family!r}; known: "
            + ", ".join(sorted(_FAMILY_REGISTRY))
        ) from None


def normalize_event_name(name: str) -> str:
    """The mechanical perf -> PAPI-native respelling (step 3)."""
    return name.upper().replace(".", ":")


@dataclass(frozen=True)
class AliasResolution:
    """Outcome of resolving one collection's event names."""

    uarch: str
    family: str
    registry: EventRegistry
    #: collector name -> registry full name, in input order.
    mapped: Dict[str, str]
    #: Collector names nothing resolved, in input order (reported, dropped).
    unmapped: Tuple[str, ...]

    def registry_names(self) -> List[str]:
        """The mapped registry names, in registry catalog order — the
        deterministic column order ingestion assembles matrices in (QRCP
        pivot tie-breaking relies on catalog order, so ingested and
        simulated runs must agree on it)."""
        targets = set(self.mapped.values())
        return [n for n in self.registry.full_names if n in targets]

    def collector_name(self, registry_name: str) -> str:
        """The (first) collector spelling that resolved onto a registry
        name — for reports that must speak the collector's language."""
        for collector, target in self.mapped.items():
            if target == registry_name:
                return collector
        raise KeyError(registry_name)


def resolve_events(names: Iterable[str], uarch: str) -> AliasResolution:
    """Resolve collector event names for ``uarch`` (see module docs).

    Two collector spellings of the *same* registry event in one
    collection (say ``branch-misses`` and ``br_misp_retired``) are an
    error — merging them would silently average two readings of one
    counter.
    """
    family = resolve_uarch(uarch)
    registry = registry_for_family(family)
    table = KEY_EVENT_MAPPINGS[family]
    mapped: Dict[str, str] = {}
    unmapped: List[str] = []
    claimed: Dict[str, str] = {}
    for name in names:
        if name in mapped or name in unmapped:
            raise IngestError(f"duplicate collector event {name!r}")
        if name in registry:
            target = name
        elif name in table:
            target = table[name]
        else:
            normalized = normalize_event_name(name)
            target = normalized if normalized in registry else None
        if target is None:
            unmapped.append(name)
            continue
        if target in claimed:
            raise IngestError(
                f"collector events {claimed[target]!r} and {name!r} both "
                f"resolve to registry event {target!r}"
            )
        claimed[target] = name
        mapped[name] = target
    return AliasResolution(
        uarch=uarch,
        family=family,
        registry=registry,
        mapped=mapped,
        unmapped=tuple(unmapped),
    )
