"""Assembly: parsed counter samples -> one bit-stable ``MeasurementSet``.

The manifest is the unit of ingestion: one JSON file describing where a
collection came from and how its files fit together::

    {
      "collector": "perf",
      "uarch": "sapphire_rapids",
      "domain": "branch",
      "arch": "spr-ingest",                  // optional catalog arch name
      "rows": {
        "k01_alternating": [["g0/k01.csv"], ["g1/r0.csv", "g1/r1.csv"]],
        ...
      },
      "baseline": ["baseline.txt"]           // optional calibration run
    }

    { "collector": "papi", "uarch": "zen3", "domain": "branch",
      "matrix": "matrix.csv" }

All paths are relative to the manifest's directory.  For the perf
collector each kernel row lists its *event groups* — a PMU cannot read
every event at once, so a real collection runs one ``perf stat`` per
group per repetition.  Within a group the listed files' samples
concatenate into the repetition sequence (one interval file with R
intervals, or R single-shot files); groups then merge index-wise, so
repetition *i* of the row is the union of every group's *i*-th sample.
One event appearing in two groups of the same row is an error: two
independent readings of one counter cannot be merged honestly.

Assembly order is deterministic end to end: kernel rows follow the
domain basis, event columns follow the registry catalog (the QRCP
tie-break order), and every consumed file is digested into the bundle's
provenance — two assemblies of the same files are bit-identical.

Baseline calibration: the manifest's ``baseline`` files are parsed like
any sample and averaged per event; the per-event baseline mean is
subtracted from every matrix cell of that event, floored at zero (the
``perf_analyzer`` subtraction idiom — remove the harness's fixed
overhead, never go negative).  Typed zeros (``not_counted`` /
``not_supported``) stay zero through calibration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cat.measurement import MeasurementSet
from repro.core.basis import (
    ExpectationBasis,
    branch_basis,
    cpu_flops_basis,
    gpu_flops_basis,
)
from repro.ingest.alias import AliasResolution, resolve_events
from repro.ingest.model import (
    QUALITY_OK,
    CounterSample,
    IngestError,
)
from repro.ingest.papi import parse_papi_csv
from repro.ingest.perf import parse_perf
from repro.io.digest import file_digest

__all__ = [
    "INGEST_DOMAINS",
    "IngestBundle",
    "IngestManifest",
    "assemble",
    "ingest_basis",
    "load_manifest",
]

#: Domains ingestable from external data: their expectation bases are
#: fixed by the paper's kernel definitions, not by a simulated machine's
#: cache geometry (which external hardware would not share anyway).
INGEST_DOMAINS: Dict[str, object] = {
    "branch": branch_basis,
    "cpu_flops": cpu_flops_basis,
    "gpu_flops": gpu_flops_basis,
}


def ingest_basis(domain: str) -> ExpectationBasis:
    """The expectation basis external data for ``domain`` must cover."""
    try:
        factory = INGEST_DOMAINS[domain]
    except KeyError:
        raise IngestError(
            f"domain {domain!r} is not ingestable from external data; "
            f"supported: {', '.join(sorted(INGEST_DOMAINS))} (cache-family "
            f"domains derive their kernel rows from the measured machine's "
            f"geometry)"
        ) from None
    return factory()


@dataclass
class IngestManifest:
    """One validated ingestion manifest."""

    path: Path
    collector: str
    uarch: str
    domain: str
    arch: str
    #: Perf collector: row label -> list of groups, each a list of
    #: relative file paths.  Empty for the papi collector.
    rows: Dict[str, List[List[str]]] = field(default_factory=dict)
    baseline: List[str] = field(default_factory=list)
    #: PAPI collector: the relative matrix path.  None for perf.
    matrix: Optional[str] = None

    @property
    def directory(self) -> Path:
        return self.path.parent

    def resolve(self, relative: str) -> Path:
        return self.directory / relative


def load_manifest(path) -> IngestManifest:
    """Load and validate an ingestion manifest (schema errors are
    :class:`IngestError` — the CLI's exit-2 class)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise IngestError(f"{path}: cannot read manifest: {exc}") from None
    except ValueError as exc:
        raise IngestError(f"{path}: manifest is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise IngestError(f"{path}: manifest must be a JSON object")

    def require(key: str) -> object:
        if key not in payload:
            raise IngestError(f"{path}: manifest is missing {key!r}")
        return payload[key]

    collector = require("collector")
    if collector not in ("perf", "papi"):
        raise IngestError(
            f"{path}: unknown collector {collector!r}; expected perf or papi"
        )
    uarch = str(require("uarch"))
    domain = str(require("domain"))
    ingest_basis(domain)  # validate early, with the manifest named
    arch = str(payload.get("arch") or f"{uarch}-ingest")

    rows: Dict[str, List[List[str]]] = {}
    baseline: List[str] = []
    matrix: Optional[str] = None
    if collector == "perf":
        raw_rows = require("rows")
        if not isinstance(raw_rows, dict) or not raw_rows:
            raise IngestError(f"{path}: 'rows' must be a non-empty object")
        for label, groups in raw_rows.items():
            if not isinstance(groups, list) or not groups:
                raise IngestError(
                    f"{path}: row {label!r} must list at least one file"
                )
            if all(isinstance(g, str) for g in groups):
                groups = [groups]  # flat list = a single event group
            parsed_groups: List[List[str]] = []
            for group in groups:
                if (
                    not isinstance(group, list)
                    or not group
                    or not all(isinstance(f, str) for f in group)
                ):
                    raise IngestError(
                        f"{path}: row {label!r}: each group must be a "
                        f"non-empty list of file paths"
                    )
                parsed_groups.append(list(group))
            rows[str(label)] = parsed_groups
        raw_baseline = payload.get("baseline", [])
        if isinstance(raw_baseline, str):
            raw_baseline = [raw_baseline]
        if not isinstance(raw_baseline, list) or not all(
            isinstance(f, str) for f in raw_baseline
        ):
            raise IngestError(f"{path}: 'baseline' must be a list of paths")
        baseline = list(raw_baseline)
    else:
        matrix = str(require("matrix"))
        if "rows" in payload:
            raise IngestError(
                f"{path}: the papi collector takes 'matrix', not 'rows'"
            )
        if payload.get("baseline"):
            raise IngestError(
                f"{path}: baseline calibration applies to the perf "
                f"collector (CAT/PAPI harnesses calibrate at collection time)"
            )
    return IngestManifest(
        path=path,
        collector=collector,
        uarch=uarch,
        domain=domain,
        arch=arch,
        rows=rows,
        baseline=baseline,
        matrix=matrix,
    )


@dataclass
class IngestBundle:
    """Everything one assembled ingestion produced.

    ``column_quality`` is keyed by *registry* event name and holds the
    sorted tuple of non-``ok`` qualities seen anywhere in that column
    (empty tuple = clean).  ``baseline`` is keyed by collector name and
    holds the subtracted per-event mean.  ``sources`` maps every
    consumed file (manifest-relative) to its full SHA-256 — the
    provenance the catalog lineage records.
    """

    manifest: IngestManifest
    measurement: MeasurementSet
    resolution: AliasResolution
    column_quality: Dict[str, Tuple[str, ...]]
    baseline: Dict[str, float]
    sources: Dict[str, str]

    @property
    def flagged_columns(self) -> Tuple[str, ...]:
        """Registry names of columns carrying any quality flag, in
        column order — the set that must never compose unflagged."""
        return tuple(
            name
            for name in self.measurement.event_names
            if self.column_quality.get(name)
        )

    def report(self) -> str:
        """Human-readable assembly report (aliasing, quality, sources)."""
        m = self.manifest
        lines = [
            f"ingest: {m.collector} collection for {m.domain!r} on "
            f"{m.uarch} (family {self.resolution.family}, arch {m.arch})",
            f"  matrix: {self.measurement.n_repetitions} repetition(s) x "
            f"{self.measurement.n_rows} kernel row(s) x "
            f"{self.measurement.n_events} event column(s)",
            f"  sources: {len(self.sources)} file(s)",
        ]
        if self.baseline:
            lines.append(
                f"  baseline: subtracted from {len(self.baseline)} event(s)"
            )
        mapped = self.resolution.mapped
        lines.append(f"  mapped events: {len(mapped)}")
        for name in self.measurement.event_names:
            collector = self.resolution.collector_name(name)
            spelled = f" (as {collector!r})" if collector != name else ""
            flags = self.column_quality.get(name, ())
            flagged = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(f"    {name}{spelled}{flagged}")
        if self.resolution.unmapped:
            lines.append(
                f"  unmapped events: {len(self.resolution.unmapped)} "
                f"(dropped; not defined for family "
                f"{self.resolution.family!r})"
            )
            for name in self.resolution.unmapped:
                lines.append(f"    {name}")
        else:
            lines.append("  unmapped events: none")
        return "\n".join(lines)

    def provenance(self) -> dict:
        """The deterministic ingestion-provenance payload recorded on
        every catalog entry this bundle's analysis publishes."""
        return {
            "kind": "ingest",
            "collector": self.manifest.collector,
            "uarch": self.manifest.uarch,
            "family": self.resolution.family,
            "manifest": self.manifest.path.name,
            "manifest_digest": file_digest(self.manifest.path),
            "sources": dict(sorted(self.sources.items())),
            "baseline": {
                event: value for event, value in sorted(self.baseline.items())
            },
            "quality": {
                event: list(flags)
                for event, flags in sorted(self.column_quality.items())
                if flags
            },
            "unmapped": list(self.resolution.unmapped),
        }


def _parse_file(manifest: IngestManifest, relative: str, sources: Dict[str, str]):
    path = manifest.resolve(relative)
    try:
        text = path.read_text()
    except OSError as exc:
        raise IngestError(
            f"{manifest.path}: cannot read {relative!r}: {exc}"
        ) from None
    sources[relative] = file_digest(path)
    return text, str(path)


def _perf_samples(
    manifest: IngestManifest, files: Sequence[str], sources: Dict[str, str]
) -> List[CounterSample]:
    samples: List[CounterSample] = []
    for relative in files:
        text, source = _parse_file(manifest, relative, sources)
        _, parsed = parse_perf(text, source=source)
        samples.extend(parsed)
    return samples


def _merge_groups(
    row: str, groups: Sequence[List[CounterSample]]
) -> List[CounterSample]:
    """Index-wise union of a row's event groups (see module docs)."""
    counts = {len(g) for g in groups}
    if len(counts) != 1:
        raise IngestError(
            f"row {row!r}: event groups disagree on repetition count: "
            f"{sorted(len(g) for g in groups)}"
        )
    merged: List[CounterSample] = []
    for i in range(counts.pop()):
        union = CounterSample(source=f"{row}[{i}]", format="merged")
        seen: Dict[str, str] = {}
        for g_idx, group in enumerate(groups):
            for reading in group[i].readings:
                if reading.event in seen:
                    raise IngestError(
                        f"row {row!r} repetition {i}: event "
                        f"{reading.event!r} appears in groups "
                        f"{seen[reading.event]} and {g_idx} — two "
                        f"independent readings of one counter cannot be "
                        f"merged"
                    )
                seen[reading.event] = str(g_idx)
                union.readings.append(reading)
        merged.append(union)
    return merged


def _baseline_means(
    manifest: IngestManifest, sources: Dict[str, str]
) -> Dict[str, float]:
    if not manifest.baseline:
        return {}
    samples = _perf_samples(manifest, manifest.baseline, sources)
    totals: Dict[str, List[float]] = {}
    for sample in samples:
        for reading in sample.readings:
            if reading.quality != QUALITY_OK:
                continue  # a counter that never ran calibrates nothing
            totals.setdefault(reading.event, []).append(reading.value)
    return {
        event: float(np.mean(values)) for event, values in totals.items()
    }


def _assemble_perf(manifest: IngestManifest) -> IngestBundle:
    basis = ingest_basis(manifest.domain)
    expected_rows = list(basis.row_labels)
    missing = [r for r in expected_rows if r not in manifest.rows]
    extra = [r for r in manifest.rows if r not in expected_rows]
    if missing or extra:
        detail = []
        if missing:
            detail.append(f"missing kernel rows: {', '.join(missing)}")
        if extra:
            detail.append(f"unknown kernel rows: {', '.join(extra)}")
        raise IngestError(
            f"{manifest.path}: rows do not cover the {manifest.domain!r} "
            f"basis ({'; '.join(detail)})"
        )

    sources: Dict[str, str] = {}
    per_row: Dict[str, List[CounterSample]] = {}
    for row in expected_rows:
        groups = [
            _perf_samples(manifest, files, sources)
            for files in manifest.rows[row]
        ]
        per_row[row] = _merge_groups(row, groups)

    rep_counts = {row: len(samples) for row, samples in per_row.items()}
    if len(set(rep_counts.values())) != 1:
        raise IngestError(
            f"{manifest.path}: kernel rows disagree on repetition count: "
            + ", ".join(f"{r}={n}" for r, n in sorted(rep_counts.items()))
        )
    n_reps = next(iter(rep_counts.values()))
    if n_reps < 2:
        raise IngestError(
            f"{manifest.path}: need at least 2 repetitions for the "
            f"Section-IV noise filter; got {n_reps}"
        )

    # The collector event set must be one set, everywhere.
    first = per_row[expected_rows[0]][0]
    collector_events = list(first.event_names)
    expected_set = set(collector_events)
    for row in expected_rows:
        for i, sample in enumerate(per_row[row]):
            got = set(sample.event_names)
            if got != expected_set:
                diff = sorted(got.symmetric_difference(expected_set))
                raise IngestError(
                    f"{manifest.path}: row {row!r} repetition {i} measures "
                    f"a different event set (differs on: {', '.join(diff)})"
                )

    baseline = _baseline_means(manifest, sources)
    resolution = resolve_events(collector_events, manifest.uarch)
    return _build_bundle(
        manifest, basis, resolution, per_row, n_reps, baseline, sources
    )


def _assemble_papi(manifest: IngestManifest) -> IngestBundle:
    basis = ingest_basis(manifest.domain)
    sources: Dict[str, str] = {}
    text, source = _parse_file(manifest, manifest.matrix, sources)
    matrix = parse_papi_csv(text, source=source)

    expected_rows = list(basis.row_labels)
    got_rows = set(matrix.row_labels)
    missing = [r for r in expected_rows if r not in got_rows]
    extra = [r for r in matrix.row_labels if r not in expected_rows]
    if missing or extra:
        detail = []
        if missing:
            detail.append(f"missing kernel rows: {', '.join(missing)}")
        if extra:
            detail.append(f"unknown kernel rows: {', '.join(extra)}")
        raise IngestError(
            f"{manifest.path}: {manifest.matrix}: matrix rows do not cover "
            f"the {manifest.domain!r} basis ({'; '.join(detail)})"
        )

    per_row: Dict[str, Dict[int, CounterSample]] = {r: {} for r in expected_rows}
    for record in matrix.records:
        per_row[record.row][record.repetition] = record.sample
    rep_sets = {row: sorted(reps) for row, reps in per_row.items()}
    expected_reps = rep_sets[expected_rows[0]]
    for row, reps in rep_sets.items():
        if reps != expected_reps:
            raise IngestError(
                f"{manifest.path}: {manifest.matrix}: row {row!r} has "
                f"repetitions {reps}, expected {expected_reps}"
            )
    if expected_reps != list(range(len(expected_reps))):
        raise IngestError(
            f"{manifest.path}: {manifest.matrix}: repetition indices must "
            f"be contiguous from 0; got {expected_reps}"
        )
    if len(expected_reps) < 2:
        raise IngestError(
            f"{manifest.path}: need at least 2 repetitions for the "
            f"Section-IV noise filter; got {len(expected_reps)}"
        )

    ordered = {
        row: [per_row[row][i] for i in expected_reps] for row in expected_rows
    }
    resolution = resolve_events(list(matrix.event_names), manifest.uarch)
    return _build_bundle(
        manifest, basis, resolution, ordered, len(expected_reps), {}, sources
    )


def _build_bundle(
    manifest: IngestManifest,
    basis: ExpectationBasis,
    resolution: AliasResolution,
    per_row: Dict[str, List[CounterSample]],
    n_reps: int,
    baseline: Dict[str, float],
    sources: Dict[str, str],
) -> IngestBundle:
    registry_names = resolution.registry_names()
    if not registry_names:
        raise IngestError(
            f"{manifest.path}: no collector event maps onto the "
            f"{resolution.family!r} registry (unmapped: "
            f"{', '.join(resolution.unmapped)})"
        )
    collector_for = {
        target: source for source, target in resolution.mapped.items()
    }
    expected_rows = list(basis.row_labels)
    data = np.zeros(
        (n_reps, 1, len(expected_rows), len(registry_names)), dtype=np.float64
    )
    quality: Dict[str, set] = {name: set() for name in registry_names}
    subtracted: Dict[str, float] = {}
    for r_idx, row in enumerate(expected_rows):
        for rep_idx, sample in enumerate(per_row[row]):
            readings = {rd.event: rd for rd in sample.readings}
            for e_idx, name in enumerate(registry_names):
                reading = readings[collector_for[name]]
                value = reading.value
                offset = baseline.get(reading.event)
                if offset is not None:
                    value = max(0.0, value - offset)
                    subtracted[reading.event] = offset
                data[rep_idx, 0, r_idx, e_idx] = value
                if reading.quality != QUALITY_OK:
                    quality[name].add(reading.quality)
    measurement = MeasurementSet(
        benchmark=f"ingest:{manifest.domain}",
        row_labels=expected_rows,
        event_names=registry_names,
        data=data,
    )
    return IngestBundle(
        manifest=manifest,
        measurement=measurement,
        resolution=resolution,
        column_quality={
            name: tuple(sorted(flags)) for name, flags in quality.items()
        },
        baseline=subtracted,
        sources=sources,
    )


def assemble(manifest: IngestManifest) -> IngestBundle:
    """Assemble a manifest's files into one bit-stable bundle."""
    if manifest.collector == "perf":
        return _assemble_perf(manifest)
    return _assemble_papi(manifest)
