"""Run ingested measurements through the *identical* analysis path.

The whole point of the ingestion backend is that externally collected
data gets no private pipeline: an assembled
:class:`~repro.ingest.assemble.IngestBundle` is injected into
:meth:`AnalysisPipeline.run(measurement=...)
<repro.core.pipeline.AnalysisPipeline.run>` — the same noise-filter →
QRCP → compose stages, the same guard sentinels (``require_finite``
boundary-checks every injected matrix), the same certification and vet
seams — and its results publish into the same catalog.  Two things are
ingest-specific and both happen *outside* the stages:

* **Degraded-flag accountability.**  Any matrix column carrying a
  quality flag (``multiplexed`` / ``not_counted`` / ``not_supported``)
  that survives selection and composes with a nonzero coefficient
  forces ``degraded=True`` on the metric definition — a metric leaning
  on a scaled estimate or a typed zero must say so.  The flag is
  applied after composition, exactly like the fault layer's degraded
  stamp, so the numerics are untouched.

* **Provenance.**  Every published catalog entry carries the bundle's
  ingestion provenance (collector, uarch family, per-source-file
  digests, baseline calibration, quality flags, unmapped events) on its
  lineage, and the provenance payload is deterministic — re-ingesting
  bit-identical files produces a bit-identical entry, which the
  catalog's content-digest dedup collapses into the existing version.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import (
    DOMAIN_CONFIGS,
    AnalysisPipeline,
    PipelineConfig,
    PipelineResult,
)
from repro.core.signatures import signatures_for
from repro.hardware.cpu import CPUConfig, SimulatedCPU
from repro.hardware.pmu import PMU
from repro.hardware.systems import MachineNode
from repro.ingest.assemble import IngestBundle, ingest_basis
from repro.serve.catalog import CatalogEntry, MetricCatalogStore, entries_from_result

__all__ = ["INGEST_SEED", "IngestOutcome", "run_ingest"]

#: Ingested data carries no simulator seed; the catalog key still needs
#: one coordinate, so every ingested analysis keys under seed 0.
INGEST_SEED = 0


class _IngestedBenchmark:
    """Shim satisfying the pipeline's benchmark protocol for injected
    measurements: it names the run and pins the kernel-row order.  Its
    generator methods are never called — the measurement already exists."""

    def __init__(self, domain: str, rows: Tuple[str, ...]):
        self.name = f"ingest:{domain}"
        self._rows = list(rows)

    def row_labels(self) -> List[str]:
        return list(self._rows)


def _ingest_node(bundle: IngestBundle) -> MachineNode:
    """A stub node for an injected run: carries the catalog architecture
    name and the family registry; its machine is never measured."""
    return MachineNode(
        name=bundle.manifest.arch,
        machine=SimulatedCPU(CPUConfig()),
        events=bundle.resolution.registry,
        pmu=PMU(programmable_counters=8, fixed_counters=3),
        seed=INGEST_SEED,
    )


def _flag_degraded(
    result: PipelineResult, flagged: Tuple[str, ...]
) -> List[str]:
    """Force ``degraded=True`` on every composed metric that depends on a
    flagged column; returns the metric names.

    Dependence is judged on the Section VI-D *snapped* coefficients (the
    terms presets and catalog consumers actually read): raw least-squares
    vectors carry ~1e-16 dust on every selected column, which would taint
    everything indiscriminately; the snapping stage exists precisely to
    zero that dust.  A metric without a rounded form falls back to its
    raw coefficients.
    """
    flagged_set = set(flagged)
    if not flagged_set:
        return []
    touched: List[str] = []
    for name, definition in list(result.metrics.items()):
        judged = result.rounded_metrics.get(name, definition)
        tainted = any(
            coeff != 0.0 and event in flagged_set
            for event, coeff in zip(judged.event_names, judged.coefficients)
        )
        if not tainted:
            continue
        touched.append(name)
        if not definition.degraded:
            result.metrics[name] = replace(definition, degraded=True)
        rounded = result.rounded_metrics.get(name)
        if rounded is not None and not rounded.degraded:
            result.rounded_metrics[name] = replace(rounded, degraded=True)
    return touched


@dataclass
class IngestOutcome:
    """Everything one ingested analysis produced."""

    bundle: IngestBundle
    result: PipelineResult
    #: Metrics forced degraded because they compose a flagged column.
    degraded_metrics: List[str] = field(default_factory=list)
    #: Catalog entries as published (with assigned versions); empty when
    #: no store was given.
    published: List[CatalogEntry] = field(default_factory=list)
    #: How many publications deduped onto an existing version.
    deduped: int = 0

    def summary(self) -> str:
        lines = [self.bundle.report(), "", self.result.summary()]
        if self.degraded_metrics:
            lines.append(
                f"degraded (composes a quality-flagged column): "
                f"{', '.join(self.degraded_metrics)}"
            )
        if self.published:
            fresh = len(self.published) - self.deduped
            lines.append(
                f"catalog: {len(self.published)} entr"
                f"{'y' if len(self.published) == 1 else 'ies'} published "
                f"({fresh} new, {self.deduped} deduped) as "
                f"{self.published[0].arch}@seed{self.published[0].seed}"
            )
        return "\n".join(lines)


def run_ingest(
    bundle: IngestBundle,
    config: Optional[PipelineConfig] = None,
    store: Optional[MetricCatalogStore] = None,
) -> IngestOutcome:
    """Analyze an assembled bundle through the standard pipeline.

    ``config`` defaults to the domain's paper thresholds with
    ``repetitions`` overridden to the bundle's actual repetition count.
    With ``store``, every composed metric publishes as a catalog entry
    carrying the bundle's ingestion provenance.
    """
    manifest = bundle.manifest
    basis = ingest_basis(manifest.domain)
    reps = bundle.measurement.n_repetitions
    if config is None:
        config = replace(DOMAIN_CONFIGS[manifest.domain], repetitions=reps)
    elif config.repetitions != reps:
        config = replace(config, repetitions=reps)
    pipeline = AnalysisPipeline(
        node=_ingest_node(bundle),
        benchmark=_IngestedBenchmark(
            manifest.domain, tuple(basis.row_labels)
        ),
        basis=basis,
        signatures=signatures_for(manifest.domain),
        config=config,
        events=bundle.resolution.registry,
    )
    result = pipeline.run(measurement=bundle.measurement)
    degraded_metrics = _flag_degraded(result, bundle.flagged_columns)
    outcome = IngestOutcome(
        bundle=bundle, result=result, degraded_metrics=degraded_metrics
    )
    if store is not None:
        registry = bundle.resolution.registry
        all_digests = registry.event_digests()
        measured: Dict[str, str] = {
            name: all_digests[name]
            for name in bundle.measurement.event_names
        }
        entries = entries_from_result(
            result,
            arch=manifest.arch,
            seed=INGEST_SEED,
            events_digest=registry.content_digest(),
            event_digests=measured,
            provenance=bundle.provenance(),
        )
        for entry in entries:
            # put() is idempotent on content: it hands back the existing
            # latest version when this publication would duplicate it.
            before = store.get(entry.arch, entry.metric, entry.config_digest)
            stored = store.put(entry)
            if before is not None and stored.version == before.version:
                outcome.deduped += 1
            outcome.published.append(stored)
    return outcome
