"""repro.ingest — real-measurement ingestion backend.

Parses ``perf stat`` (human, ``-x,`` CSV, interval ``-I``) and PAPI/CAT
CSV collections into bit-stable :class:`~repro.cat.measurement.MeasurementSet`
matrices, resolves collector event names onto the
:class:`~repro.events.registry.EventRegistry` through explicit per-uarch
alias tables, and feeds the result through the *identical* noise-filter
→ QRCP → compose path the simulator uses — with multiplexing and
``<not counted>`` / ``<not supported>`` surfaced as per-column quality
flags that force the ``degraded`` stamp on any metric composing them,
and full ingestion provenance (source-file digests, collector, uarch,
baseline calibration) on every published catalog entry.
"""

from repro.ingest.alias import (
    KEY_EVENT_MAPPINGS,
    AliasResolution,
    normalize_event_name,
    registry_for_family,
    resolve_events,
    resolve_uarch,
)
from repro.ingest.assemble import (
    INGEST_DOMAINS,
    IngestBundle,
    IngestManifest,
    assemble,
    ingest_basis,
    load_manifest,
)
from repro.ingest.model import (
    QUALITIES,
    QUALITY_MULTIPLEXED,
    QUALITY_NOT_COUNTED,
    QUALITY_NOT_SUPPORTED,
    QUALITY_OK,
    CounterReading,
    CounterSample,
    IngestError,
    IngestParseError,
)
from repro.ingest.papi import (
    PapiMatrix,
    PapiRecord,
    parse_papi_csv,
    serialize_papi_csv,
)
from repro.ingest.perf import (
    PERF_FORMATS,
    detect_format,
    parse_perf,
    serialize_samples,
)
from repro.ingest.runner import INGEST_SEED, IngestOutcome, run_ingest

__all__ = [
    "AliasResolution",
    "CounterReading",
    "CounterSample",
    "INGEST_DOMAINS",
    "INGEST_SEED",
    "IngestBundle",
    "IngestError",
    "IngestManifest",
    "IngestOutcome",
    "IngestParseError",
    "KEY_EVENT_MAPPINGS",
    "PERF_FORMATS",
    "PapiMatrix",
    "PapiRecord",
    "QUALITIES",
    "QUALITY_MULTIPLEXED",
    "QUALITY_NOT_COUNTED",
    "QUALITY_NOT_SUPPORTED",
    "QUALITY_OK",
    "assemble",
    "detect_format",
    "ingest_basis",
    "load_manifest",
    "normalize_event_name",
    "parse_papi_csv",
    "parse_perf",
    "registry_for_family",
    "resolve_events",
    "resolve_uarch",
    "run_ingest",
    "serialize_papi_csv",
    "serialize_samples",
]
