"""Parsers and canonical serializers for ``perf stat`` text output.

Three wire formats, matching how ``perf stat`` is actually run:

* **perf-human** — the default human-readable table: a value (possibly
  comma-grouped), the event name, optionally a trailing multiplex
  percentage ``(NN.NN%)``, with ``<not counted>`` / ``<not supported>``
  in the value position for counters that never ran.
* **perf-csv** — ``perf stat -x,``: ``value,unit,event,run-time,pct``
  per line, one line per event.
* **perf-interval** — ``perf stat -I <ms> -x,``: the CSV fields with a
  leading interval timestamp; every distinct timestamp is one complete
  :class:`~repro.ingest.model.CounterSample` (ingestion treats the
  interval sequence as the repetition sequence).

Each format has a *canonical* serializer.  Canonical text is a fixpoint
of ``serialize ∘ parse`` (property-tested): values render via ``repr``
(shortest round-trip, so re-parsing is bit-exact), percentages with two
decimals, and the field layout is exactly what the parser consumes.
Parsing never guesses: anything off-grammar raises
:class:`~repro.ingest.model.IngestParseError` naming the file, line,
and column.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.ingest.model import (
    QUALITY_MULTIPLEXED,
    QUALITY_NOT_COUNTED,
    QUALITY_NOT_SUPPORTED,
    QUALITY_OK,
    CounterReading,
    CounterSample,
    IngestParseError,
)

__all__ = [
    "PERF_FORMATS",
    "detect_format",
    "parse_perf",
    "serialize_samples",
]

PERF_FORMATS = ("perf-human", "perf-csv", "perf-interval")

_NOT_COUNTED = "<not counted>"
_NOT_SUPPORTED = "<not supported>"

#: Human-format reading line: value (or a <not ...> marker), event name,
#: optional "# ..." comment, optional trailing "(NN.NN%)" multiplex note.
_HUMAN_LINE = re.compile(
    r"^\s*(?P<value><not counted>|<not supported>|[0-9][0-9,]*(?:\.[0-9]+)?"
    r"(?:[eE][+-]?[0-9]+)?)\s+"
    r"(?P<event>[A-Za-z_][\w.:/=-]*)"
    r"(?:\s+#[^(]*)?"
    r"(?:\s+\(\s*(?P<pct>[0-9]+(?:\.[0-9]+)?)%\s*\))?\s*$"
)

_EVENT_NAME = re.compile(r"^[A-Za-z_][\w.:/=-]*$")


def _parse_value(
    token: str, source: str, line_no: int, column: int
) -> Tuple[float, str]:
    """(value, quality) of a value token; raises on anything else."""
    if token == _NOT_COUNTED:
        return 0.0, QUALITY_NOT_COUNTED
    if token == _NOT_SUPPORTED:
        return 0.0, QUALITY_NOT_SUPPORTED
    try:
        return float(token.replace(",", "")), QUALITY_OK
    except ValueError:
        raise IngestParseError(
            f"unreadable counter value {token!r}", source, line_no, column
        ) from None


def _quality_for(quality: str, pct: Optional[float]) -> str:
    if quality == QUALITY_OK and pct is not None and pct < 100.0:
        return QUALITY_MULTIPLEXED
    return quality


def _field_column(line: str, fields: Sequence[str], index: int) -> int:
    """1-based character column where CSV field ``index`` starts."""
    return sum(len(f) + 1 for f in fields[:index]) + 1


# -- perf-human ---------------------------------------------------------
def _parse_human(text: str, source: str) -> List[CounterSample]:
    sample = CounterSample(source=source, format="perf-human")
    saw_stats_header = False
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("Performance counter stats"):
            saw_stats_header = True
            continue
        if "seconds time elapsed" in stripped or stripped.startswith(
            ("seconds user", "seconds sys")
        ):
            continue
        match = _HUMAN_LINE.match(line)
        if match is None:
            column = len(line) - len(line.lstrip()) + 1
            raise IngestParseError(
                f"unrecognized perf stat line {stripped!r}",
                source,
                line_no,
                column,
            )
        token = match.group("value")
        value, quality = _parse_value(
            token, source, line_no, match.start("value") + 1
        )
        pct = float(match.group("pct")) if match.group("pct") else None
        sample.readings.append(
            CounterReading(
                event=match.group("event"),
                value=value,
                quality=_quality_for(quality, pct),
                scale_pct=pct,
            )
        )
    if not sample.readings:
        raise IngestParseError(
            "no counter readings found"
            + ("" if saw_stats_header else " (and no perf stat header)"),
            source,
        )
    return [sample]


def _serialize_human(samples: Sequence[CounterSample]) -> str:
    if len(samples) != 1:
        raise ValueError(
            f"perf-human holds exactly one sample; got {len(samples)}"
        )
    lines = [" Performance counter stats for 'ingest':", ""]
    for reading in samples[0].readings:
        if reading.quality == QUALITY_NOT_COUNTED:
            value = _NOT_COUNTED
        elif reading.quality == QUALITY_NOT_SUPPORTED:
            value = _NOT_SUPPORTED
        else:
            value = repr(reading.value)
        line = f"{value:>20}      {reading.event}"
        if reading.scale_pct is not None:
            line += f"    ({reading.scale_pct:.2f}%)"
        lines.append(line)
    lines.append("")
    return "\n".join(lines) + "\n"


# -- perf-csv and perf-interval -----------------------------------------
def _parse_csv_fields(
    line: str,
    fields: Sequence[str],
    source: str,
    line_no: int,
    offset: int,
) -> CounterReading:
    """One reading from the ``value,unit,event,run-time,pct`` tail of a
    CSV line (``offset`` = index of the value field)."""
    if len(fields) < offset + 3:
        raise IngestParseError(
            f"expected at least {offset + 3} comma-separated fields, "
            f"got {len(fields)}",
            source,
            line_no,
            len(line) + 1,
        )
    value, quality = _parse_value(
        fields[offset], source, line_no, _field_column(line, fields, offset)
    )
    event = fields[offset + 2]
    if not _EVENT_NAME.match(event):
        raise IngestParseError(
            f"unreadable event name {event!r}",
            source,
            line_no,
            _field_column(line, fields, offset + 2),
        )
    pct: Optional[float] = None
    if len(fields) > offset + 4 and fields[offset + 4]:
        token = fields[offset + 4]
        try:
            pct = float(token)
        except ValueError:
            raise IngestParseError(
                f"unreadable running percentage {token!r}",
                source,
                line_no,
                _field_column(line, fields, offset + 4),
            ) from None
    return CounterReading(
        event=event,
        value=value,
        quality=_quality_for(quality, pct),
        scale_pct=pct,
    )


def _parse_csv(text: str, source: str) -> List[CounterSample]:
    sample = CounterSample(source=source, format="perf-csv")
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        fields = line.split(",")
        sample.readings.append(
            _parse_csv_fields(line, fields, source, line_no, offset=0)
        )
    if not sample.readings:
        raise IngestParseError("no counter readings found", source)
    return [sample]


def _parse_interval(text: str, source: str) -> List[CounterSample]:
    samples: List[CounterSample] = []
    current: Optional[CounterSample] = None
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        fields = line.split(",")
        token = fields[0].strip()
        try:
            interval = float(token)
        except ValueError:
            raise IngestParseError(
                f"unreadable interval timestamp {token!r}",
                source,
                line_no,
                1,
            ) from None
        reading = _parse_csv_fields(line, fields, source, line_no, offset=1)
        if current is None or current.interval != interval:
            if current is not None and interval <= current.interval:
                raise IngestParseError(
                    f"interval timestamps must increase; "
                    f"{interval!r} after {current.interval!r}",
                    source,
                    line_no,
                    1,
                )
            current = CounterSample(
                source=source, format="perf-interval", interval=interval
            )
            samples.append(current)
        current.readings.append(reading)
    if not samples:
        raise IngestParseError("no counter readings found", source)
    return samples


def _serialize_csv_tail(reading: CounterReading) -> str:
    if reading.quality == QUALITY_NOT_COUNTED:
        value = _NOT_COUNTED
    elif reading.quality == QUALITY_NOT_SUPPORTED:
        value = _NOT_SUPPORTED
    else:
        value = repr(reading.value)
    pct = "" if reading.scale_pct is None else f"{reading.scale_pct:.2f}"
    return f"{value},,{reading.event},0,{pct}"


def _serialize_csv(samples: Sequence[CounterSample]) -> str:
    if len(samples) != 1:
        raise ValueError(f"perf-csv holds exactly one sample; got {len(samples)}")
    return (
        "\n".join(_serialize_csv_tail(r) for r in samples[0].readings) + "\n"
    )


def _serialize_interval(samples: Sequence[CounterSample]) -> str:
    lines = []
    for sample in samples:
        if sample.interval is None:
            raise ValueError("perf-interval samples need interval timestamps")
        for reading in sample.readings:
            lines.append(f"{sample.interval!r},{_serialize_csv_tail(reading)}")
    return "\n".join(lines) + "\n"


# -- front door ---------------------------------------------------------
def detect_format(text: str, source: str = "<string>") -> str:
    """Sniff which perf format ``text`` is in.

    Human output is recognizable by its stats banner or by value/event
    lines without commas as field separators.  For CSV-shaped lines the
    discriminator is the first field: an interval line leads with a
    timestamp *followed by* a value field, a plain ``-x,`` line leads
    with the value itself (its second field is the unit, never numeric).
    """
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("Performance counter stats"):
            return "perf-human"
        fields = line.split(",")
        if len(fields) >= 6:
            first, second = fields[0].strip(), fields[1].strip()
            try:
                float(first)
                first_numeric = True
            except ValueError:
                first_numeric = False
            if first_numeric and (
                second in (_NOT_COUNTED, _NOT_SUPPORTED)
                or _is_float(second)
            ):
                return "perf-interval"
        if len(fields) >= 5:
            first = fields[0].strip()
            if first in (_NOT_COUNTED, _NOT_SUPPORTED) or _is_float(first):
                return "perf-csv"
        if _HUMAN_LINE.match(line):
            return "perf-human"
        raise IngestParseError(
            f"unrecognized perf stat output (first data line {stripped!r})",
            source,
            line=1,
        )
    raise IngestParseError("empty perf stat output", source)


def _is_float(token: str) -> bool:
    try:
        float(token)
        return True
    except ValueError:
        return False


def parse_perf(
    text: str, source: str = "<string>", format: str = "auto"
) -> Tuple[str, List[CounterSample]]:
    """Parse perf stat output; returns ``(format, samples)``.

    ``format`` may name one of :data:`PERF_FORMATS` to skip detection.
    """
    if format == "auto":
        format = detect_format(text, source)
    if format == "perf-human":
        return format, _parse_human(text, source)
    if format == "perf-csv":
        return format, _parse_csv(text, source)
    if format == "perf-interval":
        return format, _parse_interval(text, source)
    raise ValueError(
        f"unknown perf format {format!r}; expected one of "
        f"{', '.join(PERF_FORMATS)} or 'auto'"
    )


def serialize_samples(format: str, samples: Sequence[CounterSample]) -> str:
    """Canonical text for ``samples`` in ``format`` (see module docs)."""
    if format == "perf-human":
        return _serialize_human(samples)
    if format == "perf-csv":
        return _serialize_csv(samples)
    if format == "perf-interval":
        return _serialize_interval(samples)
    raise ValueError(
        f"unknown perf format {format!r}; expected one of "
        f"{', '.join(PERF_FORMATS)}"
    )
