"""The microarchitectural activity record shared by machines and events.

Lives at the package root (rather than under ``repro.hardware``) because it
is the interface *between* the hardware simulators and the event catalogs;
placing it in either subpackage would create an import cycle.

For the vectorized measurement hot path, :meth:`Activity.to_vector` turns
the sparse mapping into a dense coordinate vector over an explicit key
ordering, so a batch of activities becomes a ``(samples, keys)`` matrix that
multiplies a registry's packed weight matrix (see
:meth:`repro.events.registry.EventRegistry.weight_matrix`).

Running one CAT microkernel configuration on a simulated machine produces an
:class:`Activity`: a flat mapping from namespaced activity keys (the "ground
truth" of what the hardware did) to occurrence counts.  Raw events are
*linear functionals* over this record (see :mod:`repro.events.model`): each
event holds a sparse weight vector over activity keys, which is exactly how
real PMU events relate to microarchitectural occurrences (an event such as
``FP_ARITH_INST_RETIRED:SCALAR_DOUBLE`` fires once per scalar non-FMA DP
instruction and *twice* per scalar FMA DP instruction).

Keys are plain strings; the constants below enumerate the schema so that the
machine simulators and the event catalogs cannot drift apart.  Unknown keys
read as zero, mirroring a counter that never fires.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Activity",
    "flops_per_instruction",
    "CPU_ACTIVITY_KEYS",
    "GPU_ACTIVITY_KEYS",
    "fp_instr_key",
    "valu_instr_key",
]

# --------------------------------------------------------------------------
# CPU activity schema
# --------------------------------------------------------------------------

FP_WIDTHS: Tuple[str, ...] = ("scalar", "128", "256", "512")
FP_PRECISIONS: Tuple[str, ...] = ("sp", "dp")
FP_KINDS: Tuple[str, ...] = ("nonfma", "fma")


def flops_per_instruction(width: str, precision: str, fma: bool) -> int:
    """FLOPs performed by one FP instruction of the class.

    Scalar = 1 operand pair; packed widths hold 128/256/512 bits of the
    element type; FMA doubles the operation count.  A pure ISA fact shared
    by the kernel tables, the signature definitions and the catalogs.
    """
    if width == "scalar":
        lanes = 1
    else:
        bits = int(width)
        lanes = bits // (32 if precision == "sp" else 64)
    return lanes * (2 if fma else 1)


def fp_instr_key(width: str, precision: str, kind: str) -> str:
    """Activity key for a floating-point instruction class.

    ``width`` in {"scalar", "128", "256", "512"}, ``precision`` in
    {"sp", "dp"}, ``kind`` in {"nonfma", "fma"}.
    """
    if width not in FP_WIDTHS:
        raise ValueError(f"unknown FP width {width!r}")
    if precision not in FP_PRECISIONS:
        raise ValueError(f"unknown FP precision {precision!r}")
    if kind not in FP_KINDS:
        raise ValueError(f"unknown FP kind {kind!r}")
    return f"instr.fp.{width}.{precision}.{kind}"


_CPU_SCALAR_KEYS = (
    # Instruction mix
    "instr.total",
    "instr.int",
    "instr.load",
    "instr.store",
    "instr.mov",
    "instr.nop",
    "instr.div",
    # Branch unit (retired = architectural; executed includes wrong path)
    "branch.cond_executed",
    "branch.cond_retired",
    "branch.cond_taken",
    "branch.cond_ntaken",
    "branch.uncond_direct",
    "branch.uncond_indirect",
    "branch.call",
    "branch.return",
    "branch.all_retired",
    "branch.all_executed",
    "branch.mispredicted",
    "branch.misp_taken",
    # L1D / L2 / L3 demand traffic
    "cache.l1d.demand_hit",
    "cache.l1d.demand_miss",
    "cache.l1d.fb_hit",
    "cache.l1d.replacement",
    "cache.l2.demand_rd_hit",
    "cache.l2.demand_rd_miss",
    "cache.l2.all_demand_rd",
    "cache.l2.references",
    "cache.l2.prefetch_req",
    "cache.l3.hit",
    "cache.l3.miss",
    "cache.l3.references",
    # Retired memory instructions
    "mem.loads_retired",
    "mem.stores_retired",
    # TLB
    "tlb.dtlb_load_hit",
    "tlb.dtlb_load_miss",
    "tlb.stlb_hit",
    "tlb.walks",
    "tlb.walk_cycles",
    "tlb.itlb_miss",
    # Pipeline / time-like quantities (these are where run-to-run noise
    # lives on real hardware)
    "cycles.core",
    "cycles.ref",
    "uops.issued",
    "uops.retired",
    "uops.executed",
    "uops.ms",
    "frontend.fetch_bubbles",
    "frontend.dsb_uops",
    "frontend.mite_uops",
    "stall.mem",
    "stall.exec",
    "stall.total",
    "machine_clears",
    "sw.page_faults",
    "sw.context_switches",
)

CPU_ACTIVITY_KEYS: Tuple[str, ...] = _CPU_SCALAR_KEYS + tuple(
    fp_instr_key(w, p, k) for w in FP_WIDTHS for p in FP_PRECISIONS for k in FP_KINDS
)

# --------------------------------------------------------------------------
# GPU activity schema (AMD MI250X-like)
# --------------------------------------------------------------------------

VALU_OPS: Tuple[str, ...] = ("add", "sub", "mul", "trans", "fma")
VALU_PRECISIONS: Tuple[str, ...] = ("f16", "f32", "f64")


def valu_instr_key(op: str, precision: str) -> str:
    """Activity key for a VALU instruction class (e.g. ``gpu.valu.add.f32``)."""
    if op not in VALU_OPS:
        raise ValueError(f"unknown VALU op {op!r}")
    if precision not in VALU_PRECISIONS:
        raise ValueError(f"unknown VALU precision {precision!r}")
    return f"gpu.valu.{op}.{precision}"


_GPU_SCALAR_KEYS = (
    "gpu.waves",
    "gpu.workgroups",
    "gpu.valu.total",
    "gpu.valu.int",
    "gpu.salu",
    "gpu.smem",
    "gpu.vmem.read",
    "gpu.vmem.write",
    "gpu.flat",
    "gpu.lds",
    "gpu.gds",
    "gpu.branch",
    "gpu.sendmsg",
    "gpu.vskipped",
    "gpu.cycles",
    "gpu.busy_cycles",
    "gpu.valu_busy",
    "gpu.salu_busy",
    "gpu.occupancy",
    "gpu.fetch_size",
    "gpu.write_size",
    "gpu.l2.hit",
    "gpu.l2.miss",
    "gpu.l1.hit",
    "gpu.l1.miss",
    "gpu.wave_cycles",
    "gpu.mem_unit_busy",
    "gpu.mem_unit_stalled",
    "gpu.write_unit_stalled",
)

GPU_ACTIVITY_KEYS: Tuple[str, ...] = _GPU_SCALAR_KEYS + tuple(
    valu_instr_key(op, p) for op in VALU_OPS for p in VALU_PRECISIONS
)


class Activity(Mapping[str, float]):
    """Immutable-by-convention record of microarchitectural occurrences.

    A thin mapping wrapper: unknown keys read as 0.0 via :meth:`get`, and
    arithmetic helpers support composing activity from kernel pieces
    (e.g. loop body + loop overhead).
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[str, float] | None = None):
        self._counts: Dict[str, float] = dict(counts or {})

    # Mapping protocol -----------------------------------------------------
    def __getitem__(self, key: str) -> float:
        return self._counts[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def get(self, key: str, default: float = 0.0) -> float:  # type: ignore[override]
        return self._counts.get(key, default)

    # Composition ----------------------------------------------------------
    def scaled(self, factor: float) -> "Activity":
        """Return a copy with every count multiplied by ``factor``."""
        return Activity({k: v * factor for k, v in self._counts.items()})

    def merged(self, *others: "Activity") -> "Activity":
        """Return the element-wise sum of this record and ``others``."""
        out = dict(self._counts)
        for other in others:
            for k, v in other.items():
                out[k] = out.get(k, 0.0) + v
        return Activity(out)

    @staticmethod
    def accumulate(parts: Iterable["Activity"]) -> "Activity":
        """Sum an iterable of activity records."""
        out: Dict[str, float] = {}
        for part in parts:
            for k, v in part.items():
                out[k] = out.get(k, 0.0) + v
        return Activity(out)

    def with_counts(self, **updates: float) -> "Activity":
        """Return a copy with the given keys overwritten."""
        out = dict(self._counts)
        out.update(updates)
        return Activity(out)

    # Vectorization ---------------------------------------------------------
    def to_vector(
        self,
        keys: Sequence[str],
        key_index: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        """Dense coordinate vector of this record over ``keys``.

        Unknown keys read as 0.0 (a counter that never fires), exactly as
        :meth:`get` does; counts under keys absent from ``keys`` are
        dropped.  ``key_index`` (key -> position, consistent with ``keys``)
        lets callers that vectorize many activities share one lookup table.
        """
        out = np.zeros(len(keys), dtype=np.float64)
        if key_index is None:
            key_index = {k: i for i, k in enumerate(keys)}
        for key, value in self._counts.items():
            pos = key_index.get(key)
            if pos is not None:
                out[pos] = value
        return out

    def as_dict(self) -> Dict[str, float]:
        """A plain-dict copy (for serialization)."""
        return dict(self._counts)

    def __repr__(self) -> str:
        nonzero = sum(1 for v in self._counts.values() if v)
        return f"Activity({len(self._counts)} keys, {nonzero} nonzero)"
