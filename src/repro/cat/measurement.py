"""Measurement containers produced by CAT benchmark runs.

A :class:`MeasurementSet` is the raw material of the whole analysis: for one
benchmark on one node it holds a dense array of readings indexed by
(repetition, thread, kernel-row, event).  Repetitions feed the max-RNMSE
noise filter (paper Section IV); threads exist only for the data-cache
benchmark, where the median across threads suppresses measurement noise
(paper Sections IV and VII); rows are the kernel/loop configurations whose
expected counts the signatures describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["MeasurementSet"]


@dataclass
class MeasurementSet:
    """Readings of many events over a benchmark's kernel rows.

    Attributes
    ----------
    benchmark:
        Benchmark name (``cpu_flops``, ``branch``, ...).
    row_labels:
        One label per kernel row (e.g. ``dp_256_fma/loop48``).
    event_names:
        Full names of the measured events, in measurement order.
    data:
        Array of shape ``(repetitions, threads, rows, events)``.
    pmu_runs:
        How many complete hardware executions the PMU schedule needed to
        cover all events (``None`` when unknown, e.g. hand-built sets).
    """

    benchmark: str
    row_labels: List[str]
    event_names: List[str]
    data: np.ndarray
    pmu_runs: Optional[int] = None

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.data.ndim != 4:
            raise ValueError(
                f"data must be (reps, threads, rows, events); got shape {self.data.shape}"
            )
        reps, threads, rows, events = self.data.shape
        if rows != len(self.row_labels):
            raise ValueError(
                f"{rows} data rows vs {len(self.row_labels)} row labels"
            )
        if events != len(self.event_names):
            raise ValueError(
                f"{events} data events vs {len(self.event_names)} event names"
            )
        self._event_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.event_names)
        }
        if len(self._event_index) != len(self.event_names):
            raise ValueError("duplicate event names in measurement set")

    # Shape accessors -------------------------------------------------------
    @property
    def n_repetitions(self) -> int:
        return self.data.shape[0]

    @property
    def n_threads(self) -> int:
        return self.data.shape[1]

    @property
    def n_rows(self) -> int:
        return self.data.shape[2]

    @property
    def n_events(self) -> int:
        return self.data.shape[3]

    def event_index(self, name: str) -> int:
        try:
            return self._event_index[name]
        except KeyError:
            raise KeyError(
                f"event {name!r} was not measured by {self.benchmark!r}"
            ) from None

    # Views -----------------------------------------------------------------
    def thread_median(self) -> "MeasurementSet":
        """Collapse threads by the median (the paper's cache de-noising)."""
        collapsed = np.median(self.data, axis=1, keepdims=True)
        return MeasurementSet(
            benchmark=self.benchmark,
            row_labels=list(self.row_labels),
            event_names=list(self.event_names),
            data=collapsed,
            pmu_runs=self.pmu_runs,
        )

    def repetition_vectors(self, event: str) -> np.ndarray:
        """Per-repetition measurement vectors of one event, threads
        collapsed by median: shape ``(reps, rows)``."""
        idx = self.event_index(event)
        return np.median(self.data[:, :, :, idx], axis=1)

    def mean_vector(self, event: str) -> np.ndarray:
        """Measurement vector averaged over repetitions (threads median).

        For noise-free events all repetitions are identical and this is
        exactly any single repetition (paper Section IV)."""
        return self.repetition_vectors(event).mean(axis=0)

    def measurement_matrix(self) -> np.ndarray:
        """Rows x events matrix of mean measurements (the paper's A)."""
        medianed = np.median(self.data, axis=1)  # (reps, rows, events)
        return medianed.mean(axis=0)

    def select_events(self, names: Sequence[str]) -> "MeasurementSet":
        """Sub-setted measurement set preserving order of ``names``."""
        idx = [self.event_index(n) for n in names]
        return MeasurementSet(
            benchmark=self.benchmark,
            row_labels=list(self.row_labels),
            event_names=list(names),
            data=self.data[:, :, :, idx],
            pmu_runs=self.pmu_runs,
        )

    def __repr__(self) -> str:
        return (
            f"MeasurementSet({self.benchmark!r}, reps={self.n_repetitions}, "
            f"threads={self.n_threads}, rows={self.n_rows}, events={self.n_events})"
        )
