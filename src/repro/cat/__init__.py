"""Counter Analysis Toolkit (CAT) benchmarks and measurement runner."""

from repro.cat.branch import BRANCH_KERNEL_SPECS, BranchBenchmark
from repro.cat.dcache import DCacheBenchmark, default_footprints
from repro.cat.dtlb import DTLBBenchmark, default_page_counts
from repro.cat.flops_cpu import CPUFlopsBenchmark
from repro.cat.flops_gpu import GPUFlopsBenchmark
from repro.cat.measurement import MeasurementSet
from repro.cat.runner import BenchmarkRunner

__all__ = [
    "BRANCH_KERNEL_SPECS",
    "BenchmarkRunner",
    "BranchBenchmark",
    "CPUFlopsBenchmark",
    "DCacheBenchmark",
    "DTLBBenchmark",
    "default_page_counts",
    "GPUFlopsBenchmark",
    "MeasurementSet",
    "default_footprints",
]
