"""CAT GPU-FLOPs benchmark: 15 kernels x 3 loop sizes on the MI250X model.

Kernels perform one of addition, subtraction, multiplication, square root
or fused multiply-add at half, single or double precision (paper Section
III-C).  Square-root work lands on the transcendental pipe, which is why
``SQ_INSTS_VALU_TRANS_F*`` is the raw event that tracks it.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.activity import Activity
from repro.cat.kernels import GPU_FLOPS_DIMENSIONS, GPU_FLOPS_LOOP_BLOCKS, GpuKernelClass
from repro.events.model import EventDomain
from repro.hardware.gpu import GPUKernel, SimulatedGPU

__all__ = ["GPUFlopsBenchmark"]


class GPUFlopsBenchmark:
    """The CAT GPU floating-point benchmark (runs on device 0)."""

    name = "gpu_flops"
    #: The rocm component exposes every event on every device; a blind sweep
    #: measures all of them (paper Fig. 2c: ~1200 events).
    measured_domains: Tuple[str, ...] = (
        EventDomain.GPU_VALU,
        EventDomain.GPU_MEMORY,
        EventDomain.GPU_PIPELINE,
    )
    environment_noise = None
    n_threads = 1

    def __init__(self, salu_ops_per_iter: float = 3.0):
        self.salu_ops_per_iter = salu_ops_per_iter
        self._kernels: List[Tuple[str, GPUKernel]] = []
        for dim in GPU_FLOPS_DIMENSIONS:
            for block in GPU_FLOPS_LOOP_BLOCKS:
                kernel = GPUKernel(
                    name=f"{dim.kernel_name}/loop{block}",
                    valu_ops={dim.activity_key: float(block)},
                    salu_ops=self.salu_ops_per_iter,
                )
                self._kernels.append((kernel.name, kernel))

    @property
    def dimensions(self) -> Tuple[GpuKernelClass, ...]:
        return GPU_FLOPS_DIMENSIONS

    def row_labels(self) -> List[str]:
        return [label for label, _ in self._kernels]

    def execute(self, machine: SimulatedGPU) -> List[List[Activity]]:
        if not isinstance(machine, SimulatedGPU):
            raise TypeError("the GPU-FLOPs benchmark requires a SimulatedGPU")
        return [[machine.run(kernel)] for _, kernel in self._kernels]
