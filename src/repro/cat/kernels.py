"""Shared kernel-structure definitions for the CAT benchmarks.

CAT microkernels are unrolled blocks of one instruction class repeated in
three loop sizes (paper Figure 1: 24, 48 and 96 instructions per iteration
for the non-FMA FLOP kernels; 12, 24 and 48 for the FMA kernels).  The
tables here are the single source of truth shared by the benchmark
implementations (which execute them on the machines) and the expectation
bases in :mod:`repro.core.basis` (which describe what ideal events would
measure) — the two must agree or the analysis would be fed an inconsistent
world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.activity import (
    FP_PRECISIONS,
    FP_WIDTHS,
    VALU_PRECISIONS,
    flops_per_instruction,
    fp_instr_key,
    valu_instr_key,
)

__all__ = [
    "CPU_FLOPS_DIMENSIONS",
    "CPU_FLOPS_LOOP_BLOCKS",
    "CPU_FMA_LOOP_BLOCKS",
    "FlopKernelClass",
    "GPU_FLOPS_DIMENSIONS",
    "GPU_FLOPS_LOOP_BLOCKS",
    "GpuKernelClass",
    "flops_per_instruction",
]

#: Instructions per iteration for the three loops of each non-FMA kernel.
CPU_FLOPS_LOOP_BLOCKS: Tuple[int, ...] = (24, 48, 96)
#: FMA kernels use half-sized blocks (paper Section III: K^256_FMA has
#: loops of 12, 24 and 48 FMA instructions).
CPU_FMA_LOOP_BLOCKS: Tuple[int, ...] = (12, 24, 48)

#: GPU kernels share one block ladder across all operations.
GPU_FLOPS_LOOP_BLOCKS: Tuple[int, ...] = (24, 48, 96)


@dataclass(frozen=True)
class FlopKernelClass:
    """One ideal CPU floating-point dimension (a kernel and a basis column)."""

    width: str  # scalar | 128 | 256 | 512
    precision: str  # sp | dp
    fma: bool

    @property
    def activity_key(self) -> str:
        return fp_instr_key(self.width, self.precision, "fma" if self.fma else "nonfma")

    @property
    def symbol(self) -> str:
        """Paper notation: S^128, D^SCAL_FMA, ..."""
        prec = "S" if self.precision == "sp" else "D"
        width = "SCAL" if self.width == "scalar" else self.width
        return f"{prec}{width}_FMA" if self.fma else f"{prec}{width}"

    @property
    def kernel_name(self) -> str:
        parts = [self.precision, self.width]
        if self.fma:
            parts.append("fma")
        return "_".join(parts)

    @property
    def loop_blocks(self) -> Tuple[int, ...]:
        return CPU_FMA_LOOP_BLOCKS if self.fma else CPU_FLOPS_LOOP_BLOCKS


def _cpu_dimensions() -> List[FlopKernelClass]:
    """Basis order of the paper's Table I signatures:
    (S_SCAL, S128, S256, S512, D_SCAL, ..., D512, S_SCAL_FMA, ..., D512_FMA).
    """
    dims: List[FlopKernelClass] = []
    for fma in (False, True):
        for precision in FP_PRECISIONS:
            for width in FP_WIDTHS:
                dims.append(FlopKernelClass(width, precision, fma))
    return dims


CPU_FLOPS_DIMENSIONS: Tuple[FlopKernelClass, ...] = tuple(_cpu_dimensions())


@dataclass(frozen=True)
class GpuKernelClass:
    """One ideal GPU dimension: operation x precision (paper Section III-C)."""

    op: str  # add | sub | mul | trans | fma  (trans = square root kernels)
    precision: str  # f16 | f32 | f64

    @property
    def activity_key(self) -> str:
        return valu_instr_key(self.op, self.precision)

    @property
    def symbol(self) -> str:
        """Paper notation: AH, SS, MD, SQH, FD, ..."""
        op_map = {"add": "A", "sub": "S", "mul": "M", "trans": "SQ", "fma": "F"}
        prec_map = {"f16": "H", "f32": "S", "f64": "D"}
        return f"{op_map[self.op]}{prec_map[self.precision]}"

    @property
    def kernel_name(self) -> str:
        op_map = {"add": "add", "sub": "sub", "mul": "mul", "trans": "sqrt", "fma": "fma"}
        return f"{op_map[self.op]}_{self.precision}"

    @property
    def ops_per_instruction(self) -> int:
        return 2 if self.op == "fma" else 1


def _gpu_dimensions() -> List[GpuKernelClass]:
    """Basis order of the paper's Table II: (AH, AS, AD, SH, ..., FD)."""
    dims: List[GpuKernelClass] = []
    for op in ("add", "sub", "mul", "trans", "fma"):
        for precision in VALU_PRECISIONS:
            dims.append(GpuKernelClass(op, precision))
    return dims


GPU_FLOPS_DIMENSIONS: Tuple[GpuKernelClass, ...] = tuple(_gpu_dimensions())
