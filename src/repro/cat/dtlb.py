"""Data-TLB benchmark: a fifth domain beyond the paper's four.

The paper notes its analysis "is not limited to one type of events"; this
benchmark takes that literally and applies the identical machinery to the
address-translation hierarchy.  A pointer chase at page stride (one
pointer per 4 KiB page, randomized order) touches each page exactly once
per pass, so the page working set sweeps the translation hierarchy the
way the data-cache benchmark sweeps the caches:

* within the first-level DTLB's reach every access translates there;
* between DTLB and STLB reach, every access misses the first level and
  hits the shared second level;
* beyond STLB reach, every access walks the page table.

Rows use two working-set sizes per region (like the cache sweep) at two
page strides (one and two pages between pointers), and the expectations
form a clean rank-3 block basis over the dimensions (DTLBH, STLBH, WALK).

The two strides are load-bearing: with one stride, byte footprint is
proportional to page count, so the shared-L3 overflow boundary lands at a
fixed page count and cache-miss events become *confounded* with page
walks (the QRCP would happily select ``MEM_LOAD_RETIRED:L3_MISS`` as the
walk carrier — observed during development).  Doubling the stride doubles
the byte footprint at the same page count, shifting every cache boundary
while the translation boundaries stay put, so cache events stop being
representable in the TLB basis and are rejected — the same de-confounding
CAT's cache benchmark achieves with its 64 B/128 B strides.

The benchmark is multi-threaded like the cache one and inherits its
environment-noise regime — translation counters on real parts are
comparably jittery.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.activity import Activity
from repro.events.model import EventDomain
from repro.hardware.cpu import CPUConfig, PointerChase, SimulatedCPU
from repro.hardware.tlb import TLBConfig

__all__ = ["DTLBBenchmark", "default_page_counts"]


def default_page_counts(tlb: TLBConfig = TLBConfig()) -> List[Tuple[str, int]]:
    """(region label, pages) pairs spanning the translation hierarchy.

    Two working-set sizes per region, derived from the TLB geometry: a
    quarter and three-quarters of the first-level reach, then an eighth
    and a half of the STLB reach, then 2x and 4x STLB reach.
    """
    return [
        ("TLB", max(4, tlb.entries // 4)),
        ("TLB", max(8, tlb.entries * 3 // 4)),
        ("STLB", tlb.stlb_entries // 8),
        ("STLB", tlb.stlb_entries // 2),
        ("WALK", tlb.stlb_entries * 2),
        ("WALK", tlb.stlb_entries * 4),
    ]


class DTLBBenchmark:
    """Pointer chase at page stride sweeping the translation hierarchy."""

    name = "dtlb"
    measured_domains: Tuple[str, ...] = (
        EventDomain.TLB,
        EventDomain.CACHE,
        EventDomain.MEMORY,
        EventDomain.PIPELINE,
    )
    #: Same interference regime as the data-cache benchmark.
    environment_noise: Tuple[float, float] = (2e-4, 5e-3)

    def __init__(
        self,
        page_counts: Sequence[Tuple[str, int]] | None = None,
        n_threads: int = 4,
        page_bytes: int = 4096,
        strides_pages: Sequence[int] = (1, 2),
        tlb_config: TLBConfig | None = None,
    ):
        self.page_bytes = page_bytes
        self.n_threads = n_threads
        self.strides_pages = tuple(strides_pages)
        if page_counts is not None:
            self.page_counts = list(page_counts)
        else:
            self.page_counts = default_page_counts(tlb_config or TLBConfig())
        self._rows: List[Tuple[str, str, PointerChase]] = []
        for stride_pages in self.strides_pages:
            if stride_pages <= 0:
                raise ValueError("strides must be positive page counts")
            for region, pages in self.page_counts:
                if pages <= 0:
                    raise ValueError("page counts must be positive")
                chase = PointerChase(
                    n_pointers=pages,
                    stride_bytes=stride_pages * page_bytes,
                    n_threads=n_threads,
                )
                label = f"stride{stride_pages}p/pages{pages}/{region}"
                self._rows.append((label, region, chase))

    def row_labels(self) -> List[str]:
        return [label for label, _, _ in self._rows]

    def row_regions(self) -> List[str]:
        return [region for _, region, _ in self._rows]

    def execute(self, machine: SimulatedCPU) -> List[List[Activity]]:
        if not isinstance(machine, SimulatedCPU):
            raise TypeError("the DTLB benchmark requires a SimulatedCPU")
        return [machine.run_pointer_chase(chase) for _, _, chase in self._rows]
