"""CAT branching benchmark: 11 kernels matching the paper's Eq. 3 rows.

Each kernel is a loop whose body contains a controlled mix of conditional
branches (always-taken, never-taken, alternating, de Bruijn-unpredictable),
optionally-guarded branches executed every other iteration, unconditional
direct branches, and — for the rows where executed > retired — wrong-path
conditionals fetched speculatively after a misprediction.  The loop's own
back-branch is the first "taken" spec in each row.

Running these through the machine's branch unit reproduces the paper's
expectation matrix *exactly* (see ``tests/cat/test_branch_bench.py``):

    row  (CE,  CR,  T,   D, M)
     1   (2,   2,   1.5, 0, 0)      loop + alternating
     2   (2,   2,   1,   0, 0)      loop + never-taken
     3   (2,   2,   2,   0, 0)      loop + always-taken
     4   (2,   2,   1.5, 0, 0.5)    loop + unpredictable
     5   (2.5, 2.5, 1.5, 0, 0.5)    ... + guarded never-taken
     6   (2.5, 2.5, 2,   0, 0.5)    ... + guarded always-taken
     7   (2.5, 2,   1.5, 0, 0.5)    unpredictable with 1 wrong-path branch
     8   (3,   2.5, 1.5, 0, 0.5)    ... + guarded never-taken
     9   (3,   2.5, 2,   0, 0.5)    ... + guarded always-taken
    10   (2,   2,   1,   1, 0)      loop + never-taken + unconditional
    11   (1,   1,   1,   0, 0)      empty body (just the loop)
"""

from __future__ import annotations

from typing import List, Tuple

from repro.activity import Activity
from repro.events.model import EventDomain
from repro.hardware.branch import BranchSpec
from repro.hardware.cpu import ComputeKernel, SimulatedCPU

__all__ = ["BranchBenchmark", "BRANCH_KERNEL_SPECS"]

#: (kernel label, branch specs including the loop back-branch)
BRANCH_KERNEL_SPECS: Tuple[Tuple[str, Tuple[BranchSpec, ...]], ...] = (
    ("k01_alternating", (BranchSpec("taken"), BranchSpec("alternate"))),
    ("k02_never_taken", (BranchSpec("taken"), BranchSpec("not_taken"))),
    ("k03_always_taken", (BranchSpec("taken"), BranchSpec("taken"))),
    ("k04_unpredictable", (BranchSpec("taken"), BranchSpec("unpredictable"))),
    (
        "k05_unpred_guard_nt",
        (
            BranchSpec("taken"),
            BranchSpec("unpredictable"),
            BranchSpec("not_taken", execute_every=2),
        ),
    ),
    (
        "k06_unpred_guard_t",
        (
            BranchSpec("taken"),
            BranchSpec("unpredictable"),
            BranchSpec("taken", execute_every=2),
        ),
    ),
    (
        "k07_wrong_path",
        (BranchSpec("taken"), BranchSpec("unpredictable", wrong_path_branches=1)),
    ),
    (
        "k08_wrong_path_guard_nt",
        (
            BranchSpec("taken"),
            BranchSpec("unpredictable", wrong_path_branches=1),
            BranchSpec("not_taken", execute_every=2),
        ),
    ),
    (
        "k09_wrong_path_guard_t",
        (
            BranchSpec("taken"),
            BranchSpec("unpredictable", wrong_path_branches=1),
            BranchSpec("taken", execute_every=2),
        ),
    ),
    (
        "k10_unconditional",
        (BranchSpec("taken"), BranchSpec("not_taken"), BranchSpec("uncond")),
    ),
    ("k11_loop_only", (BranchSpec("taken"),)),
)


class BranchBenchmark:
    """The CAT branching benchmark."""

    name = "branch"
    #: Branch runs sweep the branch-adjacent core events (paper Fig. 2a:
    #: ~140 events on SPR).
    measured_domains: Tuple[str, ...] = (
        EventDomain.BRANCH,
        EventDomain.PIPELINE,
        EventDomain.FRONTEND,
        EventDomain.OTHER,
    )
    environment_noise = None
    n_threads = 1

    def __init__(self, int_ops_per_iter: float = 2.0):
        self.int_ops_per_iter = int_ops_per_iter
        self._kernels: List[Tuple[str, ComputeKernel]] = [
            (
                label,
                ComputeKernel(name=label, int_ops=int_ops_per_iter, branches=specs),
            )
            for label, specs in BRANCH_KERNEL_SPECS
        ]

    def row_labels(self) -> List[str]:
        return [label for label, _ in self._kernels]

    def execute(self, machine: SimulatedCPU) -> List[List[Activity]]:
        if not isinstance(machine, SimulatedCPU):
            raise TypeError("the branching benchmark requires a SimulatedCPU")
        return [[machine.run_compute(kernel)] for _, kernel in self._kernels]
