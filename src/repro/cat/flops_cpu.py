"""CAT CPU-FLOPs benchmark: 16 kernels x 3 loop sizes.

One microkernel per ideal floating-point instruction class —
{scalar, 128, 256, 512} x {SP, DP} x {FMA, non-FMA} — each with three
unrolled loops (24/48/96 instructions per iteration; half that for the FMA
kernels), as described in the paper's Section III and Figure 1.  Every
kernel carries the same loop overhead (two integer ops and the loop
back-branch), which is what contaminates events like ``INST_RETIRED:ANY``
and gets them rejected at the representation stage.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.activity import Activity
from repro.cat.kernels import CPU_FLOPS_DIMENSIONS, FlopKernelClass
from repro.events.model import EventDomain
from repro.hardware.branch import BranchSpec
from repro.hardware.cpu import ComputeKernel, SimulatedCPU

__all__ = ["CPUFlopsBenchmark"]


class CPUFlopsBenchmark:
    """The CAT CPU floating-point benchmark."""

    name = "cpu_flops"
    #: A blind native-event sweep over the core PMU (paper Fig. 2b).
    measured_domains: Tuple[str, ...] = (
        EventDomain.FLOPS,
        EventDomain.BRANCH,
        EventDomain.CACHE,
        EventDomain.MEMORY,
        EventDomain.TLB,
        EventDomain.PIPELINE,
        EventDomain.FRONTEND,
        EventDomain.OTHER,
    )
    environment_noise = None
    n_threads = 1

    def __init__(self, int_ops_per_iter: float = 2.0):
        self.int_ops_per_iter = int_ops_per_iter
        self._kernels: List[Tuple[str, ComputeKernel]] = []
        for dim in CPU_FLOPS_DIMENSIONS:
            for block in dim.loop_blocks:
                kernel = ComputeKernel(
                    name=f"{dim.kernel_name}/loop{block}",
                    fp_ops={dim.activity_key: float(block)},
                    int_ops=self.int_ops_per_iter,
                    branches=(BranchSpec("taken"),),
                )
                self._kernels.append((kernel.name, kernel))

    @property
    def dimensions(self) -> Tuple[FlopKernelClass, ...]:
        return CPU_FLOPS_DIMENSIONS

    def row_labels(self) -> List[str]:
        return [label for label, _ in self._kernels]

    def execute(self, machine: SimulatedCPU) -> List[List[Activity]]:
        """Run all kernel rows; returns activities indexed [row][thread]."""
        if not isinstance(machine, SimulatedCPU):
            raise TypeError("the CPU-FLOPs benchmark requires a SimulatedCPU")
        return [[machine.run_compute(kernel)] for _, kernel in self._kernels]
