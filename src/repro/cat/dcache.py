"""CAT data-cache benchmark: multi-threaded pointer chase, size/stride sweep.

Each configuration walks a randomized pointer chain once per pass; the
buffer footprint is swept across the cache hierarchy — two sizes inside
each of the L1, L2, L3 and memory regions — at strides of 64 B and 128 B
with a fixed pointers-per-block of 512, matching the paper's Figure 3 axis
(L1 | L2 | L3 | M groups repeated per stride).  Eight threads chase
disjoint buffers to pressure the shared L3, and the analysis later takes
the per-thread median to suppress noise (paper Sections IV/VII).

Unlike the compute benchmarks, the whole run is subject to *environment*
noise: thread interference and OS activity perturb even normally exact
counters, which is why the paper's Figure 2d shows no zero-variability
cluster for this benchmark and uses the lenient tau = 1e-1.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.activity import Activity
from repro.events.model import EventDomain
from repro.hardware.cpu import CPUConfig, PointerChase, SimulatedCPU

__all__ = ["DCacheBenchmark", "default_footprints"]

KIB = 1024
MIB = 1024 * 1024


def default_footprints(
    config: CPUConfig = CPUConfig(), n_threads: int = 8
) -> List[Tuple[str, int]]:
    """(region label, footprint bytes) pairs spanning the node's hierarchy.

    Two sizes per region, derived from the machine geometry so the sweep
    adapts to any cache configuration: a third and two-thirds of L1, an
    eighth and a half of L2, ~0.6x and 1.0x of the per-thread share of the
    shared L3, then 2x and 4x that share.  Sizes snap to 4 KiB so pointer
    counts stay integral for any supported stride.  On the default
    Sapphire Rapids geometry this reproduces the 16K/32K/256K/1M/2.5M/4M/
    8M/16M ladder the Aurora experiments use.
    """
    def snap(size: float) -> int:
        return max(4 * KIB, int(size) // (4 * KIB) * (4 * KIB))

    l1 = config.l1d.size_bytes
    l2 = config.l2.size_bytes
    l3_share = config.l3.size_bytes // n_threads
    return [
        ("L1", snap(l1 / 3)),
        ("L1", snap(l1 * 2 / 3)),
        ("L2", snap(l2 / 8)),
        ("L2", snap(l2 / 2)),
        ("L3", snap(l3_share * 0.625)),
        ("L3", snap(l3_share)),
        ("M", snap(l3_share * 2)),
        ("M", snap(l3_share * 4)),
    ]


class DCacheBenchmark:
    """The CAT data-cache benchmark."""

    name = "dcache"
    measured_domains: Tuple[str, ...] = (
        EventDomain.CACHE,
        EventDomain.MEMORY,
        EventDomain.TLB,
        EventDomain.PIPELINE,
    )
    #: log-uniform per-event environment-noise sigma range (multiplicative).
    environment_noise: Tuple[float, float] = (2e-4, 5e-3)

    def __init__(
        self,
        strides: Sequence[int] = (64, 128),
        footprints: Sequence[Tuple[str, int]] | None = None,
        n_threads: int = 8,
        pointers_per_block: int = 512,
        cpu_config: CPUConfig | None = None,
    ):
        self.strides = tuple(strides)
        if footprints is not None:
            self.footprints = list(footprints)
        else:
            self.footprints = default_footprints(
                cpu_config or CPUConfig(), n_threads=n_threads
            )
        self.n_threads = n_threads
        self.pointers_per_block = pointers_per_block
        self._rows: List[Tuple[str, str, PointerChase]] = []
        for stride in self.strides:
            for region, footprint in self.footprints:
                n_pointers = footprint // stride
                if n_pointers <= 0:
                    raise ValueError(
                        f"footprint {footprint} too small for stride {stride}"
                    )
                chase = PointerChase(
                    n_pointers=n_pointers,
                    stride_bytes=stride,
                    n_threads=n_threads,
                    pointers_per_block=pointers_per_block,
                )
                label = f"stride{stride}/{region}/{footprint // KIB}KiB"
                self._rows.append((label, region, chase))

    def row_labels(self) -> List[str]:
        return [label for label, _, _ in self._rows]

    def row_regions(self) -> List[str]:
        """Region tag per row (for expectation construction and plots)."""
        return [region for _, region, _ in self._rows]

    def execute(self, machine: SimulatedCPU) -> List[List[Activity]]:
        if not isinstance(machine, SimulatedCPU):
            raise TypeError("the data-cache benchmark requires a SimulatedCPU")
        return [machine.run_pointer_chase(chase) for _, _, chase in self._rows]
