"""Benchmark runner: benchmark x events x repetitions -> MeasurementSet.

The runner is CAT's measurement loop: it executes a benchmark's kernels on
a node's machine (once — the simulated activity is the ground truth shared
by all repetitions), schedules the requested events onto the PMU's limited
counters, and produces per-repetition readings by pushing the activity
through each event's response and noise model.

Reproducibility contract: each event's noise draws come from one generator
stream seeded by ``(node seed, event name CRC)``, consumed in
``(repetition, thread, row)`` order, so (a) re-running the same
configuration is bit-identical, (b) deterministic events are *exactly*
identical across repetitions (their max RNMSE is exactly zero, the Fig. 2
zero-noise cluster), (c) noisy events differ per repetition, and (d) noise
decorrelates across rows and threads.  Per-event batching keeps generator
construction off the hot path — the measurement loop is matmul-and-draw,
not 10^5 generator constructions (see ``docs/substrate.md``).
"""

from __future__ import annotations

import zlib
from typing import Optional, Protocol, Sequence

import numpy as np

from repro.activity import Activity
from repro.cat.measurement import MeasurementSet
from repro.events.catalogs._builders import log_uniform_sigma
from repro.events.model import RawEvent
from repro.events.registry import EventRegistry
from repro.hardware.systems import MachineNode

__all__ = ["BenchmarkRunner", "CATBenchmark"]


class CATBenchmark(Protocol):
    """Structural interface every CAT benchmark provides."""

    name: str
    measured_domains: Sequence[str]
    environment_noise: Optional[tuple]
    n_threads: int

    def row_labels(self) -> list: ...

    def execute(self, machine) -> list: ...


class BenchmarkRunner:
    """Collects measurements of a benchmark over multiple repetitions."""

    def __init__(self, node: MachineNode, repetitions: int = 5):
        if repetitions < 2:
            raise ValueError(
                "the noise analysis needs at least two repetitions to "
                "compute pairwise RNMSE"
            )
        self.node = node
        self.repetitions = repetitions

    def select_events(self, benchmark: CATBenchmark) -> EventRegistry:
        """The events a blind sweep measures for this benchmark."""
        return self.node.events.select(domains=tuple(benchmark.measured_domains))

    def _rng(self, event_name: str) -> np.random.Generator:
        """The event's measurement-noise stream for this node seed."""
        crc = zlib.crc32(event_name.encode())
        return np.random.default_rng((self.node.seed, crc))

    def run(
        self,
        benchmark: CATBenchmark,
        events: Optional[EventRegistry] = None,
    ) -> MeasurementSet:
        """Measure ``events`` (default: the benchmark's domain sweep)."""
        registry = events if events is not None else self.select_events(benchmark)
        event_list = list(registry)
        if not event_list:
            raise ValueError(f"no events selected for benchmark {benchmark.name!r}")

        activities = benchmark.execute(self.node.machine)
        n_rows = len(activities)
        n_threads = max(len(row) for row in activities)
        if any(len(row) != n_threads for row in activities):
            raise ValueError("ragged thread counts across benchmark rows")

        # The PMU schedule determines how many times the workload must run
        # to cover all events; recorded for realism and diagnostics.
        schedule = self.node.pmu.schedule(event_list)

        env_sigmas = None
        if benchmark.environment_noise is not None:
            lo, hi = benchmark.environment_noise
            env_sigmas = np.array(
                [
                    log_uniform_sigma(e.full_name, lo, hi, salt=f"env:{benchmark.name}")
                    for e in event_list
                ]
            )

        # True counts depend only on (row, thread, event) — hoist them out
        # of the repetition loop (the activity is the shared ground truth
        # of every repetition; only the noise draws differ).
        true_counts = np.zeros((n_threads, n_rows, len(event_list)))
        for thread in range(n_threads):
            for row, row_acts in enumerate(activities):
                activity: Activity = row_acts[thread]
                for j, event in enumerate(event_list):
                    true_counts[thread, row, j] = event.true_count(activity)

        data = np.zeros((self.repetitions, n_threads, n_rows, len(event_list)))
        quiet_run = env_sigmas is None
        batch_shape = (self.repetitions, n_threads, n_rows)
        for j, event in enumerate(event_list):
            if event.noise.is_deterministic and quiet_run:
                # Bit-identical across repetitions: broadcast once.
                data[:, :, :, j] = true_counts[:, :, j][None, :, :]
                continue
            # One stream per (node seed, event): all of this event's draws
            # for the sweep come from it in (rep, thread, row) order.
            rng = self._rng(event.full_name)
            tiled = np.broadcast_to(true_counts[:, :, j], batch_shape)
            readings = event.noise.apply_batch(tiled, rng)
            if not quiet_run:
                readings = readings * (
                    1.0 + rng.normal(0.0, float(env_sigmas[j]), batch_shape)
                )
                np.maximum(readings, 0.0, out=readings)
            data[:, :, :, j] = readings

        measurement = MeasurementSet(
            benchmark=benchmark.name,
            row_labels=benchmark.row_labels(),
            event_names=[e.full_name for e in event_list],
            data=data,
        )
        # Attach scheduling metadata (how many hardware runs were needed).
        measurement.pmu_runs = schedule.n_runs  # type: ignore[attr-defined]
        return measurement
