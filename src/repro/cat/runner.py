"""Benchmark runner: benchmark x events x repetitions -> MeasurementSet.

The runner is CAT's measurement loop: it executes a benchmark's kernels on
a node's machine (once — the simulated activity is the ground truth shared
by all repetitions), schedules the requested events onto the PMU's limited
counters, and produces per-repetition readings by pushing the activity
through each event's response and noise model.

Reproducibility contract: each event's noise draws come from one generator
stream seeded by ``(node seed, event name CRC)``, consumed in
``(repetition, thread, row)`` order, so (a) re-running the same
configuration is bit-identical, (b) deterministic events are *exactly*
identical across repetitions (their max RNMSE is exactly zero, the Fig. 2
zero-noise cluster), (c) noisy events differ per repetition, and (d) noise
decorrelates across rows and threads.  Per-event batching keeps generator
construction off the hot path — the measurement loop is matmul-and-draw,
not 10^5 generator constructions (see ``docs/substrate.md``).

True counts are evaluated through the registry's packed weight matrix
(:meth:`~repro.events.registry.EventRegistry.weight_matrix`): all
``(thread, row)`` activities are packed into one matrix and multiplied
against the ``(keys, events)`` weights, term-ordered so the result is
bit-identical to the scalar ``RawEvent.true_count`` reference.  Events
whose ``true_count`` is overridden (non-linear response) fall back to the
scalar path automatically.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import TYPE_CHECKING, Optional, Protocol, Sequence, Union

import numpy as np

from repro.activity import Activity
from repro.cat.measurement import MeasurementSet
from repro.events.catalogs._builders import log_uniform_sigma
from repro.events.model import RawEvent
from repro.events.registry import EventRegistry
from repro.hardware.systems import MachineNode
from repro.obs import get_tracer

if TYPE_CHECKING:
    from repro.faults import FaultConfig, FaultInjector

__all__ = ["BenchmarkRunner", "CATBenchmark"]


@lru_cache(maxsize=4096)
def _event_crc(event_name: str) -> int:
    """CRC32 of an event name (the per-event noise-stream seed component).

    Cached so repeated sweeps over the same catalog hash each name once;
    ``BenchmarkRunner.run`` builds a per-run table from this cache instead
    of re-encoding and re-hashing inside the per-event loop.
    """
    return zlib.crc32(event_name.encode())


class CATBenchmark(Protocol):
    """Structural interface every CAT benchmark provides."""

    name: str
    measured_domains: Sequence[str]
    environment_noise: Optional[tuple]
    n_threads: int

    def row_labels(self) -> list: ...

    def execute(self, machine) -> list: ...


class BenchmarkRunner:
    """Collects measurements of a benchmark over multiple repetitions.

    ``faults`` optionally wraps the measurement in the fault-injection
    substrate (:mod:`repro.faults`): the run may raise
    :class:`~repro.faults.TransientMeasurementError` before measuring
    (retry with ``attempt + 1``), and the returned readings carry the
    injected dropout/spike/overflow corruption for that attempt.  With
    ``faults=None`` (default) the path is byte-for-byte the unfaulted
    one.
    """

    def __init__(
        self,
        node: MachineNode,
        repetitions: int = 5,
        faults: Optional[Union["FaultConfig", "FaultInjector"]] = None,
    ):
        if repetitions < 2:
            raise ValueError(
                "the noise analysis needs at least two repetitions to "
                "compute pairwise RNMSE"
            )
        self.node = node
        self.repetitions = repetitions
        self.faults = self._as_injector(faults)

    @staticmethod
    def _as_injector(faults):
        if faults is None:
            return None
        from repro.faults import FaultConfig, FaultInjector

        if isinstance(faults, FaultConfig):
            return FaultInjector(faults)
        return faults

    def select_events(self, benchmark: CATBenchmark) -> EventRegistry:
        """The events a blind sweep measures for this benchmark."""
        return self.node.events.select(domains=tuple(benchmark.measured_domains))

    def _rng(self, event_name: str) -> np.random.Generator:
        """The event's measurement-noise stream for this node seed."""
        return np.random.default_rng((self.node.seed, _event_crc(event_name)))

    def run(
        self,
        benchmark: CATBenchmark,
        events: Optional[EventRegistry] = None,
        attempt: int = 0,
    ) -> MeasurementSet:
        """Measure ``events`` (default: the benchmark's domain sweep).

        ``attempt`` only matters under fault injection: it salts the
        per-attempt injection streams so a retry draws a fresh fault
        pattern while a re-run of the same attempt is bit-identical.
        """
        tracer = get_tracer()
        with tracer.span(
            "runner-run", benchmark=benchmark.name, attempt=attempt
        ) as span:
            measurement = self._run_impl(benchmark, events, attempt, tracer)
            span.set(
                events=len(measurement.event_names),
                pmu_runs=measurement.pmu_runs,
            )
        tracer.incr("measure.events", len(measurement.event_names))
        tracer.incr("measure.pmu_runs", measurement.pmu_runs)
        return measurement

    def _run_impl(
        self,
        benchmark: CATBenchmark,
        events: Optional[EventRegistry],
        attempt: int,
        tracer,
    ) -> MeasurementSet:
        context = f"{self.node.name}:{benchmark.name}"
        if self.faults is not None and self.faults.enabled:
            self.faults.check_run_failure(context, attempt)
        registry = events if events is not None else self.select_events(benchmark)
        event_list = list(registry)
        if not event_list:
            raise ValueError(f"no events selected for benchmark {benchmark.name!r}")

        activities = benchmark.execute(self.node.machine)
        n_rows = len(activities)
        n_threads = max(len(row) for row in activities)
        if any(len(row) != n_threads for row in activities):
            raise ValueError("ragged thread counts across benchmark rows")

        # The PMU schedule determines how many times the workload must run
        # to cover all events; recorded for realism and diagnostics.
        schedule = self.node.pmu.schedule(event_list)

        env_sigmas = None
        if benchmark.environment_noise is not None:
            lo, hi = benchmark.environment_noise
            env_sigmas = np.array(
                [
                    log_uniform_sigma(e.full_name, lo, hi, salt=f"env:{benchmark.name}")
                    for e in event_list
                ]
            )

        # True counts depend only on (row, thread, event) — hoist them out
        # of the repetition loop (the activity is the shared ground truth
        # of every repetition; only the noise draws differ).  All linear
        # events evaluate as one packed activity-times-weights product;
        # only events with an overridden true_count loop scalar.
        packed = registry.weight_matrix()
        flat_activities = [
            row_acts[thread]
            for thread in range(n_threads)
            for row_acts in activities
        ]
        activity_matrix = packed.pack_activities(flat_activities)
        flat_counts = packed.true_counts(activity_matrix)
        if packed.fallback:
            tracer.incr("measure.fallback_events", len(packed.fallback))
        for j, event in packed.fallback:
            for i, activity in enumerate(flat_activities):
                flat_counts[i, j] = event.true_count(activity)
        true_counts = flat_counts.reshape(n_threads, n_rows, len(event_list))

        data = np.zeros((self.repetitions, n_threads, n_rows, len(event_list)))
        quiet_run = env_sigmas is None
        batch_shape = (self.repetitions, n_threads, n_rows)
        # Per-run seed table: CRCs hashed once, outside the event loop.
        crc_table = [_event_crc(e.full_name) for e in event_list]
        # Deterministic events on a quiet run are bit-identical across
        # repetitions: one broadcast assignment covers them all.
        noisy_cols = []
        if quiet_run:
            det = [j for j, e in enumerate(event_list) if e.noise.is_deterministic]
            if det:
                data[:, :, :, det] = true_counts[:, :, det][None, :, :]
            noisy_cols = [
                j for j, e in enumerate(event_list) if not e.noise.is_deterministic
            ]
        else:
            noisy_cols = list(range(len(event_list)))
        for j in noisy_cols:
            event = event_list[j]
            # One stream per (node seed, event): all of this event's draws
            # for the sweep come from it in (rep, thread, row) order.
            rng = np.random.default_rng((self.node.seed, crc_table[j]))
            tiled = np.broadcast_to(true_counts[:, :, j], batch_shape)
            readings = event.noise.apply_batch(tiled, rng)
            if not quiet_run:
                readings = readings * (
                    1.0 + rng.normal(0.0, float(env_sigmas[j]), batch_shape)
                )
                np.maximum(readings, 0.0, out=readings)
            data[:, :, :, j] = readings

        measurement = MeasurementSet(
            benchmark=benchmark.name,
            row_labels=benchmark.row_labels(),
            event_names=[e.full_name for e in event_list],
            data=data,
            # Scheduling metadata: how many hardware runs the sweep cost.
            pmu_runs=schedule.n_runs,
        )
        if self.faults is not None and self.faults.enabled:
            measurement = self.faults.corrupt_measurement(
                measurement, context, attempt
            )
        return measurement
