"""The robustness audit: every injected fault, and what became of it.

The acceptance bar for the fault-injection substrate is accountability:
a fault may be *recovered* (repaired or successfully retried), *excluded*
(a corrupted repetition rejected by quorum), or *degraded* (an event lost,
pipeline continuing without it) — but never silent.  The report is where
that bar is enforced: it reconciles the injector's record log against the
scrubber's actions and the retry bookkeeping, and :meth:`unaccounted`
returns whatever slipped through (tests assert it is empty).

Reports are plain picklable dataclasses so sweep workers can ship them
back inside :class:`~repro.core.pipeline.PipelineResult`, and
:func:`merge_reports` folds many per-task reports into one sweep-level
audit for the CLI table.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.faults.model import FaultRecord
from repro.faults.scrub import ScrubAction

__all__ = ["RobustnessReport", "merge_reports"]

#: Scrub action -> fault outcome vocabulary.
_ACTION_OUTCOME = {
    "imputed": "recovered",
    "excluded": "excluded",
    "dropped-event": "degraded",
}


@dataclass
class RobustnessReport:
    """Audit trail of one faulted execution (pipeline or sweep task).

    Attributes
    ----------
    context:
        What was being executed (e.g. ``aurora:branch``).
    records:
        Every fault the injector fired, with its final outcome.
    scrub_actions:
        Every repair the scrubber performed (including repairs of
        organically corrupted data, not only injected faults).
    retries:
        Human-readable notes of retry decisions ("measurement attempt 0
        failed, retried", "task crashed, attempt 2 succeeded").
    degraded:
        Whether the pipeline lost events and continued in degraded mode.
    cache_quarantined:
        Keys of cache entries this execution's cache layer quarantined.
        Carried in the report because in a shared-cache sweep the task
        that *corrupts* an entry and the task that *detects* it are
        usually different: reconciliation needs the union of everyone's
        quarantines (see :func:`merge_reports`).
    """

    context: str = ""
    records: List[FaultRecord] = field(default_factory=list)
    scrub_actions: List[ScrubAction] = field(default_factory=list)
    retries: List[str] = field(default_factory=list)
    degraded: bool = False
    cache_quarantined: List[str] = field(default_factory=list)

    # -- reconciliation -----------------------------------------------
    def reconcile_scrub(self, actions: Sequence[ScrubAction]) -> None:
        """Fold scrub decisions in and settle matching injected records.

        Cell-level records settle against the action at the same
        ``(event, coords)``; an event-level drop settles every remaining
        record of that event as degraded.
        """
        self.scrub_actions.extend(actions)
        by_cell: Dict[object, str] = {}
        dropped = set()
        for action in actions:
            outcome = _ACTION_OUTCOME.get(action.action)
            if outcome is None:
                continue
            if action.action == "dropped-event":
                dropped.add(action.event)
            elif action.coords is not None:
                by_cell[(action.event, action.coords)] = outcome
        for record in self.records:
            if record.outcome != "injected":
                continue
            if record.event in dropped:
                record.outcome = "degraded"
            elif record.cell_key is not None and record.cell_key in by_cell:
                record.outcome = by_cell[record.cell_key]
        if dropped:
            self.degraded = True

    def mark_retried(self, kind: str, context: str, note: str) -> None:
        """Settle the open records of one failure site as recovered-by-retry."""
        self.retries.append(note)
        for record in self.records:
            if (
                record.outcome == "injected"
                and record.kind == kind
                and record.context == context
            ):
                record.outcome = "recovered"

    def mark_cache_recovered(self, quarantined_keys: Iterable[str]) -> None:
        """Settle cache-corruption records whose entry was quarantined and
        transparently re-measured."""
        keys = set(quarantined_keys)
        for record in self.records:
            if record.outcome == "injected" and record.kind == "cache-corruption":
                if any(key in record.context for key in keys):
                    record.outcome = "recovered"

    # -- audit ---------------------------------------------------------
    def unaccounted(self) -> List[FaultRecord]:
        """Injected faults no layer claimed — must be empty."""
        return [r for r in self.records if r.outcome == "injected"]

    @property
    def n_injected(self) -> int:
        return len(self.records)

    def outcome_counts(self) -> Dict[str, Counter]:
        """``{kind: Counter(outcome -> n)}`` over all records."""
        counts: Dict[str, Counter] = {}
        for record in self.records:
            counts.setdefault(record.kind, Counter())[record.outcome] += 1
        return counts

    def table(self) -> str:
        """Aligned text table: injected faults vs their dispositions."""
        header = f"{'fault kind':<18} {'injected':>8} {'recovered':>9} {'excluded':>8} {'degraded':>8} {'silent':>6}"
        lines = [header, "-" * len(header)]
        counts = self.outcome_counts()
        for kind in sorted(counts):
            c = counts[kind]
            total = sum(c.values())
            lines.append(
                f"{kind:<18} {total:>8} {c.get('recovered', 0):>9} "
                f"{c.get('excluded', 0):>8} {c.get('degraded', 0):>8} "
                f"{c.get('injected', 0):>6}"
            )
        if not counts:
            lines.append(f"{'(none)':<18} {0:>8} {0:>9} {0:>8} {0:>8} {0:>6}")
        if self.retries:
            lines.append("")
            lines.append("retries:")
            lines.extend(f"  {note}" for note in self.retries)
        extra_repairs = [
            a
            for a in self.scrub_actions
            if not any(r.cell_key == (a.event, a.coords) for r in self.records)
            and a.action != "dropped-event"
        ]
        if extra_repairs:
            lines.append("")
            lines.append(
                f"scrub repairs of non-injected corruption: {len(extra_repairs)}"
            )
        status = "DEGRADED" if self.degraded else "ok"
        lines.append("")
        lines.append(
            f"status: {status}; {self.n_injected} fault(s) injected, "
            f"{len(self.unaccounted())} unaccounted"
        )
        return "\n".join(lines)


def merge_reports(
    reports: Iterable[Optional["RobustnessReport"]], context: str = "sweep"
) -> RobustnessReport:
    """Fold per-task reports into one sweep-level audit.

    Cache-corruption records are reconciled against the *union* of every
    task's quarantined keys: with a shared cache directory, the task that
    corrupts an entry and the task whose read detects it are usually
    different, so the per-task reconciliation cannot settle them.
    """
    merged = RobustnessReport(context=context)
    for report in reports:
        if report is None:
            continue
        merged.records.extend(report.records)
        merged.scrub_actions.extend(report.scrub_actions)
        merged.retries.extend(
            f"[{report.context}] {note}" for note in report.retries
        )
        merged.degraded = merged.degraded or report.degraded
        merged.cache_quarantined.extend(report.cache_quarantined)
    if merged.cache_quarantined:
        merged.mark_cache_recovered(merged.cache_quarantined)
    return merged
