"""Fault model: what can go wrong, how often, and under which seed.

Real PMUs are hostile instruments.  Röhl et al. ("Validation of hardware
events for successful performance pattern identification") show raw events
that are noisy or outright wrong; multiplexed counters are scheduled out
and report zeros for runs they never observed; 32/48-bit counters saturate
and wrap; SMIs corrupt single repetitions; batch workers crash or hang.
:class:`FaultConfig` names each of those pathologies with an injection
rate, and the whole model hangs off one seed so an injected universe is
exactly reproducible: the same configuration injects the same faults at
the same coordinates, no matter how execution is ordered or parallelized.

Everything here is a plain frozen dataclass so fault configurations travel
across process boundaries (sweep workers receive them inside pickled
tasks) and fold into content digests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FaultConfig",
    "FaultRecord",
    "TransientMeasurementError",
    "InjectedWorkerCrash",
    "parse_fault_spec",
]


class TransientMeasurementError(RuntimeError):
    """A measurement run failed transiently (counter read error, scheduler
    preemption, ...) and may succeed if re-attempted."""


class InjectedWorkerCrash(RuntimeError):
    """A sweep worker was killed mid-task by the fault injector."""


@dataclass(frozen=True)
class FaultConfig:
    """Rates and shapes of every injectable pathology.

    All rates default to zero: a default config injects nothing, and a
    zero-rate path is bit-identical to running without the injector at
    all (property-tested).

    Parameters
    ----------
    seed:
        Root of every injection stream.  Streams are derived per
        ``(seed, site)`` so injection decisions are independent of
        execution order — a parallel sweep injects exactly the faults a
        serial sweep would.
    dropout_rate:
        Probability an individual reading cell is lost to multiplexing
        (the event was scheduled out for that run).  Lost cells read as
        ``dropout_value`` (NaN by default; 0.0 mimics PMUs that report
        zero instead).
    overflow_bits:
        When nonzero, counter values wrap modulo ``2**overflow_bits``
        with probability ``overflow_rate`` per cell (only cells whose
        value actually exceeds the modulus are affected, as on hardware).
    spike_rate / spike_scale:
        Probability a cell is corrupted by a multiplicative spike (an
        SMI or co-scheduled interference burst) of factor ``spike_scale``.
    run_failure_rate:
        Probability one whole measurement invocation raises
        :class:`TransientMeasurementError` before producing data.
    crash_rate / hang_rate / hang_seconds:
        Per-task probabilities that a sweep worker raises
        :class:`InjectedWorkerCrash` or sleeps ``hang_seconds`` (to be
        caught by the engine's task timeout).
    cache_corruption_rate:
        Probability :meth:`FaultInjector.maybe_corrupt_cache` truncates
        an existing on-disk cache entry (exercising checksum quarantine).
    transient:
        When true (default), run failures, crashes and hangs fire only on
        a context's first attempt — the realistic "works on retry" shape.
        When false they fire on every attempt, which is how tests probe
        retry exhaustion.
    """

    seed: int = 0
    dropout_rate: float = 0.0
    dropout_value: float = float("nan")
    overflow_bits: int = 0
    overflow_rate: float = 0.0
    spike_rate: float = 0.0
    spike_scale: float = 1e3
    run_failure_rate: float = 0.0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 30.0
    cache_corruption_rate: float = 0.0
    transient: bool = True

    def __post_init__(self) -> None:
        for name in (
            "dropout_rate",
            "overflow_rate",
            "spike_rate",
            "run_failure_rate",
            "crash_rate",
            "hang_rate",
            "cache_corruption_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {rate}")
        if self.overflow_bits < 0:
            raise ValueError("overflow_bits must be >= 0")
        if self.spike_scale <= 0:
            raise ValueError("spike_scale must be positive")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")

    @property
    def any_measurement_faults(self) -> bool:
        """Whether any per-cell corruption can fire."""
        return (
            self.dropout_rate > 0
            or self.spike_rate > 0
            or (self.overflow_rate > 0 and self.overflow_bits > 0)
        )

    @property
    def enabled(self) -> bool:
        """Whether this config can inject anything at all."""
        return (
            self.any_measurement_faults
            or self.run_failure_rate > 0
            or self.crash_rate > 0
            or self.hang_rate > 0
            or self.cache_corruption_rate > 0
        )

    def describe(self) -> str:
        """Compact ``key=value`` rendering of the nonzero rates."""
        parts = [f"seed={self.seed}"]
        for f in fields(self):
            if f.name == "seed":
                continue
            value = getattr(self, f.name)
            if value != f.default and not (
                isinstance(value, float)
                and isinstance(f.default, float)
                and value != value  # NaN default
                and f.default != f.default
            ):
                parts.append(f"{f.name}={value}")
        return ",".join(parts)


@dataclass
class FaultRecord:
    """One injected fault (or one disposition of an injected fault).

    ``coords`` pins measurement-cell faults to ``(rep, thread, row)`` so a
    scrub decision can be reconciled against the injection that caused it;
    site-level faults (crashes, run failures, cache corruption) leave it
    ``None``.  ``outcome`` starts as ``"injected"`` and is rewritten by
    whichever layer handled the fault: ``recovered`` (value repaired or
    work retried successfully), ``excluded`` (a corrupted repetition was
    rejected by quorum), ``degraded`` (the event was lost and the
    pipeline continued without it).  The acceptance bar is that no record
    is ever left ``injected`` — silence is the one unacceptable outcome.
    """

    kind: str  # dropout | spike | overflow | run-failure | crash | hang | cache-corruption
    context: str  # e.g. "aurora:branch" or a cache key
    event: Optional[str] = None
    coords: Optional[Tuple[int, int, int]] = None  # (rep, thread, row)
    outcome: str = "injected"
    detail: str = ""

    @property
    def cell_key(self) -> Optional[Tuple[str, Tuple[int, int, int]]]:
        if self.event is None or self.coords is None:
            return None
        return (self.event, self.coords)


_SPEC_ALIASES: Dict[str, str] = {
    "dropout": "dropout_rate",
    "spike": "spike_rate",
    "overflow": "overflow_rate",
    "run_failure": "run_failure_rate",
    "runfail": "run_failure_rate",
    "crash": "crash_rate",
    "hang": "hang_rate",
    "cache": "cache_corruption_rate",
}

_BOOL_FIELDS = ("transient",)
_INT_FIELDS = ("seed", "overflow_bits")


def parse_fault_spec(spec: str) -> FaultConfig:
    """Parse a compact CLI fault spec into a :class:`FaultConfig`.

    The spec is ``key=value`` pairs separated by commas, e.g.::

        seed=7,dropout=0.02,spike=0.01,crash=0.3,overflow=0.05,overflow_bits=32

    Short aliases map to the rate fields (``dropout`` ->
    ``dropout_rate``); full field names are accepted too.
    """
    valid = {f.name for f in fields(FaultConfig)}
    kwargs: Dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad fault spec term {part!r}: expected key=value"
            )
        key, _, raw = part.partition("=")
        key = key.strip()
        field_name = _SPEC_ALIASES.get(key, key)
        if field_name not in valid:
            raise ValueError(
                f"unknown fault spec key {key!r}; known keys: "
                f"{sorted(valid | set(_SPEC_ALIASES))}"
            )
        raw = raw.strip()
        if field_name in _BOOL_FIELDS:
            kwargs[field_name] = raw.lower() in ("1", "true", "yes", "on")
        elif field_name in _INT_FIELDS:
            kwargs[field_name] = int(raw)
        else:
            kwargs[field_name] = float(raw)
    return FaultConfig(**kwargs)
