"""Serve-layer chaos: deterministic fault sites above the pipeline.

:mod:`repro.faults` (PR 2) stops at the measurement path — dropouts,
spikes, crashed sweep workers.  The serving tier has its own failure
vocabulary: a worker *process* SIGKILLed mid-batch, an event loop that
wedges, a catalog publication torn by power loss, a listener that drops
the socket before answering, injected latency.  :class:`ChaosConfig`
names those pathologies and :class:`ChaosInjector` fires them with the
exact discipline the measurement injector established: every decision is
drawn from its own stream keyed by ``(seed, kind, site)`` — a pure
function of the configuration and the site name, independent of
execution order, process boundaries, or how many times other sites were
consulted.  A closed-loop chaos drill that names its sites by request
ordinal therefore injects the same faults on every run.

Site conventions (what the serving tier passes as ``site``):

========================  =============================================
``dispatch:<n>``          the supervisor's n-th proxied request
                          (worker kills fire here)
``request:<worker>:<n>``  the n-th request a worker listener accepted
                          (hangs, socket drops, latency fire here)
``catalog.publish:...``   one catalog publication (see
                          :meth:`MetricCatalogStore._publish_site`;
                          torn/unlogged publications fire here)
========================  =============================================

Like the measurement-path model, a zero-rate config injects nothing and
the chaos-wrapped serving path is behaviourally identical to the
unwrapped one (property: the chaos drill with a zero spec produces
responses bit-identical to single-service serving).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional

from repro.faults.injector import _site_rng
from repro.faults.model import FaultRecord
from repro.obs import get_tracer

__all__ = ["ChaosConfig", "ChaosInjector", "parse_chaos_spec"]


@dataclass(frozen=True)
class ChaosConfig:
    """Rates of every injectable serve-layer pathology.

    All rates default to zero: a default config injects nothing.

    Parameters
    ----------
    seed:
        Root of every injection stream (per-(seed, kind, site) streams,
        see module docstring).
    worker_kill_rate:
        Probability the supervisor SIGKILLs the worker it just dispatched
        a request to — the request dies mid-flight and must be
        re-dispatched; the worker must be detected and restarted.
    worker_hang_rate / hang_seconds:
        Probability a worker's event loop blocks for ``hang_seconds``
        while handling a request.  A hang longer than the supervisor's
        heartbeat timeout is indistinguishable from a wedged process and
        triggers kill + restart.
    torn_publication_rate:
        Probability a catalog publication is torn: a truncated version
        file reaches disk, no log record does (simulated power loss
        mid-publish; ``catalog fsck`` must quarantine it).
    unlogged_publication_rate:
        Probability a publication completes but its log append is lost
        (power loss after rename; fsck re-appends the record).
    socket_drop_rate:
        Probability the listener closes a client connection without
        sending any response — the retrying client's problem.
    latency_rate / latency_seconds:
        Probability (and size of) injected response latency, for
        exercising client deadlines and hedging.
    """

    seed: int = 0
    worker_kill_rate: float = 0.0
    worker_hang_rate: float = 0.0
    hang_seconds: float = 2.0
    torn_publication_rate: float = 0.0
    unlogged_publication_rate: float = 0.0
    socket_drop_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "worker_kill_rate",
            "worker_hang_rate",
            "torn_publication_rate",
            "unlogged_publication_rate",
            "socket_drop_rate",
            "latency_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {rate}")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether this config can inject anything at all."""
        return any(
            getattr(self, f.name) > 0
            for f in fields(self)
            if f.name.endswith("_rate")
        )

    def describe(self) -> str:
        """Compact ``key=value`` rendering of the nonzero knobs."""
        parts = [f"seed={self.seed}"]
        for f in fields(self):
            if f.name == "seed":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value}")
        return ",".join(parts)


#: kind name (as consulted by the serving tier) -> rate field
_RATE_BY_KIND: Dict[str, str] = {
    "worker-kill": "worker_kill_rate",
    "worker-hang": "worker_hang_rate",
    "torn-publication": "torn_publication_rate",
    "unlogged-publication": "unlogged_publication_rate",
    "socket-drop": "socket_drop_rate",
    "latency": "latency_rate",
}

_SPEC_ALIASES: Dict[str, str] = {
    "kill": "worker_kill_rate",
    "worker_kill": "worker_kill_rate",
    "hang": "worker_hang_rate",
    "worker_hang": "worker_hang_rate",
    "torn": "torn_publication_rate",
    "torn_publication": "torn_publication_rate",
    "unlogged": "unlogged_publication_rate",
    "drop": "socket_drop_rate",
    "socket_drop": "socket_drop_rate",
    "latency": "latency_rate",
}

_INT_FIELDS = ("seed",)


def parse_chaos_spec(spec: str) -> ChaosConfig:
    """Parse a compact CLI chaos spec into a :class:`ChaosConfig`.

    Same grammar as :func:`repro.faults.parse_fault_spec`::

        seed=7,kill=0.2,torn=0.3,drop=0.1,latency=0.5,latency_seconds=0.01
    """
    valid = {f.name for f in fields(ChaosConfig)}
    kwargs: Dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad chaos spec term {part!r}: expected key=value")
        key, _, raw = part.partition("=")
        key = key.strip()
        field_name = _SPEC_ALIASES.get(key, key)
        if field_name not in valid:
            raise ValueError(
                f"unknown chaos spec key {key!r}; known keys: "
                f"{sorted(valid | set(_SPEC_ALIASES))}"
            )
        raw = raw.strip()
        if field_name in _INT_FIELDS:
            kwargs[field_name] = int(raw)
        else:
            kwargs[field_name] = float(raw)
    return ChaosConfig(**kwargs)


class ChaosInjector:
    """Fires :class:`ChaosConfig` pathologies at named serve-layer sites.

    One injector is scoped to one process (supervisor or worker); its
    ``records`` list is the ground truth of what was injected there, in
    the same :class:`~repro.faults.model.FaultRecord` shape the
    measurement-path audit uses.  Decisions are stateless per site:
    consulting the same ``(kind, site)`` twice returns the same answer.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.records: List[FaultRecord] = []

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def fires(self, kind: str, site: str) -> bool:
        """Whether fault ``kind`` fires at ``site`` (deterministic)."""
        rate_field = _RATE_BY_KIND.get(kind)
        if rate_field is None:
            raise ValueError(
                f"unknown chaos kind {kind!r}; known: {sorted(_RATE_BY_KIND)}"
            )
        rate = getattr(self.config, rate_field)
        if rate <= 0.0:
            return False
        rng = _site_rng(self.config.seed, f"chaos:{kind}:{site}")
        if rng.random() >= rate:
            return False
        self.records.append(
            FaultRecord(kind=f"chaos-{kind}", context=site, detail="serve-layer")
        )
        get_tracer().incr(f"chaos.injected.{kind}")
        return True

    def latency(self, site: str) -> float:
        """Injected latency (seconds) for ``site``; 0.0 when none fires."""
        if self.fires("latency", site):
            return self.config.latency_seconds
        return 0.0

    def catalog_failpoint(self, site: str) -> Optional[str]:
        """:class:`MetricCatalogStore` ``failpoint`` adapter: maps the
        publication site to a ``"torn"`` / ``"unlogged"`` action."""
        if self.fires("torn-publication", site):
            return "torn"
        if self.fires("unlogged-publication", site):
            return "unlogged"
        return None
