"""Deterministic fault injection over the measurement and sweep paths.

The injector is the runtime half of the fault model: given a
:class:`~repro.faults.model.FaultConfig` it decides, for every injection
site, whether a fault fires and what it does.  Every decision comes from
its own generator stream seeded by ``(config.seed, crc32(site))`` — never
from a shared sequential stream — so decisions are a pure function of the
configuration and the site name.  A parallel sweep, a serial sweep, and a
resumed sweep all inject exactly the same faults, which is what makes the
resilience tests able to assert bit-identical final artifacts.

The injector also keeps a log of every fault it actually injected
(:class:`~repro.faults.model.FaultRecord`); the recovery layers rewrite
each record's outcome, and :class:`~repro.faults.report.RobustnessReport`
audits that none stayed silent.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.cat.measurement import MeasurementSet
from repro.faults.model import (
    FaultConfig,
    FaultRecord,
    InjectedWorkerCrash,
    TransientMeasurementError,
)
from repro.obs import get_tracer

__all__ = ["FaultInjector"]


def _site_rng(seed: int, site: str) -> np.random.Generator:
    """One independent stream per (seed, site) — order-independent."""
    return np.random.default_rng((seed, zlib.crc32(site.encode())))


class FaultInjector:
    """Applies a :class:`FaultConfig` at the measurement and sweep sites.

    One injector instance is scoped to one pipeline (or one sweep task)
    execution; its ``records`` list is the ground truth of what was
    injected there.
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self.records: List[FaultRecord] = []

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # -- measurement corruption ---------------------------------------
    def corrupt_measurement(
        self, measurement: MeasurementSet, context: str, attempt: int = 0
    ) -> MeasurementSet:
        """A corrupted copy of ``measurement`` (or the original object
        untouched when no cell-level fault fires).

        Dropouts, spikes and overflow wraps are drawn per cell from
        streams keyed by ``(context, event, attempt)``: re-measuring the
        same context (a retry) draws a fresh corruption pattern, while
        re-running the same attempt reproduces it bit-exactly.
        """
        config = self.config
        if not config.any_measurement_faults:
            return measurement

        data = measurement.data
        cell_shape = data.shape[:3]  # (reps, threads, rows)
        new_data: Optional[np.ndarray] = None
        modulus = float(2**config.overflow_bits) if config.overflow_bits else 0.0

        for j, event in enumerate(measurement.event_names):
            site = f"measure:{context}:{event}:attempt{attempt}"
            rng = _site_rng(config.seed, site)
            # Draw every mask from one stream in a fixed order so the
            # pattern is stable regardless of which rates are zero.
            drop = rng.random(cell_shape) < config.dropout_rate
            spike = rng.random(cell_shape) < config.spike_rate
            wrap = rng.random(cell_shape) < config.overflow_rate
            if modulus > 0:
                wrap &= data[:, :, :, j] >= modulus
            else:
                wrap[:] = False
            # A spike on a zero count changes nothing — not a fault.
            spike &= data[:, :, :, j] != 0.0
            spike &= ~drop
            wrap &= ~drop & ~spike
            if not (drop.any() or spike.any() or wrap.any()):
                continue
            if new_data is None:
                new_data = data.copy()
            col = new_data[:, :, :, j]
            col[spike] *= config.spike_scale
            if modulus > 0:
                col[wrap] = np.mod(col[wrap], modulus)
            col[drop] = config.dropout_value
            for kind, mask in (("dropout", drop), ("spike", spike), ("overflow", wrap)):
                fired = int(mask.sum())
                if fired:
                    get_tracer().incr(f"faults.injected.{kind}", fired)
                for rep, thread, row in zip(*np.nonzero(mask)):
                    self.records.append(
                        FaultRecord(
                            kind=kind,
                            context=context,
                            event=event,
                            coords=(int(rep), int(thread), int(row)),
                            detail=f"attempt {attempt}",
                        )
                    )

        if new_data is None:
            return measurement
        return MeasurementSet(
            benchmark=measurement.benchmark,
            row_labels=list(measurement.row_labels),
            event_names=list(measurement.event_names),
            data=new_data,
            pmu_runs=measurement.pmu_runs,
        )

    # -- whole-run / whole-task faults --------------------------------
    def _attempt_fires(self, rate: float, site: str, attempt: int) -> bool:
        if rate <= 0:
            return False
        if self.config.transient and attempt > 0:
            return False
        return bool(_site_rng(self.config.seed, f"{site}:attempt{attempt}").random() < rate)

    def check_run_failure(self, context: str, attempt: int = 0) -> None:
        """Raise :class:`TransientMeasurementError` when this measurement
        attempt is injected to fail."""
        if self._attempt_fires(
            self.config.run_failure_rate, f"run-failure:{context}", attempt
        ):
            self.records.append(
                FaultRecord(
                    kind="run-failure",
                    context=context,
                    detail=f"attempt {attempt}",
                )
            )
            get_tracer().incr("faults.injected.run-failure")
            raise TransientMeasurementError(
                f"injected transient measurement failure ({context}, attempt {attempt})"
            )

    def check_worker_crash(self, context: str, attempt: int = 0) -> None:
        """Raise :class:`InjectedWorkerCrash` when this task attempt is
        injected to crash."""
        if self._attempt_fires(self.config.crash_rate, f"crash:{context}", attempt):
            self.records.append(
                FaultRecord(kind="crash", context=context, detail=f"attempt {attempt}")
            )
            get_tracer().incr("faults.injected.crash")
            raise InjectedWorkerCrash(
                f"injected worker crash ({context}, attempt {attempt})"
            )

    def hang_duration(self, context: str, attempt: int = 0) -> float:
        """Seconds this task attempt should hang (0.0 = no hang)."""
        if self._attempt_fires(self.config.hang_rate, f"hang:{context}", attempt):
            self.records.append(
                FaultRecord(kind="hang", context=context, detail=f"attempt {attempt}")
            )
            get_tracer().incr("faults.injected.hang")
            return self.config.hang_seconds
        return 0.0

    # -- cache corruption ----------------------------------------------
    def corrupt_cache_file(self, path: Union[str, Path]) -> bool:
        """Truncate one on-disk cache artifact to half its size (simulating
        a partial write / torn page).  Returns whether anything changed."""
        path = Path(path)
        if not path.exists():
            return False
        blob = path.read_bytes()
        path.write_bytes(blob[: max(1, len(blob) // 2)])
        self.records.append(
            FaultRecord(kind="cache-corruption", context=str(path))
        )
        get_tracer().incr("faults.injected.cache-corruption")
        return True

    def maybe_corrupt_cache(self, root: Union[str, Path], context: str) -> int:
        """Corrupt existing ``.npz`` entries under a cache root with the
        configured probability (one independent decision per entry).

        Returns the number of entries corrupted.  Decisions are keyed by
        entry name, not directory order, so they are reproducible.
        """
        rate = self.config.cache_corruption_rate
        if rate <= 0:
            return 0
        root = Path(root)
        if not root.exists():
            return 0
        corrupted = 0
        for npz in sorted(root.rglob("*.npz")):
            if "quarantine" in npz.parts:
                continue
            site = f"cache:{context}:{npz.stem}"
            if _site_rng(self.config.seed, site).random() < rate:
                if self.corrupt_cache_file(npz):
                    corrupted += 1
        return corrupted
