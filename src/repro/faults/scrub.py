"""Quorum scrubbing: detect and repair corrupted measurement cells.

The noise filter (paper Section IV) protects the analysis from *statistical*
noise, but injected-style pathologies — multiplexing dropouts (NaN/zero
cells), saturation wraps, single-repetition spikes — are structural: one
glitched repetition can push an otherwise pristine event over tau and cost
the analysis a basis dimension.  The scrubber runs before the noise filter
and applies a quorum policy across repetitions:

* a cell is an **outlier** when it deviates from the median across
  repetitions by more than ``outlier_threshold`` (relative);
* if at least ``quorum`` of the repetitions agree with each other (sit
  within the threshold of their median), the outlier is *excluded*: its
  value is replaced by the median of the agreeing repetitions;
* a NaN cell (dropout) is *recovered* by imputing the median of the
  non-NaN repetitions;
* an event with a cell no quorum can repair (too many repetitions lost
  or disagreeing) is *degraded*: dropped from the measurement entirely,
  and the pipeline continues over the survivors with its degraded flag
  raised.

Every decision is returned as a :class:`ScrubAction` carrying the exact
cell coordinates, so the robustness report can reconcile each injected
fault with what happened to it.  Scrubbing an uncorrupted measurement is
the identity: no NaN, no outliers -> the input object is returned
untouched (property-tested, and the reason the zero-fault pipeline stays
bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.cat.measurement import MeasurementSet
from repro.obs import get_tracer

__all__ = ["ScrubAction", "ScrubPolicy", "ScrubResult", "scrub_measurement"]


@dataclass(frozen=True)
class ScrubPolicy:
    """Knobs of the quorum repair.

    Deviation is measured symmetrically, ``|x - c| / max(|c|, |x|)``,
    which maps any corruption ratio r to ``1 - 1/r`` regardless of the
    event's magnitude: a x1000 spike, a zero dropout and an overflow
    wrap all score ~1.0, while legitimate noise — even the heavy-tailed
    ~10%-sigma cache regime — stays far below.  The default
    ``outlier_threshold`` of 0.8 therefore means "a 5x disagreement",
    cleanly between the two populations.  ``quorum`` is the fraction of
    repetitions that must agree for the majority value to be trusted.
    """

    outlier_threshold: float = 0.8
    quorum: float = 0.6
    # Events whose repetitions disagree *broadly* (outlier fraction above
    # this) are not corrupted — they are intrinsically noisy, Section-IV
    # territory.  The scrubber leaves them alone and the tau filter
    # excludes them; only sparse, structural corruption is repaired here.
    max_outlier_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.outlier_threshold <= 0:
            raise ValueError("outlier_threshold must be positive")
        if not 0.5 < self.quorum <= 1.0:
            raise ValueError("quorum must be in (0.5, 1.0]")
        if not 0.0 < self.max_outlier_fraction <= 1.0:
            raise ValueError("max_outlier_fraction must be in (0, 1]")


@dataclass
class ScrubAction:
    """One repair decision at one cell (or one whole-event drop)."""

    action: str  # imputed | excluded | dropped-event
    event: str
    coords: Optional[Tuple[int, int, int]] = None  # (rep, thread, row)
    detail: str = ""


@dataclass
class ScrubResult:
    """The scrubbed measurement plus the audit trail."""

    measurement: MeasurementSet
    actions: List[ScrubAction] = field(default_factory=list)
    dropped_events: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether any event was lost outright."""
        return bool(self.dropped_events)

    @property
    def clean(self) -> bool:
        return not self.actions


def scrub_measurement(
    measurement: MeasurementSet, policy: ScrubPolicy = ScrubPolicy()
) -> ScrubResult:
    """Repair ``measurement`` under ``policy``.

    Returns the input object itself (not a copy) when nothing needed
    repair, so the zero-fault path stays bit-identical and allocation-free.
    """
    data = measurement.data
    nan_mask = np.isnan(data)
    reps = data.shape[0]
    actions: List[ScrubAction] = []

    # Median over the valid repetitions of each (thread, row, event) cell
    # is the quorum candidate value.
    if nan_mask.any():
        import warnings

        with warnings.catch_warnings():
            # An all-NaN cell yields a NaN center; it is caught below by
            # the quorum check (0 agreeing reps), not worth a warning.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            center = np.nanmedian(data, axis=0)  # (threads, rows, events)
    else:
        center = np.median(data, axis=0)

    # Symmetric relative deviation of every cell from its repetition-
    # median: |x - c| / max(|c|, |x|), in [0, 1] — see ScrubPolicy.  The
    # tiny floor only guards 0/0 (identical zero cells -> deviation 0).
    with np.errstate(invalid="ignore"):
        scale = np.maximum(
            np.maximum(np.abs(center)[None, ...], np.abs(data)),
            np.finfo(np.float64).tiny,
        )
        deviation = np.abs(data - center[None, ...]) / scale
    outlier = deviation > policy.outlier_threshold
    outlier &= ~nan_mask

    # Broadly disagreeing events are noise, not corruption: hands off.
    # (NaN dropouts are always structural and stay in scope.)
    n_cells = float(np.prod(data.shape[:3]))
    outlier_fraction = outlier.sum(axis=(0, 1, 2)) / n_cells
    noisy_event = outlier_fraction > policy.max_outlier_fraction
    if noisy_event.any():
        outlier[:, :, :, noisy_event] = False

    if not nan_mask.any() and not outlier.any():
        return ScrubResult(measurement=measurement)

    # Two quorum checks per (thread, row, event) cell group, both needing
    # ceil(quorum * reps) repetitions:
    # * imputing a NaN dropout needs enough *valid* (non-NaN) reps — the
    #   median is robust to an outlier among them;
    # * excluding an outlier needs enough reps *agreeing* with the median
    #   (valid and within threshold), otherwise the disagreement is
    #   noise-shaped and the tau filter is the right judge.
    need = int(np.ceil(policy.quorum * reps))
    n_valid = (~nan_mask).sum(axis=0)  # (threads, rows, events)
    n_agree = ((~nan_mask) & (~outlier)).sum(axis=0)
    outlier &= (n_agree >= need)[None, ...]
    # A NaN cell without a valid quorum is data that cannot be
    # reconstructed: the event is lost (degraded).
    irreparable = (nan_mask & (n_valid < need)[None, ...]).any(axis=(0, 1, 2))

    new_data = data.copy()
    dropped: List[str] = []
    keep_idx: List[int] = []
    for j, event in enumerate(measurement.event_names):
        if irreparable[j]:
            dropped.append(event)
            n_lost = int(nan_mask[:, :, :, j].sum())
            actions.append(
                ScrubAction(
                    action="dropped-event",
                    event=event,
                    detail=f"{n_lost} cells lost without quorum to impute",
                )
            )
            continue
        keep_idx.append(j)
        col_nan = nan_mask[:, :, :, j]
        col_out = outlier[:, :, :, j]
        if col_nan.any():
            # Median of the agreeing repetitions (the NaN cells are already
            # excluded from the center by nanmedian).
            fill = np.broadcast_to(center[:, :, j], col_nan.shape)
            new_data[:, :, :, j][col_nan] = fill[col_nan]
            for rep, thread, row in zip(*np.nonzero(col_nan)):
                actions.append(
                    ScrubAction(
                        action="imputed",
                        event=event,
                        coords=(int(rep), int(thread), int(row)),
                        detail="dropout imputed from repetition median",
                    )
                )
        if col_out.any():
            fill = np.broadcast_to(center[:, :, j], col_out.shape)
            new_data[:, :, :, j][col_out] = fill[col_out]
            for rep, thread, row in zip(*np.nonzero(col_out)):
                actions.append(
                    ScrubAction(
                        action="excluded",
                        event=event,
                        coords=(int(rep), int(thread), int(row)),
                        detail="outlier repetition rejected by quorum",
                    )
                )

    if dropped:
        new_data = new_data[:, :, :, keep_idx]
        event_names = [measurement.event_names[j] for j in keep_idx]
    else:
        event_names = list(measurement.event_names)

    scrubbed = MeasurementSet(
        benchmark=measurement.benchmark,
        row_labels=list(measurement.row_labels),
        event_names=event_names,
        data=new_data,
        pmu_runs=measurement.pmu_runs,
    )
    if actions:
        tracer = get_tracer()
        for action in actions:
            tracer.incr(f"scrub.{action.action}")
    return ScrubResult(measurement=scrubbed, actions=actions, dropped_events=dropped)
