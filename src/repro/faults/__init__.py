"""Deterministic fault injection and the self-healing substrate around it.

The measurement stack is bit-deterministic and, since PR 1, fast — but it
assumed a clean world.  This package supplies the adversary: a seedable
:class:`FaultConfig` naming real PMU pathologies (multiplexing dropouts,
counter overflow wraps, corruption spikes, transient run failures, worker
crashes and hangs, on-disk cache corruption), a :class:`FaultInjector`
that fires them from order-independent per-site streams, the quorum
:func:`scrub_measurement` repair pass, and the :class:`RobustnessReport`
that audits every injected fault into a recovered / excluded / degraded
disposition — never silence.

See ``docs/robustness.md`` for the fault model and the recovery policies.
"""

from repro.faults.chaos import ChaosConfig, ChaosInjector, parse_chaos_spec
from repro.faults.injector import FaultInjector
from repro.faults.model import (
    FaultConfig,
    FaultRecord,
    InjectedWorkerCrash,
    TransientMeasurementError,
    parse_fault_spec,
)
from repro.faults.report import RobustnessReport, merge_reports
from repro.faults.scrub import (
    ScrubAction,
    ScrubPolicy,
    ScrubResult,
    scrub_measurement,
)

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "FaultConfig",
    "FaultInjector",
    "FaultRecord",
    "InjectedWorkerCrash",
    "RobustnessReport",
    "ScrubAction",
    "ScrubPolicy",
    "ScrubResult",
    "TransientMeasurementError",
    "merge_reports",
    "parse_chaos_spec",
    "parse_fault_spec",
    "scrub_measurement",
]
