"""Conditioning sentinels: cheap numerical-health evidence for QR factors.

Every factorization in the analysis core ends with an upper-triangular
``R``; its diagonal and triangle are enough to estimate — cheaply and
deterministically — everything the pipeline needs to know about how much
the downstream solve can be trusted:

* **Condition estimate.**  The diagonal ratio ``max|r_ii| / min|r_ii|``
  is the classic free lower bound on ``cond_2(R)``; an optional
  power-iteration refinement (forward iteration for the largest singular
  value, inverse iteration through triangular solves for the smallest)
  tightens it to a few percent in a handful of O(k^2) sweeps.  Start
  vectors are fixed, so the estimate is a pure function of ``R``.
* **Rank gap.**  The largest ratio between consecutive (magnitude-sorted)
  diagonal entries.  A clean numerical-rank decision shows one dominant
  gap; a near-rank-deficient selection shows a gap large enough that a
  perturbation at working precision could move the rank.
* **Pivot growth.**  ``max|R| / max|A|`` — growth far above 1 means the
  factorization amplified entries and the residual bound degrades with it.

:class:`NumericalHealth` bundles these with the record of which guards
fired (see the fallback ladders in :mod:`repro.linalg.lstsq` and
:mod:`repro.core.qrcp`), and :class:`GuardConfig` holds the thresholds
that decide when observation turns into intervention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "GuardConfig",
    "NumericalHealth",
    "estimate_condition",
    "triangular_health",
]


@dataclass(frozen=True)
class GuardConfig:
    """Thresholds and switches for the numerical-robustness layer.

    The defaults are chosen so that well-conditioned data never trips a
    guard: a guarded run on healthy inputs is bit-identical to an
    unguarded one (property-tested), because every sentinel is pure
    observation until a threshold is crossed.
    """

    #: Master switch.  ``False`` skips sentinel computation entirely —
    #: the factorizations behave exactly as if the guard never existed.
    enabled: bool = True
    #: Condition estimate above which the fallback ladder engages.
    condition_threshold: float = 1e8
    #: Consecutive-diagonal ratio that flags a near-rank-deficiency.
    rank_gap_threshold: float = 1e6
    #: Power-iteration sweeps refining the diagonal condition estimate
    #: (0 keeps the free diagonal-ratio bound).
    refine_iterations: int = 4
    #: Iterative-refinement steps taken by the lstsq fallback ladder
    #: (each runs once in float64, then once in longdouble).
    max_refinements: int = 1
    #: Cross-validate composed metrics on held-out kernels and stamp a
    #: trust score.
    certify: bool = True
    #: Leave-one-kernel-out refits to run (rows are subsampled evenly
    #: when the benchmark has more kernels than this).
    certify_holdouts: int = 12
    #: Coefficient spread (inf-norm, relative) across holdout refits
    #: above which a metric is only ``caution``.
    certify_coeff_tol: float = 0.05
    #: Backward-error spread across holdout refits above which a metric
    #: is only ``caution``.
    certify_error_tol: float = 0.05
    #: Coefficient spread above which a metric is rejected outright.
    reject_coeff_tol: float = 0.75

    def __post_init__(self) -> None:
        if self.condition_threshold <= 1 or self.rank_gap_threshold <= 1:
            raise ValueError("guard thresholds must be > 1")
        if self.refine_iterations < 0 or self.max_refinements < 0:
            raise ValueError("iteration counts must be >= 0")
        if self.certify_holdouts < 2:
            raise ValueError("certify_holdouts must be >= 2")
        if not (0 < self.certify_coeff_tol <= self.reject_coeff_tol):
            raise ValueError(
                "need 0 < certify_coeff_tol <= reject_coeff_tol"
            )
        if self.certify_error_tol <= 0:
            raise ValueError("certify_error_tol must be positive")


@dataclass(frozen=True)
class NumericalHealth:
    """Machine-checkable conditioning evidence for one factorization.

    Attributes
    ----------
    condition_estimate:
        Estimated 2-norm condition number of the triangular factor
        (``inf`` when a diagonal entry is exactly zero).
    rank_gap:
        Largest ratio between consecutive magnitude-sorted diagonal
        entries of R (1.0 for empty/rank-1 factors).
    pivot_growth:
        ``max|R| / max|A|`` of the factorization (1.0 when undefined).
    residual_bound:
        Backward-error-style bound of the final solve, when one was
        performed (``None`` for bare factorizations).
    refinement_iterations:
        Iterative-refinement steps actually taken by the fallback ladder.
    guards_fired:
        Names of the guards that intervened, in firing order; empty on a
        healthy run (and then the outputs are bit-identical to the
        unguarded path).
    suspect_columns:
        Pivot-order column indices implicated in the conditioning
        trouble (the columns after the dominant rank gap); empty when
        healthy.  Callers map these to event names for error messages.
    """

    condition_estimate: float
    rank_gap: float = 1.0
    pivot_growth: float = 1.0
    residual_bound: Optional[float] = None
    refinement_iterations: int = 0
    guards_fired: Tuple[str, ...] = ()
    suspect_columns: Tuple[int, ...] = ()

    def ok(self, config: GuardConfig) -> bool:
        """Whether every sentinel is below its threshold."""
        return (
            self.condition_estimate <= config.condition_threshold
            and self.rank_gap <= config.rank_gap_threshold
        )

    def describe(self) -> str:
        parts = [
            f"cond~{self.condition_estimate:.2e}",
            f"rank-gap {self.rank_gap:.2e}",
            f"pivot-growth {self.pivot_growth:.2f}",
        ]
        if self.residual_bound is not None:
            parts.append(f"residual-bound {self.residual_bound:.2e}")
        if self.refinement_iterations:
            parts.append(f"refined x{self.refinement_iterations}")
        if self.guards_fired:
            parts.append("guards: " + " -> ".join(self.guards_fired))
        return ", ".join(parts)


def _solve_upper_t(r: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``R^T x = b`` (forward substitution on the transpose)."""
    n = r.shape[0]
    x = b.astype(np.float64, copy=True)
    for i in range(n):
        if i:
            x[i] -= r[:i, i] @ x[:i]
        x[i] /= r[i, i]
    return x


def _solve_upper(r: np.ndarray, b: np.ndarray) -> np.ndarray:
    n = r.shape[0]
    x = b.astype(np.float64, copy=True)
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[i] -= r[i, i + 1 :] @ x[i + 1 :]
        x[i] /= r[i, i]
    return x


def estimate_condition(r: np.ndarray, refine_iterations: int = 4) -> float:
    """Estimate ``cond_2`` of an upper-triangular matrix.

    The base estimate is the diagonal ratio (a guaranteed lower bound for
    triangular matrices); ``refine_iterations`` power-iteration sweeps
    tighten the largest singular value (iterating ``R^T R``) and the
    smallest (inverse iteration via two triangular solves per sweep).
    Deterministic: iteration starts from a fixed all-ones vector.
    Returns ``inf`` when a diagonal entry is exactly zero, ``1.0`` for
    empty factors.
    """
    r = np.asarray(r, dtype=np.float64)
    k = min(r.shape) if r.ndim == 2 else 0
    if k == 0:
        return 1.0
    r = np.triu(r[:k, :k])
    diag = np.abs(np.diag(r))
    if (diag == 0.0).any():
        return float("inf")
    estimate = float(diag.max() / diag.min())
    if refine_iterations <= 0:
        return estimate

    v = np.ones(k) / np.sqrt(k)
    w = v.copy()
    sigma_max = diag.max()
    sigma_min = diag.min()
    for _ in range(refine_iterations):
        # Largest singular value: power iteration on R^T R.  ||R v|| with
        # ||v|| = 1 is a lower bound converging to sigma_max.
        u = r @ v
        sigma_max = max(sigma_max, float(np.linalg.norm(u)))
        v = r.T @ u
        norm = float(np.linalg.norm(v))
        if norm == 0.0:
            break
        v /= norm
        # Smallest singular value: inverse iteration on (R^T R)^-1.
        try:
            y = _solve_upper_t(r, w)
            z = _solve_upper(r, y)
        except (ZeroDivisionError, FloatingPointError):
            return float("inf")
        z_norm = float(np.linalg.norm(z))
        if not np.isfinite(z_norm) or z_norm == 0.0:
            return float("inf")
        sigma_min = min(sigma_min, float(np.linalg.norm(y) / z_norm))
        w = z / z_norm
    if sigma_min <= 0.0:
        return float("inf")
    return max(estimate, float(sigma_max / sigma_min))


def _rank_gap(diag: np.ndarray) -> Tuple[float, int]:
    """Largest consecutive ratio of the magnitude-sorted diagonal and the
    (pivot-order) index where the tail below the gap starts."""
    if diag.size < 2:
        return 1.0, diag.size
    order = np.argsort(np.abs(diag))[::-1]
    sorted_mag = np.abs(diag)[order]
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(
            sorted_mag[1:] > 0.0, sorted_mag[:-1] / sorted_mag[1:], np.inf
        )
    worst = int(np.argmax(ratios))
    return float(ratios[worst]), worst + 1


def triangular_health(
    r: np.ndarray,
    original: Optional[np.ndarray] = None,
    refine_iterations: int = 4,
) -> NumericalHealth:
    """Sentinel readings for an upper-triangular factor ``R``.

    ``original`` (the matrix that was factorized) feeds the pivot-growth
    ratio; without it growth defaults to 1.0.  ``suspect_columns`` holds
    the pivot-order indices of the diagonal entries on the small side of
    the dominant rank gap — the columns a strict-mode error should name.
    """
    r = np.asarray(r, dtype=np.float64)
    k = min(r.shape) if r.ndim == 2 and r.size else 0
    if k == 0:
        return NumericalHealth(condition_estimate=1.0)
    diag = np.diag(r[:k, :k])
    gap, tail_start = _rank_gap(diag)
    suspects: Tuple[int, ...] = ()
    if gap > 1e3:  # only name columns when there is a story to tell
        order = np.argsort(np.abs(diag))[::-1]
        suspects = tuple(int(i) for i in sorted(order[tail_start:]))
    growth = 1.0
    if original is not None:
        original = np.asarray(original, dtype=np.float64)
        ref = float(np.abs(original).max()) if original.size else 0.0
        if ref > 0.0:
            growth = float(np.abs(np.triu(r)).max() / ref)
    return NumericalHealth(
        condition_estimate=estimate_condition(
            r, refine_iterations=refine_iterations
        ),
        rank_gap=gap,
        pivot_growth=growth,
        suspect_columns=suspects,
    )
