"""Trusted-metric certification: leave-one-kernel-out cross-validation.

A composed metric definition is a least-squares fit over the selected
events' representations.  The fit can look confident — tiny backward
error, tidy coefficients — while actually balancing on a knife edge: a
near-rank-deficient selection lets wildly different coefficient vectors
produce almost the same residual, so the definition would not survive a
change of calibration data.  The certification stage measures exactly
that survival: drop one benchmark kernel row at a time, re-derive the
selected events' representations from the reduced expectation basis,
re-fit the metric, and compare.

A definition whose coefficients and backward error are stable across all
holdouts earns ``certified``; visible-but-bounded movement earns
``caution`` (use with care, the reasons say why); instability beyond the
reject threshold — or non-finite arithmetic anywhere — earns ``reject``.
Note this certifies the *definition and its error estimate*, not metric
goodness: a metric whose error is honestly 1.0 on every holdout (the
signature is orthogonal to everything measurable) is certified — the
pipeline's claim about it is trustworthy, which is the property
downstream consumers need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.guard.health import GuardConfig

__all__ = ["TrustScore", "certify_metric"]

#: Trust levels, best to worst.
TRUST_LEVELS = ("certified", "caution", "reject")


@dataclass(frozen=True)
class TrustScore:
    """Machine-checkable trust stamp for one composed metric.

    Attributes
    ----------
    level:
        ``certified`` / ``caution`` / ``reject``.
    reasons:
        Why the level is not ``certified`` (empty when it is).
    coefficient_spread:
        Max over holdouts of the inf-norm coefficient deviation from the
        full fit, relative to ``max(||y||_inf, 1)``.
    error_spread:
        Max over holdouts of ``|error_holdout - error_full|``.
    n_holdouts:
        Leave-one-kernel-out refits actually performed.
    n_skipped:
        Holdouts skipped because removing the kernel row left the
        expectation basis rank-deficient (the fold is uninformative: no
        definition could be recalibrated without that kernel, so it says
        nothing about this one's stability).
    suspect_events:
        Events whose coefficients moved the most across holdouts
        (populated for caution/reject; what a strict-mode error names).
    """

    level: str
    reasons: Tuple[str, ...] = ()
    coefficient_spread: float = 0.0
    error_spread: float = 0.0
    n_holdouts: int = 0
    n_skipped: int = 0
    suspect_events: Tuple[str, ...] = ()

    @property
    def certified(self) -> bool:
        return self.level == "certified"

    def describe(self) -> str:
        tail = f" ({'; '.join(self.reasons)})" if self.reasons else ""
        return f"{self.level}{tail}"


def _holdout_rows(n_rows: int, max_holdouts: int) -> np.ndarray:
    """Evenly spaced kernel-row indices to hold out (all of them when the
    benchmark is small enough)."""
    if n_rows <= max_holdouts:
        return np.arange(n_rows)
    return np.unique(
        np.linspace(0, n_rows - 1, max_holdouts).round().astype(int)
    )


def _basis_rank(e: np.ndarray, rcond: Optional[float]) -> int:
    """Numerical rank of a reduced basis, using the same QR + truncation
    rule the refits will use (so 'identifiable' means identifiable *to
    this solver*, not to an idealized one)."""
    from repro.linalg import lstsq_qr

    return lstsq_qr(e, np.zeros(e.shape[0]), rcond=rcond).rank


def _refit(
    e: np.ndarray, m_sel: np.ndarray, coords: np.ndarray, rcond: Optional[float]
) -> Tuple[np.ndarray, float]:
    """Representations from basis ``e`` and a metric refit over them."""
    from repro.linalg import lstsq_qr

    x_hat = np.column_stack(
        [lstsq_qr(e, m_sel[:, j], rcond=rcond).x for j in range(m_sel.shape[1])]
    )
    fit = lstsq_qr(x_hat, coords, rcond=rcond)
    return fit.x, fit.backward_error


def certify_metric(
    metric_name: str,
    basis_matrix: np.ndarray,
    selected_measurements: np.ndarray,
    signature_coords: np.ndarray,
    event_names: Sequence[str],
    full_coefficients: np.ndarray,
    full_error: float,
    config: GuardConfig = GuardConfig(),
    rcond: Optional[float] = None,
    degraded: bool = False,
    guards_fired: Sequence[str] = (),
) -> TrustScore:
    """Cross-validate one metric definition on held-out kernels.

    Parameters
    ----------
    basis_matrix:
        The expectation basis ``E`` (kernel rows x dimensions).
    selected_measurements:
        Measurement columns of the QRCP-selected events
        (kernel rows x selected), in ``event_names`` order.
    signature_coords:
        The metric's signature in expectation coordinates.
    full_coefficients / full_error:
        The production fit being certified (computed over all rows).
    degraded / guards_fired:
        Upstream caveats folded into the verdict: a fault-degraded
        selection or a fired conditioning guard caps the level at
        ``caution`` even if the holdout spreads are clean.
    """
    e = np.asarray(basis_matrix, dtype=np.float64)
    m_sel = np.asarray(selected_measurements, dtype=np.float64)
    coords = np.asarray(signature_coords, dtype=np.float64)
    y_full = np.asarray(full_coefficients, dtype=np.float64)
    n_rows, n_dims = e.shape

    reasons: List[str] = []
    if not np.isfinite(y_full).all() or not np.isfinite(full_error):
        return TrustScore(
            level="reject",
            reasons=("fit produced non-finite coefficients or error",),
            suspect_events=tuple(event_names),
        )
    if m_sel.shape[1] == 0:
        # Nothing was selected; the (empty) definition is vacuously exact
        # and there is nothing to cross-validate.
        return TrustScore(level="certified", n_holdouts=0)
    if n_rows - 1 < n_dims:
        return TrustScore(
            level="caution",
            reasons=(
                f"cannot cross-validate: holding out a kernel leaves "
                f"{n_rows - 1} rows for {n_dims} basis dimensions",
            ),
        )

    scale = max(float(np.abs(y_full).max()), 1.0)
    coeff_spread = 0.0
    error_spread = 0.0
    per_event_dev = np.zeros(len(event_names))
    rows = _holdout_rows(n_rows, config.certify_holdouts)
    skipped = 0
    performed = 0
    for i in rows:
        keep = np.arange(n_rows) != i
        if _basis_rank(e[keep], rcond) < n_dims:
            # Removing this kernel collapses a basis dimension (the
            # kernel is the sole witness of some ideal event): the fold
            # cannot recalibrate *any* definition, so it carries no
            # stability evidence about this one.
            skipped += 1
            continue
        performed += 1
        try:
            y_i, err_i = _refit(e[keep], m_sel[keep], coords, rcond)
        except (ValueError, np.linalg.LinAlgError) as exc:
            return TrustScore(
                level="reject",
                reasons=(f"holdout refit without kernel row {i} failed: {exc}",),
                n_holdouts=performed,
                n_skipped=skipped,
                suspect_events=tuple(event_names),
            )
        if not np.isfinite(y_i).all() or not np.isfinite(err_i):
            return TrustScore(
                level="reject",
                reasons=(
                    f"holdout refit without kernel row {i} produced "
                    "non-finite values",
                ),
                n_holdouts=performed,
                n_skipped=skipped,
                suspect_events=tuple(event_names),
            )
        dev = np.abs(y_i - y_full)
        per_event_dev = np.maximum(per_event_dev, dev)
        coeff_spread = max(coeff_spread, float(dev.max()) / scale)
        error_spread = max(error_spread, abs(err_i - full_error))

    if performed == 0:
        return TrustScore(
            level="caution",
            reasons=(
                "cannot cross-validate: every holdout fold leaves the "
                "expectation basis rank-deficient",
            ),
            n_skipped=skipped,
        )

    suspects: Tuple[str, ...] = ()
    if coeff_spread > config.certify_coeff_tol:
        worst = np.argsort(per_event_dev)[::-1]
        suspects = tuple(
            event_names[int(j)]
            for j in worst
            if per_event_dev[int(j)] / scale > config.certify_coeff_tol
        )
        reasons.append(
            f"coefficient spread {coeff_spread:.2e} across {performed} "
            f"leave-one-kernel-out refits exceeds "
            f"{config.certify_coeff_tol:g}"
        )
    if error_spread > config.certify_error_tol:
        reasons.append(
            f"backward-error spread {error_spread:.2e} across holdouts "
            f"exceeds {config.certify_error_tol:g}"
        )
    if degraded:
        reasons.append("composed over a fault-degraded selection")
    for guard in guards_fired:
        reasons.append(f"conditioning guard fired: {guard}")

    if coeff_spread > config.reject_coeff_tol:
        level = "reject"
        reasons.insert(
            0,
            f"coefficient spread {coeff_spread:.2e} exceeds the reject "
            f"threshold {config.reject_coeff_tol:g}: the definition does "
            "not survive recalibration",
        )
    elif reasons:
        level = "caution"
    else:
        level = "certified"
    return TrustScore(
        level=level,
        reasons=tuple(reasons),
        coefficient_spread=coeff_spread,
        error_spread=error_spread,
        n_holdouts=performed,
        n_skipped=skipped,
        suspect_events=suspects,
    )
