"""Deliberately ill-conditioned catalog: the guard layer's end-to-end smoke.

A healthy catalog never trips the sentinels (that is the bit-identical
contract), so the guard code paths need their own exercise regime.  This
module forges one: take a clean branch-domain measurement, append
near-duplicate copies of events that the QRCP stage will select
(``col' = (1 + eps) * col_a + eps * col_b`` with ``eps`` far above the
selection cutoff but far below anything a conditioning-free analysis
would notice), and re-run the pipeline with a tiny ``alpha`` so the
forged columns survive selection.  The resulting X-hat contains
near-collinear columns: the condition sentinel must fire, the fallback
ladder must engage, and certification must refuse to stamp the run
``certified`` — while the pipeline itself must not crash.

The CI ``guard-smoke`` job runs :func:`run_smoke` and fails unless all
of that happened.  With ``strict=True`` the same scenario instead
expects the pipeline to raise :class:`~repro.guard.GuardViolation`
naming the forged events.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.guard.health import GuardConfig

__all__ = ["SmokeOutcome", "forge_near_duplicates", "run_smoke"]

#: Relative perturbation of the forged columns: large enough to clear the
#: selection cutoff (beta ~ 1e-9 at the smoke alpha), small enough that
#: the forged X-hat is catastrophically conditioned.
FORGE_EPS = 1e-8

#: Pipeline thresholds for the smoke run: the tiny alpha lowers the QRCP
#: beta cutoff so the near-duplicates are selected instead of filtered.
SMOKE_ALPHA = 1e-10

#: Guard thresholds for the smoke run (tighter than the defaults so the
#: scenario is decisively past them, not balancing on the boundary).
SMOKE_GUARD = GuardConfig(condition_threshold=1e6, rank_gap_threshold=1e5)


@dataclass
class SmokeOutcome:
    """What the ill-conditioned scenario produced, and the verdict.

    ``passed`` means: at least one sentinel fired, the run finished (or,
    in strict mode, raised :class:`~repro.guard.GuardViolation` naming a
    forged event), and no metric touching a forged event was stamped
    ``certified``.
    """

    forged_events: Tuple[str, ...]
    sentinels_fired: Tuple[str, ...] = ()
    trust_levels: Dict[str, str] = field(default_factory=dict)
    condition_estimate: float = 0.0
    strict_error: Optional[str] = None
    result: Optional[object] = None  # PipelineResult when the run finished
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"forged events: {', '.join(self.forged_events)}",
            f"selection condition estimate: {self.condition_estimate:.2e}",
            "sentinels fired: "
            + (" -> ".join(self.sentinels_fired) if self.sentinels_fired else "none"),
        ]
        if self.strict_error is not None:
            lines.append(f"strict mode raised: {self.strict_error}")
        for name, level in sorted(self.trust_levels.items()):
            lines.append(f"  {name:<40} {level}")
        lines.append("verdict: " + ("PASS" if self.passed else "FAIL"))
        lines.extend(f"  FAIL: {f}" for f in self.failures)
        return "\n".join(lines)


def forge_near_duplicates(
    measurement,
    donors: List[str],
    pattern: np.ndarray,
    eps: float = FORGE_EPS,
):
    """Append a near-duplicate column per donor to a measurement set.

    Each forged event ``SYNTH_NEAR_DUP_<i>`` reads
    ``(1 + eps) * donor_i + eps * pattern`` where ``pattern`` is a
    per-kernel-row vector representable in the expectation basis but
    outside the span of what the clean selection measures.  The result is
    exactly the shape of a redundant hardware counter a catalog vendor
    aliased under a new name: representable, noise-free in the exact
    domains, *almost* — but not exactly — dependent on existing events,
    so the selection stage keeps it and inherits its conditioning.

    An exact linear combination of donors would be useless here: its
    representation falls exactly in the donors' span, the QRCP trailing
    residual is rounding-level, and the beta cutoff (correctly) filters
    it.  The out-of-span ``eps * pattern`` component is what makes the
    forged column selectable yet catastrophically collinear.
    """
    if not donors:
        raise ValueError("need at least one donor event to forge duplicates")
    data = measurement.data
    pattern = np.asarray(pattern, dtype=np.float64)
    if pattern.shape != (data.shape[2],):
        raise ValueError(
            f"pattern must have one entry per kernel row "
            f"({data.shape[2]}), got shape {pattern.shape}"
        )
    names = list(measurement.event_names)
    forged_cols = []
    forged_names = []
    for i, donor in enumerate(donors):
        a = data[..., measurement.event_index(donor)]
        forged_cols.append((1.0 + eps) * a + eps * pattern[None, None, :])
        forged_names.append(f"SYNTH_NEAR_DUP_{i}")
    new_data = np.concatenate(
        [data] + [c[..., None] for c in forged_cols], axis=-1
    )
    new_set = type(measurement)(
        benchmark=measurement.benchmark,
        row_labels=list(measurement.row_labels),
        event_names=names + forged_names,
        data=new_data,
        pmu_runs=measurement.pmu_runs,
    )
    return new_set, tuple(forged_names)


def _unspanned_pattern(basis_matrix: np.ndarray, selected_x: np.ndarray) -> np.ndarray:
    """A kernel-row vector representable in the basis but orthogonal (in
    representation space) to everything the clean selection spans.

    When the catalog measures every basis dimension there is no such
    direction; fall back to the least-dominant selected direction so the
    forged column is still nearly — not exactly — dependent.
    """
    n_dims = basis_matrix.shape[1]
    q, _ = np.linalg.qr(selected_x, mode="complete")
    rank = min(selected_x.shape[1], n_dims)
    if rank < n_dims:
        direction = q[:, rank]
    else:
        direction = q[:, n_dims - 1]
    return basis_matrix @ direction


def run_smoke(seed: int = 2024, strict: bool = False) -> SmokeOutcome:
    """Run the ill-conditioned branch catalog through the guarded pipeline.

    Returns a :class:`SmokeOutcome` whose ``failures`` list is empty iff
    the guard layer behaved: sentinel(s) fired, the fallback ladder was
    recorded, nothing crashed, and no forged-column metric earned
    ``certified`` (the run as a whole degrades to caution/reject).
    """
    from repro.core.pipeline import AnalysisPipeline
    from repro.guard import GuardViolation
    from repro.hardware.systems import aurora_node

    # Clean run: supplies the measurement to forge, the selection the
    # donors come from, and the basis geometry for the out-of-span pattern.
    clean_pipeline = AnalysisPipeline.for_domain("branch", aurora_node(seed=seed))
    clean = clean_pipeline.run()
    donors = clean.selected_events[:2]
    pattern = _unspanned_pattern(clean_pipeline.basis.matrix, clean.x_hat)
    forged_set, forged_names = forge_near_duplicates(
        clean.measurement, donors, pattern
    )

    config = replace(
        clean.config,
        alpha=SMOKE_ALPHA,
        guard=SMOKE_GUARD,
        strict=strict,
    )
    pipeline = AnalysisPipeline.for_domain(
        "branch", aurora_node(seed=seed), config=config
    )

    outcome = SmokeOutcome(forged_events=forged_names)
    try:
        result = pipeline.run(measurement=forged_set)
    except GuardViolation as exc:
        outcome.strict_error = str(exc)
        if not strict:
            outcome.failures.append(
                f"pipeline raised GuardViolation without strict mode: {exc}"
            )
        elif not any(name in str(exc) for name in forged_names):
            outcome.failures.append(
                "strict-mode error does not name any forged event: "
                f"{exc}"
            )
        return outcome
    except Exception as exc:  # noqa: BLE001 — a crash is the one hard fail
        outcome.failures.append(
            f"pipeline crashed on the ill-conditioned catalog: "
            f"{type(exc).__name__}: {exc}"
        )
        return outcome

    outcome.result = result
    fired: List[str] = []
    if result.qrcp.health is not None:
        fired.extend(result.qrcp.health.guards_fired)
        outcome.condition_estimate = result.qrcp.health.condition_estimate
    for metric in result.metrics.values():
        if metric.health is not None:
            fired.extend(
                g for g in metric.health.guards_fired if g not in fired
            )
    outcome.sentinels_fired = tuple(fired)
    outcome.trust_levels = {
        name: (m.trust.level if m.trust is not None else "unstamped")
        for name, m in result.metrics.items()
    }

    if not fired:
        outcome.failures.append(
            "no conditioning sentinel fired on a selection forged to be "
            "ill-conditioned"
        )
    touched = [
        name
        for name, m in result.metrics.items()
        if any(
            e in forged_names and abs(c) > 1e-9
            for e, c in zip(m.event_names, m.coefficients)
        )
    ]
    for name in touched:
        if outcome.trust_levels.get(name) == "certified":
            outcome.failures.append(
                f"metric {name!r} leans on a forged near-duplicate column "
                "but was stamped certified"
            )
    levels = set(outcome.trust_levels.values())
    if levels <= {"certified"}:
        outcome.failures.append(
            "every metric was stamped certified; the run did not degrade"
        )
    if strict:
        outcome.failures.append(
            "strict mode did not raise GuardViolation on the forged catalog"
        )
    return outcome
