"""Strict boundary validation for every public entry point.

The analysis core is a chain of least-squares solves; a NaN, an empty
event list, or a mis-shaped array entering at any boundary propagates
silently into the solver and comes out the other end as a
confident-looking metric definition.  This module is the single place
where "malformed input" is defined: small, reusable validators with
precise, actionable error messages, applied at the pipeline entry, the
sweep grid, cache/sidecar deserialization, and CLI argument parsing.

All validators raise :class:`ValidationError` (a ``ValueError``), so
callers that already catch ``ValueError`` keep working, while callers
that want to distinguish boundary rejections from internal errors can
catch the subclass.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "ValidationError",
    "require_finite",
    "require_fraction",
    "require_in",
    "require_int",
    "require_matrix",
    "require_monotone",
    "require_nonempty",
    "require_positive",
    "require_vector",
]


class ValidationError(ValueError):
    """An input rejected at a public boundary (never an internal bug)."""


def _fail(context: str, message: str) -> None:
    from repro.obs import get_tracer

    get_tracer().incr("guard.validation_rejections")
    prefix = f"{context}: " if context else ""
    raise ValidationError(f"{prefix}{message}")


def require_finite(
    array: np.ndarray, name: str, context: str = ""
) -> np.ndarray:
    """Reject arrays containing NaN or infinity, naming the first offenders.

    Returns the array (as float64) so validators can be chained.
    """
    array = np.asarray(array, dtype=np.float64)
    bad = ~np.isfinite(array)
    if bad.any():
        coords = np.argwhere(bad)
        shown = ", ".join(str(tuple(int(i) for i in c)) for c in coords[:3])
        more = f" (+{len(coords) - 3} more)" if len(coords) > 3 else ""
        _fail(
            context,
            f"{name} contains {len(coords)} non-finite value(s) at "
            f"{shown}{more}; refusing to feed NaN/inf into the solver — "
            "scrub or re-measure the input first",
        )
    return array


def require_matrix(
    array,
    name: str,
    context: str = "",
    min_rows: int = 0,
    min_cols: int = 0,
    finite: bool = True,
) -> np.ndarray:
    """Coerce to a float64 2-D array; reject anything else with the reason."""
    try:
        array = np.asarray(array, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        _fail(context, f"{name} is not numeric ({exc})")
    if array.ndim != 2:
        _fail(
            context,
            f"{name} must be a 2-D matrix, got shape {array.shape}",
        )
    rows, cols = array.shape
    if rows < min_rows:
        _fail(context, f"{name} needs at least {min_rows} row(s), got {rows}")
    if cols < min_cols:
        _fail(
            context, f"{name} needs at least {min_cols} column(s), got {cols}"
        )
    if finite:
        require_finite(array, name, context)
    return array


def require_vector(
    array, name: str, context: str = "", length: Optional[int] = None
) -> np.ndarray:
    """Coerce to a float64 1-D array of an optional exact length."""
    try:
        array = np.asarray(array, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        _fail(context, f"{name} is not numeric ({exc})")
    if array.ndim != 1:
        _fail(context, f"{name} must be a 1-D vector, got shape {array.shape}")
    if length is not None and array.shape[0] != length:
        _fail(
            context,
            f"{name} must have length {length}, got {array.shape[0]}",
        )
    require_finite(array, name, context)
    return array


def require_positive(value, name: str, context: str = "") -> float:
    """A finite, strictly positive scalar (thresholds, tolerances)."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        _fail(context, f"{name} must be a number, got {value!r}")
    if not np.isfinite(value) or value <= 0:
        _fail(
            context,
            f"{name} must be a finite positive number, got {value!r}",
        )
    return value


def require_int(
    value, name: str, context: str = "", minimum: Optional[int] = None
) -> int:
    """An integer, optionally bounded below (seeds, repetitions, retries)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        _fail(context, f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        _fail(context, f"{name} must be >= {minimum}, got {value}")
    return value


def require_fraction(value, name: str, context: str = "") -> float:
    """A scalar in ``(0, 1]`` (quorums, rates-as-fractions)."""
    value = require_positive(value, name, context)
    if value > 1.0:
        _fail(context, f"{name} must be in (0, 1], got {value!r}")
    return value


def require_nonempty(seq: Sequence, name: str, context: str = "") -> Sequence:
    """A sequence with at least one element (event lists, seed lists)."""
    if len(seq) == 0:
        _fail(context, f"{name} must not be empty")
    return seq


def require_monotone(
    values: Iterable, name: str, context: str = "", strict: bool = True
) -> np.ndarray:
    """A strictly (or weakly) increasing numeric sequence (loop/footprint
    sweeps), naming the first inversion."""
    arr = require_vector(list(values), name, context)
    require_nonempty(arr, name, context)
    diffs = np.diff(arr)
    bad = diffs <= 0 if strict else diffs < 0
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        kind = "strictly increasing" if strict else "non-decreasing"
        _fail(
            context,
            f"{name} must be {kind}; entry {i + 1} ({arr[i + 1]:g}) does "
            f"not follow {arr[i]:g}",
        )
    return arr


def require_in(value, allowed: Sequence, name: str, context: str = ""):
    """Membership in a closed vocabulary, listing the alternatives."""
    if value not in allowed:
        _fail(
            context,
            f"{name} must be one of {sorted(str(a) for a in allowed)}, "
            f"got {value!r}",
        )
    return value
