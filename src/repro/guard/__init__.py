"""Guarded numerical core: sentinels, certification, boundary validation.

Three layers, one contract — a composed metric never reaches a consumer
without machine-checkable evidence that it can be trusted:

* **Conditioning sentinels** (:mod:`repro.guard.health`): every QR-based
  factorization estimates its condition number, rank gap and pivot
  growth, and records them in a :class:`NumericalHealth`; crossing a
  :class:`GuardConfig` threshold engages a fallback ladder (column-scaled
  re-factorization, then iterative refinement in float64 and longdouble)
  and records which guard fired.
* **Metric certification** (:mod:`repro.guard.certify`): composed
  definitions are cross-validated on held-out kernels and stamped with a
  :class:`TrustScore` (certified / caution / reject, with reasons).
* **Boundary validation** (:mod:`repro.guard.validate`): reusable
  validators applied at every public entry point, so malformed input
  fails fast with an actionable message instead of propagating NaNs into
  the solver.

Guards observe before they intervene: on healthy inputs a guard-enabled
run is bit-identical to a guard-disabled one (property-tested), because
no fallback engages below the thresholds.
"""

from __future__ import annotations

from repro.guard.certify import TrustScore, certify_metric
from repro.guard.health import (
    GuardConfig,
    NumericalHealth,
    estimate_condition,
    triangular_health,
)
from repro.guard.smoke import SmokeOutcome, forge_near_duplicates, run_smoke
from repro.guard.validate import (
    ValidationError,
    require_finite,
    require_fraction,
    require_in,
    require_int,
    require_matrix,
    require_monotone,
    require_nonempty,
    require_positive,
    require_vector,
)

__all__ = [
    "GuardConfig",
    "GuardViolation",
    "NumericalHealth",
    "SmokeOutcome",
    "TrustScore",
    "ValidationError",
    "certify_metric",
    "estimate_condition",
    "forge_near_duplicates",
    "require_finite",
    "require_fraction",
    "require_in",
    "require_int",
    "require_matrix",
    "require_monotone",
    "require_nonempty",
    "require_positive",
    "require_vector",
    "run_smoke",
    "triangular_health",
]


class GuardViolation(RuntimeError):
    """Raised by strict mode when a metric is rejected or a sentinel
    crosses its reject threshold; the message names the offending
    columns/events so the failure is actionable."""
