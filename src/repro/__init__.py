"""repro — reproduction of "Automated Data Analysis for Defining Performance
Metrics from Raw Hardware Events" (Barry, Danalis, Dongarra; IPDPSW 2024).

The package is organized bottom-up:

* :mod:`repro.linalg` — Householder QR, triangular solves, least squares.
* :mod:`repro.events` — raw-event model and per-architecture catalogs.
* :mod:`repro.hardware` — simulated CPU/GPU machines (cache hierarchy,
  branch unit, FP pipes, TLB, PMU with counter multiplexing).
* :mod:`repro.papi` — PAPI-like middleware (event sets, components,
  preset metrics).
* :mod:`repro.cat` — Counter Analysis Toolkit benchmarks and runner.
* :mod:`repro.core` — the paper's analysis pipeline: expectation bases,
  noise filtering, specialized QRCP, metric composition.
* :mod:`repro.io`, :mod:`repro.viz`, :mod:`repro.cli` — persistence,
  plotting, command-line driver.

Quickstart::

    from repro import AnalysisPipeline, aurora_node

    machine = aurora_node()
    pipeline = AnalysisPipeline.for_domain("cpu_flops", machine)
    result = pipeline.run()
    print(result.metric("DP Ops").pretty())
"""

__version__ = "1.0.0"


def __getattr__(name):
    """Lazy top-level re-exports, keeping ``import repro`` import-light."""
    if name in ("AnalysisPipeline", "PipelineResult"):
        from repro.core import pipeline as _pipeline

        return getattr(_pipeline, name)
    if name in ("aurora_node", "frontier_node"):
        from repro.hardware import systems as _systems

        return getattr(_systems, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "AnalysisPipeline",
    "PipelineResult",
    "__version__",
    "aurora_node",
    "frontier_node",
]
