"""Branch predictor and speculative branch-unit model.

The CAT branching benchmark drives conditional branches with controlled
outcome patterns; the expectation matrix of the paper's Equation 3 encodes
the *per-iteration* architectural counts that result.  This module provides:

* :class:`LocalHistoryPredictor` — a per-branch two-level adaptive
  predictor: an ``history_bits``-deep local history register indexing a
  table of 2-bit saturating counters (Yeh/Patt style).  Counters initialize
  to strongly-not-taken.  Two exactness properties matter for the
  reproduction and are covered by tests:

  1. any outcome pattern whose period is at most ``2**history_bits`` is
     predicted perfectly once warm (every history context has a unique
     followup); and
  2. a de Bruijn sequence of order ``history_bits + 1`` defeats the
     predictor *exactly* half the time in steady state: each history
     context is followed by alternating outcomes, and a 2-bit counter
     starting from a saturated state mispredicts exactly one of every two
     alternating outcomes.

  Property 2 is how the benchmark realizes the paper's exact ``M = 0.5``
  expectation rows without stochastic simulation.

* :class:`BranchUnit` — executes a set of :class:`BranchSpec` streams for a
  kernel, counting retired/taken/mispredicted conditionals, unconditional
  branches, and *speculatively executed* wrong-path conditionals (the
  ``CE - CR`` gap of the paper's rows 7-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BranchCounts",
    "BranchSpec",
    "BranchUnit",
    "LocalHistoryPredictor",
    "de_bruijn_sequence",
]


def de_bruijn_sequence(order: int) -> np.ndarray:
    """Binary de Bruijn sequence B(2, order) of length ``2**order``.

    Standard "prefer-one" construction via the recursive Lyndon-word
    algorithm; every ``order``-bit window appears exactly once per period.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    sequence: List[int] = []
    a = [0] * (2 * order)

    def db(t: int, p: int) -> None:
        if t > order:
            if order % p == 0:
                sequence.extend(a[1 : p + 1])
        else:
            a[t] = a[t - p]
            db(t + 1, p)
            for j in range(a[t - p] + 1, 2):
                a[t] = j
                db(t + 1, t)

    db(1, 1)
    return np.array(sequence, dtype=bool)


class LocalHistoryPredictor:
    """Two-level local predictor: per-branch history -> 2-bit counters."""

    #: 2-bit counter encoding: 0,1 predict not-taken; 2,3 predict taken.
    STRONG_NT = 0
    STRONG_T = 3

    def __init__(self, history_bits: int = 4, init_state: int = 0):
        if history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        if not 0 <= init_state <= 3:
            raise ValueError("init_state must be a 2-bit counter value")
        self.history_bits = history_bits
        self.init_state = init_state
        self._histories: Dict[int, int] = {}
        self._tables: Dict[int, np.ndarray] = {}

    def _table(self, branch_id: int) -> np.ndarray:
        table = self._tables.get(branch_id)
        if table is None:
            table = np.full(2**self.history_bits, self.init_state, dtype=np.int8)
            self._tables[branch_id] = table
        return table

    def reset(self) -> None:
        self._histories.clear()
        self._tables.clear()

    def predict(self, branch_id: int) -> bool:
        """Predicted direction for the branch's current history context."""
        history = self._histories.get(branch_id, 0)
        return bool(self._table(branch_id)[history] >= 2)

    def update(self, branch_id: int, taken: bool) -> None:
        """Train the counter for the current context and shift the history."""
        history = self._histories.get(branch_id, 0)
        table = self._table(branch_id)
        state = table[history]
        if taken:
            table[history] = min(state + 1, 3)
        else:
            table[history] = max(state - 1, 0)
        mask = (1 << self.history_bits) - 1
        self._histories[branch_id] = ((history << 1) | int(taken)) & mask

    def simulate(self, branch_id: int, outcomes: Sequence[bool]) -> np.ndarray:
        """Predict/update over an outcome stream; return the mispredict mask."""
        outcomes = np.asarray(outcomes, dtype=bool)
        misses = np.zeros(outcomes.shape[0], dtype=bool)
        for i, taken in enumerate(outcomes):
            misses[i] = self.predict(branch_id) != bool(taken)
            self.update(branch_id, bool(taken))
        return misses


@dataclass(frozen=True)
class BranchSpec:
    """One static conditional or unconditional branch in a kernel body.

    Attributes
    ----------
    pattern:
        Outcome pattern kind: ``"taken"``, ``"not_taken"``, ``"alternate"``,
        ``"unpredictable"`` (de Bruijn-driven), or ``"uncond"`` /
        ``"uncond_indirect"`` / ``"call"`` / ``"ret"`` for unconditional
        control transfers.
    execute_every:
        The branch executes on iterations where ``i % execute_every == 0``
        (e.g. 2 for a branch inside an every-other-iteration guard).
    wrong_path_branches:
        Number of conditional branches fetched and executed speculatively
        down the wrong path each time *this* branch mispredicts.
    """

    pattern: str
    execute_every: int = 1
    wrong_path_branches: int = 0

    _CONDITIONAL = ("taken", "not_taken", "alternate", "unpredictable")
    _UNCONDITIONAL = ("uncond", "uncond_indirect", "call", "ret")

    def __post_init__(self) -> None:
        if self.pattern not in self._CONDITIONAL + self._UNCONDITIONAL:
            raise ValueError(f"unknown branch pattern {self.pattern!r}")
        if self.execute_every < 1:
            raise ValueError("execute_every must be >= 1")
        if self.wrong_path_branches < 0:
            raise ValueError("wrong_path_branches must be >= 0")

    @property
    def is_conditional(self) -> bool:
        return self.pattern in self._CONDITIONAL


@dataclass(frozen=True)
class BranchCounts:
    """Per-iteration architectural branch activity for one kernel."""

    cond_executed: float
    cond_retired: float
    cond_taken: float
    mispredicted: float
    misp_taken: float
    uncond_direct: float
    uncond_indirect: float
    calls: float
    returns: float

    @property
    def cond_ntaken(self) -> float:
        return self.cond_retired - self.cond_taken

    @property
    def all_retired(self) -> float:
        return (
            self.cond_retired
            + self.uncond_direct
            + self.uncond_indirect
            + self.calls
            + self.returns
        )


class BranchUnit:
    """Executes kernel branch specs through the predictor, exactly.

    Counts are averaged over ``measure_periods`` full pattern periods after
    ``warmup_periods`` periods of training, which makes every reported
    per-iteration value an exact dyadic rational (the patterns all have
    power-of-two periods), reproducing the crisp expectation rows of the
    paper's Equation 3.
    """

    def __init__(
        self,
        history_bits: int = 4,
        warmup_periods: int = 2,
        measure_periods: int = 2,
    ):
        self.history_bits = history_bits
        self.warmup_periods = warmup_periods
        self.measure_periods = measure_periods

    def _outcomes(self, spec: BranchSpec, iterations: int) -> np.ndarray:
        """Architectural outcome per *executed* instance over ``iterations``."""
        executed = iterations // spec.execute_every
        if spec.pattern == "taken":
            return np.ones(executed, dtype=bool)
        if spec.pattern == "not_taken":
            return np.zeros(executed, dtype=bool)
        if spec.pattern == "alternate":
            return (np.arange(executed) % 2).astype(bool)
        if spec.pattern == "unpredictable":
            period = de_bruijn_sequence(self.history_bits + 1)
            reps = int(np.ceil(executed / period.size))
            return np.tile(period, reps)[:executed]
        raise AssertionError(f"not a conditional pattern: {spec.pattern}")

    def pattern_period(self, specs: Sequence[BranchSpec]) -> int:
        """Smallest iteration count containing whole periods of every spec."""
        period = 1
        for spec in specs:
            p = spec.execute_every
            if spec.pattern == "alternate":
                p *= 2
            elif spec.pattern == "unpredictable":
                p *= 2 ** (self.history_bits + 1)
            period = int(np.lcm(period, p))
        return period

    def run(self, specs: Sequence[BranchSpec]) -> BranchCounts:
        """Exact steady-state per-iteration branch counts for a kernel body."""
        period = self.pattern_period(specs)
        # Training needs the history register filled (history_bits
        # iterations) plus two counter updates per context to saturate from
        # the strongly-not-taken reset; 8*(H+1) iterations is a safe bound.
        min_warm = 8 * (self.history_bits + 1)
        warm_periods = max(self.warmup_periods, -(-min_warm // period))
        warm = warm_periods * period
        measured = self.measure_periods * period
        total_iters = warm + measured

        predictor = LocalHistoryPredictor(self.history_bits)
        cond_retired = cond_taken = misp = misp_taken = 0.0
        wrong_path = 0.0
        uncond = indirect = calls = rets = 0.0

        for branch_id, spec in enumerate(specs):
            executed_iters = np.arange(0, total_iters, spec.execute_every)
            if not spec.is_conditional:
                in_window = executed_iters >= warm
                n = float(np.count_nonzero(in_window))
                if spec.pattern == "uncond":
                    uncond += n
                elif spec.pattern == "uncond_indirect":
                    indirect += n
                elif spec.pattern == "call":
                    calls += n
                else:
                    rets += n
                continue
            outcomes = self._outcomes(spec, total_iters)
            misses = predictor.simulate(branch_id, outcomes)
            in_window = executed_iters >= warm
            window_outcomes = outcomes[in_window]
            window_misses = misses[in_window]
            cond_retired += float(window_outcomes.size)
            cond_taken += float(np.count_nonzero(window_outcomes))
            misp += float(np.count_nonzero(window_misses))
            misp_taken += float(np.count_nonzero(window_misses & window_outcomes))
            wrong_path += float(np.count_nonzero(window_misses)) * spec.wrong_path_branches

        scale = 1.0 / measured
        return BranchCounts(
            cond_executed=(cond_retired + wrong_path) * scale,
            cond_retired=cond_retired * scale,
            cond_taken=cond_taken * scale,
            mispredicted=misp * scale,
            misp_taken=misp_taken * scale,
            uncond_direct=uncond * scale,
            uncond_indirect=indirect * scale,
            calls=calls * scale,
            returns=rets * scale,
        )
