"""Performance monitoring unit: limited physical counters and multiplexing.

The paper's motivation includes the fact that real hardware has orders of
magnitude fewer physical counters than events; measuring a thousand events
therefore requires scheduling them into counter-sized groups and re-running
the workload once per group (CAT runs each benchmark repeatedly anyway, so
the toolkit schedules rather than time-multiplexes within a run — every
event is measured over a *complete* execution, which is why the analysis can
treat readings from different groups as one coherent vector).

:class:`PMU` implements that contract: a greedy first-fit scheduler over
programmable counters, with a handful of fixed counters that can host the
architectural events (cycles, instructions) without consuming programmable
slots — mirroring Intel's fixed-counter arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.events.model import RawEvent
from repro.activity import Activity

__all__ = ["CounterSchedule", "PMU"]

#: Event base names servable by fixed counters (architectural events).
_FIXED_ELIGIBLE = frozenset({"INST_RETIRED", "CPU_CLK_UNHALTED", "TOPDOWN"})


@dataclass(frozen=True)
class CounterSchedule:
    """Assignment of events to measurement runs (groups)."""

    groups: List[List[RawEvent]]

    @property
    def n_runs(self) -> int:
        return len(self.groups)

    def run_of(self, event: RawEvent) -> int:
        for i, group in enumerate(self.groups):
            if any(e.full_name == event.full_name for e in group):
                return i
        raise KeyError(f"event {event.full_name!r} is not scheduled")


class PMU:
    """Counter-constrained measurement of raw events over one activity."""

    def __init__(self, programmable_counters: int = 8, fixed_counters: int = 3):
        if programmable_counters < 1:
            raise ValueError("need at least one programmable counter")
        if fixed_counters < 0:
            raise ValueError("fixed counter count must be non-negative")
        self.programmable_counters = programmable_counters
        self.fixed_counters = fixed_counters

    def schedule(self, events: Sequence[RawEvent]) -> CounterSchedule:
        """Greedy first-fit grouping of events into measurement runs.

        Fixed-eligible events fill the fixed counters of each group first;
        everything else consumes programmable slots.  Deterministic: events
        are placed in the order given.
        """
        groups: List[List[RawEvent]] = []
        prog_used: List[int] = []
        fixed_used: List[int] = []

        for event in events:
            eligible_fixed = event.name in _FIXED_ELIGIBLE
            placed = False
            for i in range(len(groups)):
                if eligible_fixed and fixed_used[i] < self.fixed_counters:
                    groups[i].append(event)
                    fixed_used[i] += 1
                    placed = True
                    break
                if prog_used[i] < self.programmable_counters:
                    groups[i].append(event)
                    prog_used[i] += 1
                    placed = True
                    break
            if not placed:
                groups.append([event])
                if eligible_fixed and self.fixed_counters > 0:
                    prog_used.append(0)
                    fixed_used.append(1)
                else:
                    prog_used.append(1)
                    fixed_used.append(0)
        return CounterSchedule(groups=groups)

    def read(
        self,
        events: Sequence[RawEvent],
        activity: Activity,
        rng_for_event,
    ) -> Dict[str, float]:
        """Measure all events against one activity, group by group.

        ``rng_for_event`` maps an event to the :class:`numpy.random.Generator`
        (or ``None``) used for its noise draw; the caller keys it by
        (event, repetition, thread) for reproducibility.  The group
        structure does not change readings (each group sees a complete
        execution) but enforces the counter-budget contract and surfaces
        the number of required runs to callers.
        """
        readings: Dict[str, float] = {}
        schedule = self.schedule(events)
        for group in schedule.groups:
            for event in group:
                readings[event.full_name] = event.read(activity, rng_for_event(event))
        return readings
