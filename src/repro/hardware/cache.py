"""Set-associative LRU cache hierarchy simulator.

Two complementary engines:

* :meth:`CacheLevel.simulate_trace` — an exact per-access LRU simulation for
  arbitrary address traces.  Used by unit tests and small workloads.
* :func:`cyclic_steady_state` — a closed-form steady-state solution for
  *cyclic* traces (the CAT pointer chase re-walks the same permutation of
  lines every pass).  For LRU with a cyclic reference stream a classic
  result applies: every line mapping to a set that holds at most ``ways``
  distinct lines always hits after warm-up, and every line in an over-full
  set always misses (the cyclic order guarantees the LRU victim is exactly
  the line needed furthest in the future that wraps around first).  The
  property tests in ``tests/hardware/test_cache.py`` verify the two engines
  agree on randomized configurations.

The hierarchy is modelled as non-inclusive with independent per-level LRU
state; demand misses propagate to the next level.  That matches the
granularity of the events the paper analyses (per-level demand hits and
misses) without modelling coherence, which CAT's disjoint per-thread
buffers never exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "CacheConfig",
    "CacheLevel",
    "CacheHierarchy",
    "HierarchyCounts",
    "LevelCounts",
    "cyclic_steady_state",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    ways: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError(f"{self.name}: all cache dimensions must be positive")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"line_bytes*ways = {self.line_bytes * self.ways}"
            )
        n_sets = self.size_bytes // (self.line_bytes * self.ways)
        if n_sets & (n_sets - 1):
            raise ValueError(f"{self.name}: set count {n_sets} must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def capacity_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    def set_index(self, line_addrs: np.ndarray) -> np.ndarray:
        """Map line numbers to set indices (modulo indexing)."""
        return np.asarray(line_addrs, dtype=np.int64) & (self.n_sets - 1)


class CacheLevel:
    """Exact LRU simulation of one set-associative cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # Per-set ordered mapping line -> recency stamp; dict preserves
        # insertion order so popping the oldest entry is O(1) amortized.
        self._sets: List[Dict[int, None]] = [dict() for _ in range(config.n_sets)]

    def reset(self) -> None:
        """Flush all cached lines."""
        for s in self._sets:
            s.clear()

    def simulate_trace(self, line_addrs: Sequence[int]) -> np.ndarray:
        """Run a trace of line numbers; return a boolean hit mask.

        State persists across calls (warm cache), matching real hardware;
        call :meth:`reset` for a cold run.
        """
        cfg = self.config
        addrs = np.asarray(line_addrs, dtype=np.int64)
        sets = cfg.set_index(addrs)
        hits = np.zeros(addrs.shape[0], dtype=bool)
        ways = cfg.ways
        for i in range(addrs.shape[0]):
            line = int(addrs[i])
            cache_set = self._sets[sets[i]]
            if line in cache_set:
                hits[i] = True
                # Refresh recency: move to the back of the dict.
                del cache_set[line]
                cache_set[line] = None
            else:
                if len(cache_set) >= ways:
                    # Evict LRU = first key in insertion order.
                    cache_set.pop(next(iter(cache_set)))
                cache_set[line] = None
        return hits

    def resident_lines(self) -> int:
        """Number of lines currently cached (diagnostics)."""
        return sum(len(s) for s in self._sets)


@dataclass(frozen=True)
class LevelCounts:
    """Per-level demand traffic for one simulated pass."""

    name: str
    accesses: int
    hits: int

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class HierarchyCounts:
    """Demand traffic through every level plus memory accesses.

    ``survivors`` lists the line numbers that missed *every* level (empty
    for the exact-trace engine, which does not track line identity across
    calls); a shared next tier — e.g. an L3 behind private L1/L2 — consumes
    them as its arriving stream.
    """

    levels: Tuple[LevelCounts, ...]
    memory_accesses: int
    survivors: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.survivors is None:
            object.__setattr__(self, "survivors", np.zeros(0, dtype=np.int64))

    def level(self, name: str) -> LevelCounts:
        for lv in self.levels:
            if lv.name == name:
                return lv
        raise KeyError(f"no cache level named {name!r}")


def cyclic_steady_state(line_addrs: np.ndarray, config: CacheConfig) -> Tuple[int, int]:
    """Steady-state (hits, misses) per pass of a cyclic trace.

    ``line_addrs`` is the set of distinct lines touched once per pass, in
    any order.  For LRU under cyclic re-reference, a set with at most
    ``ways`` distinct lines hits on every access once warm, while an
    over-full set misses on every access: by the time the walk returns to a
    line, at least ``ways`` other lines of the same set have been touched,
    so it has been evicted.
    """
    addrs = np.asarray(line_addrs, dtype=np.int64)
    if addrs.size == 0:
        return 0, 0
    if np.unique(addrs).size != addrs.size:
        raise ValueError("cyclic_steady_state expects distinct lines per pass")
    sets = config.set_index(addrs)
    per_set = np.bincount(sets, minlength=config.n_sets)
    fits = per_set <= config.ways
    hits = int(per_set[fits].sum())
    misses = int(per_set[~fits].sum())
    return hits, misses


class CacheHierarchy:
    """A stack of cache levels in front of memory.

    ``simulate_trace`` threads an exact trace through all levels; demand
    misses at level *i* form the trace for level *i+1*.
    ``cyclic_steady_state`` does the same with the closed form: the lines
    that miss at one level are re-referenced cyclically at the next, so the
    per-set fit argument applies level by level.
    """

    def __init__(self, configs: Sequence[CacheConfig]):
        if not configs:
            raise ValueError("a hierarchy needs at least one level")
        lines = {c.line_bytes for c in configs}
        if len(lines) != 1:
            raise ValueError("all levels must share one line size")
        self.configs = tuple(configs)
        self.levels = [CacheLevel(c) for c in configs]

    @property
    def line_bytes(self) -> int:
        return self.configs[0].line_bytes

    def reset(self) -> None:
        for level in self.levels:
            level.reset()

    def simulate_trace(self, line_addrs: Sequence[int]) -> HierarchyCounts:
        """Exact simulation of a line-address trace through all levels."""
        trace = np.asarray(line_addrs, dtype=np.int64)
        counts: List[LevelCounts] = []
        for level in self.levels:
            hits = level.simulate_trace(trace)
            counts.append(
                LevelCounts(level.config.name, accesses=trace.size, hits=int(hits.sum()))
            )
            trace = trace[~hits]
        return HierarchyCounts(levels=tuple(counts), memory_accesses=int(trace.size))

    def cyclic_steady_state(self, line_addrs: np.ndarray) -> HierarchyCounts:
        """Closed-form steady-state counts per pass of a cyclic walk."""
        remaining = np.asarray(line_addrs, dtype=np.int64)
        counts: List[LevelCounts] = []
        for config in self.configs:
            accesses = int(remaining.size)
            if accesses:
                hits, _ = cyclic_steady_state(remaining, config)
                sets = config.set_index(remaining)
                per_set = np.bincount(sets, minlength=config.n_sets)
                overfull = per_set > config.ways
                remaining = remaining[overfull[sets]]
            else:
                hits = 0
                remaining = remaining[:0]
            counts.append(LevelCounts(config.name, accesses=accesses, hits=hits))
        return HierarchyCounts(
            levels=tuple(counts),
            memory_accesses=int(remaining.size),
            survivors=remaining,
        )
