"""System configurations: Aurora (Intel SPR) and Frontier (AMD MI250X) nodes.

A :class:`MachineNode` bundles everything a CAT benchmark run needs: the
simulated machine, the raw-event catalog a native-event sweep would expose
on it, the PMU geometry, and a base seed that anchors all measurement-noise
reproducibility for the node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.events.catalogs import mi250x_events, sapphire_rapids_events, zen3_events
from repro.events.registry import EventRegistry
from repro.hardware.cache import CacheConfig
from repro.hardware.cpu import CPUConfig, SimulatedCPU
from repro.hardware.gpu import GPUConfig, SimulatedGPU
from repro.hardware.pmu import PMU

__all__ = ["MachineNode", "aurora_node", "frontier_cpu_node", "frontier_node"]


@dataclass
class MachineNode:
    """One compute node's measurement substrate."""

    name: str
    machine: Union[SimulatedCPU, SimulatedGPU]
    events: EventRegistry
    pmu: PMU
    seed: int = 0

    @property
    def is_gpu(self) -> bool:
        return isinstance(self.machine, SimulatedGPU)


def aurora_node(seed: int = 2024, config: Optional[CPUConfig] = None) -> MachineNode:
    """An Aurora compute node: Intel Sapphire Rapids CPU substrate."""
    return MachineNode(
        name="aurora-spr",
        machine=SimulatedCPU(config or CPUConfig()),
        events=sapphire_rapids_events(),
        pmu=PMU(programmable_counters=8, fixed_counters=3),
        seed=seed,
    )


def frontier_node(seed: int = 2024, config: Optional[GPUConfig] = None) -> MachineNode:
    """A Frontier compute node: AMD MI250X GPU substrate (8 devices)."""
    return MachineNode(
        name="frontier-mi250x",
        machine=SimulatedGPU(config or GPUConfig()),
        events=mi250x_events(),
        pmu=PMU(programmable_counters=8, fixed_counters=0),
        seed=seed,
    )


def frontier_cpu_node(seed: int = 2024, config: Optional[CPUConfig] = None) -> MachineNode:
    """Frontier's host CPU: AMD Zen 3 "Trento" substrate.

    Beyond the paper's evaluation (which used Frontier's GPUs only); this
    node exercises the cross-architecture portability story on a CPU whose
    FP counters count *operations with merged precisions* rather than
    per-precision instructions.  Geometry: 32 KiB/8-way L1D, 512 KiB/8-way
    L2, a 32 MiB/16-way L3 slice; Zen PMCs: 6 programmable, no fixed
    counters.
    """
    trento = config or CPUConfig(
        name="amd_zen3_trento",
        l1d=CacheConfig("L1D", 32 * 1024, 64, 8),
        l2=CacheConfig("L2", 512 * 1024, 64, 8),
        l3=CacheConfig("L3", 32 * 1024 * 1024, 64, 16),
    )
    return MachineNode(
        name="frontier-trento",
        machine=SimulatedCPU(trento),
        events=zen3_events(),
        pmu=PMU(programmable_counters=6, fixed_counters=0),
        seed=seed,
    )
