"""Simulated hardware substrate: caches, branch unit, FP pipes, TLB, PMU,
and the CPU/GPU machines that execute CAT kernels."""

from repro.activity import Activity
from repro.hardware.branch import BranchSpec, BranchUnit, LocalHistoryPredictor
from repro.hardware.cache import CacheConfig, CacheHierarchy, CacheLevel
from repro.hardware.cpu import ComputeKernel, CPUConfig, PointerChase, SimulatedCPU
from repro.hardware.fpu import FPUConfig
from repro.hardware.gpu import GPUConfig, GPUKernel, SimulatedGPU
from repro.hardware.pmu import PMU
from repro.hardware.systems import MachineNode, aurora_node, frontier_node
from repro.hardware.tlb import TLBConfig

__all__ = [
    "Activity",
    "BranchSpec",
    "BranchUnit",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevel",
    "ComputeKernel",
    "CPUConfig",
    "FPUConfig",
    "GPUConfig",
    "GPUKernel",
    "LocalHistoryPredictor",
    "MachineNode",
    "PMU",
    "PointerChase",
    "SimulatedCPU",
    "SimulatedGPU",
    "TLBConfig",
    "aurora_node",
    "frontier_node",
]
