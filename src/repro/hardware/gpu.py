"""Simulated GPU (AMD MI250X-like): wavefront-level activity for the CAT
GPU-FLOPs benchmark.

CAT's GPU benchmark launches register-resident kernels whose bodies repeat
one vector ALU operation (add / sub / mul / sqrt / fma) at one precision;
the analysis consumes per-iteration VALU instruction counts.  The machine
model adds the surrounding reality: wavefront bookkeeping, scalar-unit loop
overhead, occupancy/busy cycles, and light instruction-fetch traffic, so
that the ~90 live non-VALU events in the catalog respond and must be
filtered by the pipeline rather than being trivially absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.activity import Activity, valu_instr_key

__all__ = ["GPUConfig", "GPUKernel", "SimulatedGPU"]


@dataclass(frozen=True)
class GPUConfig:
    """Launch geometry and issue model of the simulated device."""

    name: str = "amd_mi250x"
    wavefront_size: int = 64
    waves_per_workgroup: int = 4
    workgroups: int = 220  # one wave per CU pipeline, MI250X GCD-ish
    valu_issue_rate: float = 1.0  # VALU instructions per cycle per wave slot
    trans_issue_rate: float = 0.25  # transcendental pipe is quarter rate
    f64_rate_penalty: float = 2.0


@dataclass(frozen=True)
class GPUKernel:
    """One GPU microkernel configuration.

    ``valu_ops`` maps VALU activity keys (``gpu.valu.<op>.<prec>``) to
    per-iteration instruction counts per wavefront.
    """

    name: str
    valu_ops: Mapping[str, float] = field(default_factory=dict)
    salu_ops: float = 3.0  # loop counter + compare + branch setup
    smem_ops: float = 0.5
    iterations: int = 256


class SimulatedGPU:
    """Executes GPU kernels on one logical device; per-iteration activity."""

    def __init__(self, config: GPUConfig = GPUConfig()):
        self.config = config

    def run(self, kernel: GPUKernel) -> Activity:
        """Per-iteration, per-wavefront activity for one kernel."""
        cfg = self.config
        counts: Dict[str, float] = {}
        valu_total = 0.0
        trans_cycles = 0.0
        valu_cycles = 0.0
        for key, value in kernel.valu_ops.items():
            value = float(value)
            counts[key] = counts.get(key, 0.0) + value
            valu_total += value
            rate = cfg.valu_issue_rate
            if ".trans." in key:
                rate = cfg.trans_issue_rate
            if key.endswith(".f64"):
                rate = rate / cfg.f64_rate_penalty
            issue_cycles = value / rate
            if ".trans." in key:
                trans_cycles += issue_cycles
            else:
                valu_cycles += issue_cycles

        waves = float(cfg.waves_per_workgroup * cfg.workgroups)
        per_iter_cycles = max(valu_cycles + trans_cycles, kernel.salu_ops * 0.25) + 1.0

        counts.update(
            {
                "gpu.valu.total": valu_total,
                "gpu.valu.int": 1.0,  # induction-variable update
                "gpu.salu": kernel.salu_ops,
                "gpu.smem": kernel.smem_ops,
                "gpu.branch": 1.0,  # loop back-branch
                "gpu.sendmsg": 0.0,
                "gpu.lds": 0.0,
                "gpu.gds": 0.0,
                "gpu.flat": 0.0,
                "gpu.vmem.read": 0.0,
                "gpu.vmem.write": 0.0,
                # Launch bookkeeping amortized per iteration.
                "gpu.waves": waves / kernel.iterations,
                "gpu.workgroups": float(cfg.workgroups) / kernel.iterations,
                "gpu.cycles": per_iter_cycles * 1.05,
                "gpu.busy_cycles": per_iter_cycles,
                "gpu.wave_cycles": per_iter_cycles * waves,
                "gpu.valu_busy": valu_cycles + trans_cycles,
                "gpu.salu_busy": kernel.salu_ops * 0.25,
                "gpu.occupancy": 0.8,
                "gpu.fetch_size": 0.3,
                "gpu.write_size": 0.0,
                "gpu.l1.hit": kernel.smem_ops * 0.98,
                "gpu.l1.miss": kernel.smem_ops * 0.02,
                "gpu.l2.hit": kernel.smem_ops * 0.019,
                "gpu.l2.miss": kernel.smem_ops * 0.001,
                "gpu.mem_unit_busy": 0.05,
                "gpu.mem_unit_stalled": 0.01,
                "gpu.write_unit_stalled": 0.0,
            }
        )
        return Activity(counts)
