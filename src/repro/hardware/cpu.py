"""Simulated CPU: executes CAT kernel requests and reports ground-truth
microarchitectural activity.

Two workload shapes cover all of CAT:

* :meth:`SimulatedCPU.run_compute` — register-resident compute kernels
  (the FLOPs and branching benchmarks).  FP activity comes straight from
  the kernel's declared instruction mix; branch activity comes from a real
  predictor simulation (:mod:`repro.hardware.branch`); pipeline costs from
  :mod:`repro.hardware.fpu`.
* :meth:`SimulatedCPU.run_pointer_chase` — the data-cache benchmark.
  Demand traffic comes from the cache hierarchy's cyclic steady state
  (:mod:`repro.hardware.cache`), with private L1/L2 per thread and a
  shared L3 in which all threads' surviving lines contend.

All counts are reported *per iteration* (compute kernels) or *per access*
(pointer chase), matching the per-iteration expectation vectors of the
paper's Section III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.activity import Activity
from repro.hardware.branch import BranchSpec, BranchUnit
from repro.hardware.cache import CacheConfig, CacheHierarchy, CacheLevel
from repro.hardware.fpu import FPUConfig, fp_pipeline_activity
from repro.hardware.tlb import TLBConfig, tlb_activity

__all__ = ["CPUConfig", "ComputeKernel", "PointerChase", "SimulatedCPU"]


@dataclass(frozen=True)
class CPUConfig:
    """Geometry of the simulated core and memory hierarchy."""

    name: str = "intel_sapphire_rapids"
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 48 * 1024, 64, 12)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 2 * 1024 * 1024, 64, 16)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("L3", 32 * 1024 * 1024, 64, 16)
    )
    fpu: FPUConfig = field(default_factory=FPUConfig)
    tlb: TLBConfig = field(default_factory=TLBConfig)
    branch_history_bits: int = 4
    # Pointer-chase latency model (cycles per access by deepest level hit).
    l1_latency: float = 5.0
    l2_latency: float = 16.0
    l3_latency: float = 50.0
    mem_latency: float = 150.0


@dataclass(frozen=True)
class ComputeKernel:
    """A register-resident CAT microkernel body (one loop configuration).

    ``fp_ops`` maps FP activity keys to per-iteration instruction counts.
    ``branches`` lists every static branch including the loop back-branch.
    """

    name: str
    fp_ops: Mapping[str, float] = field(default_factory=dict)
    int_ops: float = 2.0
    nops: float = 0.0
    branches: Tuple[BranchSpec, ...] = (BranchSpec("taken"),)


@dataclass(frozen=True)
class PointerChase:
    """One thread-replicated pointer-chase configuration.

    ``n_pointers`` nodes, one per touched cache line, spaced
    ``stride_bytes`` apart; each of ``n_threads`` threads walks its own
    disjoint buffer.  ``pointers_per_block`` is carried through for CAT
    parity (it fixes the chase's block structure; the analytic engine
    depends only on the touched line set).
    """

    n_pointers: int
    stride_bytes: int = 64
    n_threads: int = 8
    pointers_per_block: int = 512

    def __post_init__(self) -> None:
        if self.n_pointers <= 0:
            raise ValueError("n_pointers must be positive")
        if self.stride_bytes < 8:
            raise ValueError("stride_bytes must cover at least a pointer")
        if self.n_threads <= 0:
            raise ValueError("n_threads must be positive")

    @property
    def footprint_bytes(self) -> int:
        return self.n_pointers * self.stride_bytes


class SimulatedCPU:
    """One Aurora-style compute node's worth of CPU substrate."""

    def __init__(self, config: CPUConfig = CPUConfig()):
        self.config = config
        self._branch_unit = BranchUnit(history_bits=config.branch_history_bits)

    # ------------------------------------------------------------------
    # Compute kernels (FLOPs / branching benchmarks)
    # ------------------------------------------------------------------
    def run_compute(self, kernel: ComputeKernel) -> Activity:
        """Execute a compute kernel; per-iteration activity record."""
        counts: Dict[str, float] = {}
        fp_total = 0.0
        for key, value in kernel.fp_ops.items():
            counts[key] = counts.get(key, 0.0) + float(value)
            fp_total += float(value)

        branch = self._branch_unit.run(kernel.branches)
        counts.update(
            {
                "branch.cond_executed": branch.cond_executed,
                "branch.cond_retired": branch.cond_retired,
                "branch.cond_taken": branch.cond_taken,
                "branch.cond_ntaken": branch.cond_ntaken,
                "branch.uncond_direct": branch.uncond_direct,
                "branch.uncond_indirect": branch.uncond_indirect,
                "branch.call": branch.calls,
                "branch.return": branch.returns,
                "branch.all_retired": branch.all_retired,
                "branch.all_executed": branch.cond_executed
                + branch.uncond_direct
                + branch.uncond_indirect
                + branch.calls
                + branch.returns,
                "branch.mispredicted": branch.mispredicted,
                "branch.misp_taken": branch.misp_taken,
            }
        )

        costs = fp_pipeline_activity(
            kernel.fp_ops, kernel.int_ops, branch.all_retired, self.config.fpu
        )
        counts.update(costs)
        # Mispredicts add recovery time on top of the throughput model.
        counts["cycles.core"] += branch.mispredicted * 15.0
        counts["machine_clears"] = 0.0

        counts["instr.int"] = kernel.int_ops
        counts["instr.nop"] = kernel.nops
        counts["instr.total"] = (
            fp_total + kernel.int_ops + kernel.nops + branch.all_retired
        )
        return Activity(counts)

    # ------------------------------------------------------------------
    # Pointer chase (data-cache benchmark)
    # ------------------------------------------------------------------
    def _thread_lines(self, chase: PointerChase, thread: int) -> np.ndarray:
        """Distinct line numbers a thread touches (disjoint across threads)."""
        stride_lines = max(1, chase.stride_bytes // self.config.l1d.line_bytes)
        base = thread << 26  # disjoint 4-GiB line regions per thread
        return base + np.arange(chase.n_pointers, dtype=np.int64) * stride_lines

    def run_pointer_chase(self, chase: PointerChase) -> List[Activity]:
        """Steady-state per-access activity for each chase thread.

        L1 and L2 are private per thread (CAT pins one thread per core);
        L3 is shared: every thread's L2-missing lines contend in the same
        sets, so a set over-committed *globally* misses for all threads.
        """
        cfg = self.config
        per_thread_lines = [self._thread_lines(chase, t) for t in range(chase.n_threads)]

        # Private levels: per-thread closed-form hits/misses per pass.  The
        # hierarchy engine also reports the lines that missed both private
        # levels — the arriving stream of the shared L3.
        private = CacheHierarchy([cfg.l1d, cfg.l2])
        private_counts = [private.cyclic_steady_state(lines) for lines in per_thread_lines]
        l3_streams = [counts.survivors for counts in private_counts]

        # Shared L3: global per-set occupancy decides hits for everyone.
        all_l3_lines = (
            np.concatenate(l3_streams) if l3_streams else np.zeros(0, dtype=np.int64)
        )
        if all_l3_lines.size:
            l3_sets_global = cfg.l3.set_index(all_l3_lines)
            l3_per_set = np.bincount(l3_sets_global, minlength=cfg.l3.n_sets)
            overfull = l3_per_set > cfg.l3.ways
        else:
            overfull = np.zeros(cfg.l3.n_sets, dtype=bool)

        activities: List[Activity] = []
        for thread in range(chase.n_threads):
            counts = private_counts[thread]
            l1 = counts.level("L1D")
            l2 = counts.level("L2")
            stream = l3_streams[thread]
            if stream.size:
                miss_mask = overfull[cfg.l3.set_index(stream)]
                l3_hits = int(stream.size - miss_mask.sum())
                l3_misses = int(miss_mask.sum())
            else:
                l3_hits = l3_misses = 0
            activities.append(
                self._chase_activity(
                    chase, l1.hits, l1.misses, l2.hits, l2.misses, l3_hits, l3_misses
                )
            )
        return activities

    def run_pointer_chase_trace(
        self,
        chase: PointerChase,
        seed: int = 0,
        warmup_passes: int = 2,
    ) -> List[Activity]:
        """Exact trace-driven variant of :meth:`run_pointer_chase`.

        Builds each thread's actual randomized chase order, warms the
        caches with complete passes, then measures one pass per thread
        through exact LRU simulation — private L1/L2 per thread, and a
        shared L3 fed by a round-robin interleaving of the threads'
        surviving streams (an explicit model of concurrent execution the
        closed form abstracts away).

        Orders of magnitude slower than the analytic engine; intended for
        validation (the test suite asserts the two agree on the private
        levels and on the fits/thrashes regimes of the shared L3) and for
        experimentation with custom geometries.
        """
        cfg = self.config
        rng = np.random.default_rng(seed)
        orders = [
            self._thread_lines(chase, t)[rng.permutation(chase.n_pointers)]
            for t in range(chase.n_threads)
        ]
        private = [CacheHierarchy([cfg.l1d, cfg.l2]) for _ in range(chase.n_threads)]
        shared_l3 = CacheLevel(cfg.l3)

        totals = np.zeros((chase.n_threads, 6))  # l1h, l1m, l2h, l2m, l3h, l3m
        for pass_idx in range(warmup_passes + 1):
            measuring = pass_idx == warmup_passes
            l3_streams: List[np.ndarray] = []
            for t, hierarchy in enumerate(private):
                trace = orders[t]
                l1_hits = hierarchy.levels[0].simulate_trace(trace)
                l2_in = trace[~l1_hits]
                l2_hits = hierarchy.levels[1].simulate_trace(l2_in)
                l3_streams.append(l2_in[~l2_hits])
                if measuring:
                    totals[t, 0] = float(l1_hits.sum())
                    totals[t, 1] = float(trace.size - l1_hits.sum())
                    totals[t, 2] = float(l2_hits.sum())
                    totals[t, 3] = float(l2_in.size - l2_hits.sum())
            # Round-robin interleave the surviving streams into the shared
            # L3, remembering the owning thread of each access.
            lengths = [s.size for s in l3_streams]
            if any(lengths):
                owners = np.concatenate(
                    [np.full(n, t, dtype=np.int64) for t, n in enumerate(lengths)]
                )
                merged = np.concatenate(l3_streams)
                # Interleave by position: sort by (index within stream, thread).
                position = np.concatenate(
                    [np.arange(n, dtype=np.int64) for n in lengths]
                )
                order = np.lexsort((owners, position))
                l3_hits = shared_l3.simulate_trace(merged[order])
                if measuring:
                    owner_order = owners[order]
                    for t in range(chase.n_threads):
                        mine = owner_order == t
                        totals[t, 4] = float(np.count_nonzero(l3_hits & mine))
                        totals[t, 5] = float(np.count_nonzero(~l3_hits & mine))

        return [
            self._chase_activity(chase, *totals[t]) for t in range(chase.n_threads)
        ]

    def _chase_activity(
        self,
        chase: PointerChase,
        l1_hits: float,
        l1_misses: float,
        l2_hits: float,
        l2_misses: float,
        l3_hits: float,
        l3_misses: float,
    ) -> Activity:
        """Per-access activity record from one thread's per-pass counts."""
        cfg = self.config
        accesses = float(chase.n_pointers)
        per_access = 1.0 / accesses
        tlb = tlb_activity(chase.footprint_bytes, chase.n_pointers, cfg.tlb)
        cycles = (
            l1_hits * cfg.l1_latency
            + l2_hits * cfg.l2_latency
            + l3_hits * cfg.l3_latency
            + l3_misses * cfg.mem_latency
            + tlb["tlb.walk_cycles"]
        )
        act: Dict[str, float] = {
            "mem.loads_retired": 1.0,
            "mem.stores_retired": 0.0,
            "instr.load": 1.0,
            "instr.int": 0.0,
            "instr.total": 2.0,  # load + loop branch
            "branch.cond_retired": 1.0,
            "branch.cond_taken": 1.0,
            "branch.cond_executed": 1.0,
            "branch.all_retired": 1.0,
            "branch.mispredicted": 0.0,
            "cache.l1d.demand_hit": l1_hits * per_access,
            "cache.l1d.demand_miss": l1_misses * per_access,
            "cache.l1d.replacement": l1_misses * per_access,
            "cache.l1d.fb_hit": 0.0,
            "cache.l2.demand_rd_hit": l2_hits * per_access,
            "cache.l2.demand_rd_miss": l2_misses * per_access,
            "cache.l2.all_demand_rd": (l2_hits + l2_misses) * per_access,
            "cache.l2.references": (l2_hits + l2_misses) * per_access,
            "cache.l2.prefetch_req": 0.0,  # the chase defeats prefetchers
            "cache.l3.hit": l3_hits * per_access,
            "cache.l3.miss": l3_misses * per_access,
            "cache.l3.references": (l3_hits + l3_misses) * per_access,
            "cycles.core": cycles * per_access,
            "cycles.ref": cycles * per_access * 0.8,
            "uops.issued": 2.0,
            "uops.retired": 2.0,
            "uops.executed": 2.0,
            "stall.mem": (cycles - accesses * cfg.l1_latency) * per_access * 0.9,
            "stall.total": (cycles - accesses * cfg.l1_latency) * per_access,
        }
        for key, value in tlb.items():
            act[key] = value * per_access
        return Activity(act)
