"""Data-TLB model for the pointer-chase workloads.

Uses the same cyclic-reuse fit argument as the cache model: a fully
associative LRU TLB walking a fixed set of pages once per pass either holds
the entire page working set (every translation hits) or thrashes.  For a
pointer chase the page set is re-referenced in a scattered order with
``lines_per_page`` touches per page per pass; we charge one completed walk
per page per pass when the working set exceeds the TLB, which is the
steady-state lower bound the analysis-relevant events (``DTLB_LOAD_MISSES``)
track on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["TLBConfig", "tlb_activity"]


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of the data TLB (fully associative model)."""

    entries: int = 64
    stlb_entries: int = 2048
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.stlb_entries <= 0 or self.page_bytes <= 0:
            raise ValueError("TLB dimensions must be positive")


def tlb_activity(
    footprint_bytes: int,
    accesses_per_pass: int,
    config: TLBConfig = TLBConfig(),
) -> Dict[str, float]:
    """Per-pass TLB activity for a cyclic walk over ``footprint_bytes``.

    Returns counts per pass; the caller normalizes per access.
    """
    if footprint_bytes < 0 or accesses_per_pass < 0:
        raise ValueError("footprint and access counts must be non-negative")
    pages = -(-footprint_bytes // config.page_bytes) if footprint_bytes else 0
    # A pass cannot touch more pages than it makes accesses: sparse strides
    # (several pages between consecutive pointers) leave the skipped pages
    # untouched even though they sit inside the footprint.
    pages = min(pages, accesses_per_pass)
    if pages <= config.entries:
        return {
            "tlb.dtlb_load_hit": float(accesses_per_pass),
            "tlb.dtlb_load_miss": 0.0,
            "tlb.stlb_hit": 0.0,
            "tlb.walks": 0.0,
            "tlb.walk_cycles": 0.0,
        }
    if pages <= config.stlb_entries:
        # First-level misses are covered by the shared second-level TLB.
        return {
            "tlb.dtlb_load_hit": float(accesses_per_pass - pages),
            "tlb.dtlb_load_miss": float(pages),
            "tlb.stlb_hit": float(pages),
            "tlb.walks": 0.0,
            "tlb.walk_cycles": 0.0,
        }
    walk_latency = 30.0
    return {
        "tlb.dtlb_load_hit": float(accesses_per_pass - pages),
        "tlb.dtlb_load_miss": float(pages),
        "tlb.stlb_hit": 0.0,
        "tlb.walks": float(pages),
        "tlb.walk_cycles": float(pages) * walk_latency,
    }
