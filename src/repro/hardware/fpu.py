"""Floating-point unit and pipeline cost model.

Turns a per-iteration instruction mix into the time-like activity keys
(cycles, uops, port pressure, frontend traffic).  The analysis pipeline
never *composes* metrics from these quantities — they exist so that the
catalog's cycles/uops/stall events respond plausibly to every benchmark and
exercise the paper's filtering stages (noise filter for the jittery ones,
representation-residual rejection for the deterministic-but-contaminated
ones such as ``INST_RETIRED:ANY``).

The model is deliberately simple and fully deterministic: throughput-limited
issue over two FP pipes (three for 512-bit on the SPR configuration),
dyadic per-op latencies, and a fixed loop-overhead surcharge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.activity import FP_KINDS, FP_PRECISIONS, FP_WIDTHS, fp_instr_key

__all__ = ["FPUConfig", "fp_pipeline_activity"]


@dataclass(frozen=True)
class FPUConfig:
    """Issue resources of the FP subsystem."""

    fp_pipes: int = 2  # FP ports (SPR: ports 0 and 1; port 5 for 512-bit)
    issue_width: int = 6  # allocation width (uops/cycle)
    uops_per_fp_instr: float = 1.0
    loop_overhead_uops: float = 3.0  # counter add + compare/branch (fused) + ptr
    loop_overhead_cycles: float = 1.0


def fp_pipeline_activity(
    fp_ops: Mapping[str, float],
    int_ops: float,
    branches_per_iter: float,
    config: FPUConfig = FPUConfig(),
) -> Dict[str, float]:
    """Per-iteration pipeline activity for a compute kernel body.

    Parameters
    ----------
    fp_ops:
        Mapping of FP activity keys (``instr.fp.<width>.<prec>.<kind>``) to
        per-iteration instruction counts.
    int_ops:
        Per-iteration scalar integer instructions (loop overhead).
    branches_per_iter:
        Per-iteration retired branches (for uop accounting).
    """
    fp_instrs = 0.0
    wide_instrs = 0.0
    for width in FP_WIDTHS:
        for prec in FP_PRECISIONS:
            for kind in FP_KINDS:
                count = float(fp_ops.get(fp_instr_key(width, prec, kind), 0.0))
                fp_instrs += count
                if width == "512":
                    wide_instrs += count

    fp_uops = fp_instrs * config.uops_per_fp_instr
    total_uops = fp_uops + int_ops + branches_per_iter + config.loop_overhead_uops

    # Throughput bound: narrow FP work shares fp_pipes; 512-bit work is
    # restricted to a single pipe on this configuration.
    narrow = fp_instrs - wide_instrs
    fp_cycles = max(narrow / config.fp_pipes, wide_instrs)
    frontend_cycles = total_uops / config.issue_width
    cycles = max(fp_cycles, frontend_cycles) + config.loop_overhead_cycles

    return {
        "uops.issued": total_uops,
        "uops.retired": total_uops,
        "uops.executed": total_uops,
        "cycles.core": cycles,
        "cycles.ref": cycles * 0.8,  # fixed ref-clock ratio
        "frontend.dsb_uops": total_uops * 0.97,
        "frontend.mite_uops": total_uops * 0.03,
        "frontend.fetch_bubbles": 0.05,
        "stall.exec": max(0.0, fp_cycles - frontend_cycles) * 0.5,
        "stall.total": 0.1,
    }
