"""Span-based tracing and named counters for the analysis pipeline.

The pipeline is a chain of numerically delicate stages whose intermediate
decisions — which events survived the noise filter, which columns QRCP
pivoted, which guard rungs fired, which cache entries hit — are invisible
from the outside.  This module gives every layer a lightweight way to
record them:

* **Spans** nest like call frames: ``with tracer.span("qrcp") as span``
  opens a timed region (monotonic ``perf_counter_ns``), and structured
  attributes attach via ``span.set(rank=4)``.
* **Counters and gauges** are named totals (``tracer.incr("qrcp.pivots",
  rank)``); every name the repo emits is catalogued in
  ``docs/observability.md``.
* **The ambient tracer** (:func:`get_tracer`) is how instrumented code
  finds its destination.  By default it is :data:`NULL_TRACER`, whose
  every operation is a constant-time no-op — the instrumentation hooks
  must cost nothing when nobody is looking (benchmarked in
  ``benchmarks/bench_obs_overhead.py``).  :func:`tracing` activates a
  real tracer for a scope.

Determinism contract: tracing never touches a random stream, never
reorders a computation, and never feeds anything back into the analysis,
so a traced run's numerical outputs are bit-identical to an untraced one
(property-tested).  Span ids are derived from the span's path, occurrence
index and the tracer seed — never from wall-clock time or object
identity — so two runs of the same configuration produce the same ids.
Durations are monotonic-clock *deltas* (the only non-deterministic field;
golden tests pin counter totals, not timings).

The ambient-tracer stack is thread-local: a tracer activated on one
thread is invisible to others, so a thread-pool sweep under tracing
records the coordinator's spans without data races in the workers.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "NULL_TRACER",
    "Span",
    "Trace",
    "Tracer",
    "get_tracer",
    "tracing",
]

#: Attribute/counter values must stay JSON-scalar so traces round-trip
#: losslessly through the canonical JSONL form.
Scalar = Union[str, int, float, bool, None]
_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_scalar(name: str, value: Any) -> Any:
    if isinstance(value, _SCALAR_TYPES):
        return value
    raise TypeError(
        f"trace attribute {name!r} must be a JSON scalar "
        f"(str/int/float/bool/None), got {type(value).__name__}"
    )


def span_id(seed: int, path: str, occurrence: int) -> str:
    """Deterministic span id: a digest of ``(seed, path, occurrence)``.

    No wall-clock, no object identity — two runs of the same
    configuration assign the same id to the same span.
    """
    from repro.io.digest import sha256_hex

    return sha256_hex(f"{seed}:{path}#{occurrence}", length=12)


@dataclass
class Span:
    """One recorded region: a node of the trace tree.

    ``path`` is the ``/``-joined names from the root; ``index`` is the
    global start order (the JSONL line order); ``duration_ns`` is a
    monotonic-clock delta, filled when the region closes.
    """

    name: str
    path: str
    id: str
    parent: Optional[str]
    index: int
    depth: int
    duration_ns: int = 0
    attrs: Dict[str, Scalar] = field(default_factory=dict)

    def set(self, **attrs: Scalar) -> "Span":
        """Attach structured attributes (JSON scalars only)."""
        for key, value in attrs.items():
            self.attrs[key] = _check_scalar(key, value)
        return self


class _NullSpan:
    """The disabled-path span: every operation is a no-op.

    A single shared instance backs every ``tracer.span(...)`` call on a
    disabled tracer, so the hot path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Scalar) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that records one :class:`Span` on a live tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Scalar]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None
        self._start = 0

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        self._start = _clock()
        return self._span

    def __exit__(self, *exc) -> bool:
        elapsed = _clock() - self._start
        self._tracer._close(self._span, elapsed)
        return False


_clock = time.perf_counter_ns


class Tracer:
    """Collects spans, counters and gauges for one observed scope.

    With ``enabled=False`` every method returns immediately (``span``
    hands back the shared :data:`NULL_SPAN`); :data:`NULL_TRACER` is the
    module-wide disabled instance the ambient lookup falls back to.
    """

    def __init__(self, seed: int = 0, enabled: bool = True):
        self.seed = int(seed)
        self.enabled = bool(enabled)
        self.spans: List[Span] = []
        self.counters: Dict[str, Union[int, float]] = {}
        self.gauges: Dict[str, Scalar] = {}
        self._stack: List[Span] = []
        self._occurrences: Dict[str, int] = {}

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Scalar):
        """A context manager timing one region (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, name, attrs)

    def incr(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` to the named counter (no-op when disabled)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: Scalar) -> None:
        """Record the latest value of a named gauge (no-op when disabled)."""
        if not self.enabled:
            return
        self.gauges[name] = _check_scalar(name, value)

    # -- internals -----------------------------------------------------
    def _open(self, name: str, attrs: Dict[str, Scalar]) -> Span:
        name = name.replace("/", "-")
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent is not None else name
        occurrence = self._occurrences.get(path, 0)
        self._occurrences[path] = occurrence + 1
        span = Span(
            name=name,
            path=path,
            id=span_id(self.seed, path, occurrence),
            parent=parent.id if parent is not None else None,
            index=len(self.spans),
            depth=len(self._stack),
        )
        for key, value in attrs.items():
            span.attrs[key] = _check_scalar(key, value)
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Optional[Span], elapsed_ns: int) -> None:
        if span is None:
            return
        span.duration_ns = int(elapsed_ns)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # -- export --------------------------------------------------------
    def trace(self) -> "Trace":
        """A snapshot of everything recorded so far."""
        return Trace(
            seed=self.seed,
            spans=list(self.spans),
            counters=dict(self.counters),
            gauges=dict(self.gauges),
        )


NULL_TRACER = Tracer(enabled=False)

_local = threading.local()


def _stack() -> List[Tracer]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def get_tracer() -> Tracer:
    """The ambient tracer of the calling thread (:data:`NULL_TRACER`
    when no :func:`tracing` scope is active)."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else NULL_TRACER


@contextmanager
def tracing(
    seed: int = 0, tracer: Optional[Tracer] = None
) -> Iterator[Tracer]:
    """Activate a tracer for the enclosed scope (this thread only).

    Instrumented code reached inside the ``with`` block records into it::

        with obs.tracing(seed=2024) as tracer:
            result = pipeline.run()
        print(tracer.trace().render())
    """
    active = tracer if tracer is not None else Tracer(seed=seed)
    stack = _stack()
    stack.append(active)
    try:
        yield active
    finally:
        stack.pop()


def _canonical(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass
class Trace:
    """A finished trace: the span tree plus counter/gauge totals.

    The JSONL form is canonical (sorted keys, fixed separators, one
    record per line), so ``from_jsonl(trace.to_jsonl()).to_jsonl()`` is
    byte-identical to ``trace.to_jsonl()`` — the round-trip property the
    golden suite and the ``repro-cat trace`` CLI rely on.
    """

    seed: int
    spans: List[Span] = field(default_factory=list)
    counters: Dict[str, Union[int, float]] = field(default_factory=dict)
    gauges: Dict[str, Scalar] = field(default_factory=dict)

    VERSION = 1

    # -- queries -------------------------------------------------------
    def counter_totals(self) -> Dict[str, Union[int, float]]:
        """Counters in name order (the golden-pinned totals)."""
        return dict(sorted(self.counters.items()))

    def children(self, span: Optional[Span]) -> List[Span]:
        parent_id = span.id if span is not None else None
        return [s for s in self.spans if s.parent == parent_id]

    def find(self, path: str) -> List[Span]:
        """Every span recorded at ``path`` (root-relative, ``/``-joined)."""
        return [s for s in self.spans if s.path == path]

    def stage_timings(self) -> Dict[str, int]:
        """Aggregate duration (ns) per stage name, first-seen order.

        "Stages" are the depth-1 spans — the direct children of the
        pipeline root(s); repeated stages (several runs sharing one
        tracer) sum.
        """
        timings: Dict[str, int] = {}
        for span in self.spans:
            if span.depth == 1:
                timings[span.name] = timings.get(span.name, 0) + span.duration_ns
        return timings

    def footer(self) -> str:
        """One-line stage-timing summary for ``PipelineResult.summary``."""
        timings = self.stage_timings()
        if not timings:
            return f"trace: {len(self.spans)} span(s), no stage breakdown"
        parts = [f"{name} {_fmt_ns(ns)}" for name, ns in timings.items()]
        return (
            "trace: "
            + " | ".join(parts)
            + f"  ({len(self.spans)} spans, {len(self.counters)} counters)"
        )

    # -- JSONL ---------------------------------------------------------
    def to_jsonl(self) -> str:
        """Canonical JSONL: header line, spans in start order, counters
        and gauges in name order.  Deterministic except ``duration_ns``."""
        lines = [
            _canonical(
                {
                    "counters": len(self.counters),
                    "gauges": len(self.gauges),
                    "seed": self.seed,
                    "spans": len(self.spans),
                    "type": "header",
                    "version": self.VERSION,
                }
            )
        ]
        for span in self.spans:
            lines.append(
                _canonical(
                    {
                        "attrs": span.attrs,
                        "depth": span.depth,
                        "duration_ns": span.duration_ns,
                        "id": span.id,
                        "index": span.index,
                        "name": span.name,
                        "parent": span.parent,
                        "path": span.path,
                        "type": "span",
                    }
                )
            )
        for name in sorted(self.counters):
            lines.append(
                _canonical(
                    {"name": name, "type": "counter", "value": self.counters[name]}
                )
            )
        for name in sorted(self.gauges):
            lines.append(
                _canonical(
                    {"name": name, "type": "gauge", "value": self.gauges[name]}
                )
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Parse the JSONL form back into a :class:`Trace`.

        Raises ``ValueError`` on a malformed document (missing header,
        unknown record type, truncated line) so callers can distinguish
        "not a trace" from I/O errors.
        """
        seed = 0
        spans: List[Span] = []
        counters: Dict[str, Union[int, float]] = {}
        gauges: Dict[str, Scalar] = {}
        saw_header = False
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"trace line {lineno} is not JSON: {exc}") from None
            kind = record.get("type")
            if kind == "header":
                saw_header = True
                seed = int(record.get("seed", 0))
                version = record.get("version")
                if version != cls.VERSION:
                    raise ValueError(
                        f"unsupported trace version {version!r} "
                        f"(this reader speaks {cls.VERSION})"
                    )
            elif kind == "span":
                spans.append(
                    Span(
                        name=record["name"],
                        path=record["path"],
                        id=record["id"],
                        parent=record["parent"],
                        index=int(record["index"]),
                        depth=int(record["depth"]),
                        duration_ns=int(record["duration_ns"]),
                        attrs=dict(record.get("attrs", {})),
                    )
                )
            elif kind == "counter":
                counters[record["name"]] = record["value"]
            elif kind == "gauge":
                gauges[record["name"]] = record["value"]
            else:
                raise ValueError(
                    f"trace line {lineno} has unknown record type {kind!r}"
                )
        if not saw_header:
            raise ValueError("not a trace: no header record found")
        spans.sort(key=lambda s: s.index)
        return cls(seed=seed, spans=spans, counters=counters, gauges=gauges)

    def render(self, show_counters: bool = True) -> str:
        """Human-readable summary tree (see :mod:`repro.obs.render`)."""
        from repro.obs.render import render_trace

        return render_trace(self, show_counters=show_counters)


def _fmt_ns(ns: int) -> str:
    """Compact human duration: ns -> us/ms/s with 3 significant digits."""
    if ns < 1_000:
        return f"{ns}ns"
    if ns < 1_000_000:
        return f"{ns / 1_000:.3g}us"
    if ns < 1_000_000_000:
        return f"{ns / 1_000_000:.3g}ms"
    return f"{ns / 1_000_000_000:.3g}s"
