"""Pipeline observability: span tracing, counters, trace export.

Zero-dependency instrumentation for the analysis pipeline.  Off by
default: every hook routes through the ambient tracer
(:func:`get_tracer`), which is the no-op :data:`NULL_TRACER` until a
:func:`tracing` scope activates a live one::

    from repro import obs

    with obs.tracing(seed=2024) as tracer:
        result = AnalysisPipeline.for_domain("branch", node).run()

    print(result.trace.render())              # summary tree + counters
    path.write_text(result.trace.to_jsonl())  # canonical JSONL export

Traced runs are bit-identical to untraced ones (property-tested); span
ids are deterministic functions of span path + seed.  The counter
vocabulary and span model are documented in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.obs.render import render_trace, trace_json_digest
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    Trace,
    Tracer,
    get_tracer,
    span_id,
    tracing,
)

__all__ = [
    "NULL_TRACER",
    "Span",
    "Trace",
    "Tracer",
    "get_tracer",
    "render_trace",
    "span_id",
    "trace_json_digest",
    "tracing",
]
