"""Rendering for traces: the ``repro-cat trace`` summary tree.

Turns a :class:`~repro.obs.trace.Trace` into the terminal view — span
tree with durations and attributes, then counter and gauge totals — and
a machine-readable JSON digest for ``repro-cat trace --json``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.trace import Span, Trace, _fmt_ns

__all__ = ["render_trace", "trace_json_digest"]


def _attr_suffix(span: Span) -> str:
    if not span.attrs:
        return ""
    parts = [f"{k}={span.attrs[k]}" for k in span.attrs]
    return "  " + " ".join(parts)


def _render_subtree(
    trace: Trace,
    span: Span,
    by_parent: Dict[Optional[str], List[Span]],
    prefix: str,
    lines: List[str],
    is_last: bool,
    is_root: bool,
) -> None:
    if is_root:
        connector, child_prefix = "", ""
    else:
        connector = "`- " if is_last else "|- "
        child_prefix = prefix + ("   " if is_last else "|  ")
    label = f"{prefix}{connector}{span.name}"
    lines.append(f"{label:<44} {_fmt_ns(span.duration_ns):>8}{_attr_suffix(span)}")
    children = by_parent.get(span.id, [])
    for i, child in enumerate(children):
        _render_subtree(
            trace,
            child,
            by_parent,
            child_prefix,
            lines,
            is_last=(i == len(children) - 1),
            is_root=False,
        )


def render_trace(trace: Trace, show_counters: bool = True) -> str:
    """The summary tree: spans with timings, then counter/gauge totals."""
    by_parent: Dict[Optional[str], List[Span]] = {}
    for span in trace.spans:
        by_parent.setdefault(span.parent, []).append(span)
    lines = [
        f"trace seed={trace.seed}: {len(trace.spans)} span(s), "
        f"{len(trace.counters)} counter(s), {len(trace.gauges)} gauge(s)"
    ]
    roots = by_parent.get(None, [])
    if roots:
        lines.append("")
    for root in roots:
        _render_subtree(
            trace, root, by_parent, "", lines, is_last=True, is_root=True
        )
    if show_counters and trace.counters:
        lines.append("")
        lines.append("counters:")
        totals = trace.counter_totals()
        width = max(len(name) for name in totals)
        for name, value in totals.items():
            lines.append(f"  {name:<{width}}  {value}")
    if show_counters and trace.gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in trace.gauges)
        for name in sorted(trace.gauges):
            lines.append(f"  {name:<{width}}  {trace.gauges[name]}")
    return "\n".join(lines)


def trace_json_digest(trace: Trace) -> str:
    """Machine-readable digest for ``repro-cat trace --json``: stage
    timings, counter totals and span count, one canonical JSON object."""
    payload = {
        "counters": trace.counter_totals(),
        "gauges": {k: trace.gauges[k] for k in sorted(trace.gauges)},
        "seed": trace.seed,
        "spans": len(trace.spans),
        "stage_timings_ns": trace.stage_timings(),
    }
    return json.dumps(payload, sort_keys=True, indent=2)
