"""The closed-loop load harness for the serving tier.

:func:`run_load_drill` is the executable form of the serving tier's
*scaling* contract, the way :func:`~repro.serve.chaos.run_chaos_drill`
is the executable form of its fault-tolerance contract.  It runs the
same deterministic workload against a serving target and judges every
response against the invariant:

    every answer is **bit-identical** (by
    :func:`~repro.serve.chaos.definition_digest`) to the single-process
    baseline, a **typed rejection** (429/503, or a typed transport
    error under saturation), or an **explicitly stale** degraded
    answer.  Anything else is a recorded violation.

The harness borrows ELAPS's methodology: sweep a workload parameter
(offered requests per second), measure latency percentiles at each
step, and let the resulting saturation curve — not an anecdote — show
where coalescing, batching, and backpressure stop holding.

Workload models
---------------
*Closed loop* — each of N clients issues its next request the moment
the previous one completes; concurrency is fixed at N and the achieved
throughput *is* the measurement.  *Open loop* — requests are fired on a
fixed global schedule (``offered_rps``) regardless of completions, so
queueing delay shows up as latency instead of silently throttling the
offered load.  Per-client request streams are derived from a seeded
RNG (client index + workload seed), so a drill replays bit-identically.

Every stream opens with a shared *rendezvous* request — all clients ask
for the same fresh analysis at once — which makes request coalescing
observable: one client computes, the riders wait, and the worker's
``serve.coalesced`` stat counts them.
"""

from __future__ import annotations

import asyncio
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.io.digest import sha256_hex
from repro.obs import get_tracer
from repro.serve.chaos import _baseline_digests, definition_digest
from repro.serve.client import CatalogClient
from repro.serve.service import MetricService, ServiceError, TransportError
from repro.serve.supervisor import (
    ServiceSupervisor,
    SupervisorConfig,
    SupervisorServer,
)

__all__ = [
    "LoadReport",
    "LoadStep",
    "LoadStepReport",
    "RequestSpec",
    "Workload",
    "latency_percentile",
    "run_load_drill",
]


@dataclass(frozen=True)
class RequestSpec:
    """One planned request: a domain analysis or a single-metric read."""

    kind: str  # "analyze" | "metric"
    system: str
    domain: str
    seed: int
    metric: Optional[str] = None


@dataclass(frozen=True)
class LoadStep:
    """One step of a drill: a workload model plus (for open loop) the
    offered request rate the schedule is built from."""

    mode: str = "closed"  # "closed" | "open"
    offered_rps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"LoadStep.mode must be closed|open, not {self.mode!r}")
        if self.mode == "open" and (
            self.offered_rps is None or self.offered_rps <= 0
        ):
            raise ValueError("open-loop LoadStep needs offered_rps > 0")

    def label(self) -> str:
        if self.mode == "closed":
            return "closed"
        return f"open@{self.offered_rps:g}rps"


@dataclass(frozen=True)
class Workload:
    """A deterministic request population.

    ``hot_fraction`` of each stream (after the rendezvous request) is
    single-metric ``GET`` reads against the rendezvous seed — catalog
    hits once the first analysis publishes — and the rest are domain
    analyses over ``seed_pool`` distinct seeds.  With ``unique_seeds``
    every request is instead a globally unique fresh analysis, which
    makes the workload pipeline-bound: the right population for
    comparing multi-process against single-process throughput.
    """

    pairs: Sequence[Tuple[str, str]] = (("aurora", "branch"),)
    clients: int = 4
    requests_per_client: int = 6
    base_seed: int = 2024
    seed_pool: int = 2
    hot_fraction: float = 0.6
    unique_seeds: bool = False

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("Workload.pairs must be non-empty")
        if self.clients < 1 or self.requests_per_client < 1:
            raise ValueError("Workload needs >= 1 client and >= 1 request each")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("Workload.hot_fraction must be in [0, 1]")
        if self.seed_pool < 1:
            raise ValueError("Workload.seed_pool must be >= 1")

    def universe(self) -> List[Tuple[str, str, int]]:
        """Every ``(system, domain, seed)`` analysis any stream can
        request — the baseline precomputes ground truth for all of it."""
        keys: List[Tuple[str, str, int]] = []
        if self.unique_seeds:
            for client in range(self.clients):
                for i in range(self.requests_per_client):
                    system, domain = self.pairs[
                        (client * self.requests_per_client + i) % len(self.pairs)
                    ]
                    keys.append((system, domain, self._unique_seed(client, i)))
        else:
            for system, domain in self.pairs:
                for offset in range(self.seed_pool):
                    keys.append((system, domain, self.base_seed + offset))
        seen = set()
        unique = []
        for key in keys:
            if key not in seen:
                seen.add(key)
                unique.append(key)
        return unique

    def _unique_seed(self, client: int, i: int) -> int:
        return self.base_seed + client * self.requests_per_client + i

    def _rng(self, client: int) -> random.Random:
        return random.Random(
            int(sha256_hex(f"load:{self.base_seed}:client:{client}", length=8), 16)
        )

    def client_stream(
        self, client: int, metric_names: Dict[Tuple[str, str], Sequence[str]]
    ) -> List[RequestSpec]:
        """Client ``client``'s full request stream — a pure function of
        the workload parameters, so drills replay bit-identically."""
        if self.unique_seeds:
            return [
                RequestSpec(
                    "analyze",
                    *self.pairs[
                        (client * self.requests_per_client + i) % len(self.pairs)
                    ],
                    seed=self._unique_seed(client, i),
                )
                for i in range(self.requests_per_client)
            ]
        rng = self._rng(client)
        stream = [
            RequestSpec("analyze", *self.pairs[0], seed=self.base_seed)
        ]  # the rendezvous: every client, same fresh analysis, at once
        while len(stream) < self.requests_per_client:
            system, domain = self.pairs[rng.randrange(len(self.pairs))]
            if rng.random() < self.hot_fraction:
                names = metric_names[(system, domain)]
                stream.append(
                    RequestSpec(
                        "metric",
                        system,
                        domain,
                        seed=self.base_seed,
                        metric=names[rng.randrange(len(names))],
                    )
                )
            else:
                stream.append(
                    RequestSpec(
                        "analyze",
                        system,
                        domain,
                        seed=self.base_seed + rng.randrange(self.seed_pool),
                    )
                )
        return stream


def latency_percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (the load-testing convention: p99 is an
    observed sample, never an interpolated value that nobody saw)."""
    if not latencies:
        return 0.0
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], not {q}")
    ordered = sorted(latencies)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass
class LoadStepReport:
    """Everything one step observed, judged against the invariant.

    ``identical`` and ``stale`` count per-*metric* verdicts — a domain
    analysis response carries every metric of its domain, each judged
    separately — so both can legitimately exceed ``requests``.
    """

    step: LoadStep
    requests: int = 0
    identical: int = 0
    stale: int = 0
    rejected: int = 0
    transport_rejected: int = 0
    violations: List[str] = field(default_factory=list)
    duration_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def achieved_rps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    @property
    def p50_ms(self) -> float:
        return latency_percentile(self.latencies, 50) * 1000.0

    @property
    def p95_ms(self) -> float:
        return latency_percentile(self.latencies, 95) * 1000.0

    @property
    def p99_ms(self) -> float:
        return latency_percentile(self.latencies, 99) * 1000.0

    def to_row(self) -> Dict[str, Any]:
        return {
            "step": self.step.label(),
            "offered_rps": self.step.offered_rps,
            "achieved_rps": round(self.achieved_rps, 2),
            "requests": self.requests,
            "identical": self.identical,
            "stale": self.stale,
            "rejected": self.rejected,
            "violations": len(self.violations),
            "p50_ms": round(self.p50_ms, 1),
            "p95_ms": round(self.p95_ms, 1),
            "p99_ms": round(self.p99_ms, 1),
        }


@dataclass
class LoadReport:
    """One full drill: per-step reports plus pool-wide evidence."""

    target: str
    workload: Workload
    steps: List[LoadStepReport] = field(default_factory=list)
    coalesced: int = 0
    catalog_hits: int = 0
    supervisor_status: Optional[Dict[str, Any]] = None

    @property
    def requests(self) -> int:
        return sum(s.requests for s in self.steps)

    @property
    def violations(self) -> List[str]:
        return [v for s in self.steps for v in s.violations]

    @property
    def ok(self) -> bool:
        """The invariant held at every step: every response identical,
        explicitly stale, or a typed rejection."""
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"load drill [{self.target}]: {self.requests} request(s), "
            f"{len(self.violations)} violation(s), "
            f"coalesced={self.coalesced}, catalog_hits={self.catalog_hits}"
        ]
        for s in self.steps:
            lines.append(
                f"  {s.step.label()}: {s.requests} req in "
                f"{s.duration_seconds:.2f}s ({s.achieved_rps:.1f} rps) — "
                f"{s.identical} identical, {s.stale} stale, "
                f"{s.rejected} rejected; p50/p95/p99 = "
                f"{s.p50_ms:.0f}/{s.p95_ms:.0f}/{s.p99_ms:.0f} ms"
            )
        return "\n".join(lines)


def _drive_client(
    port: int,
    stream: Sequence[RequestSpec],
    *,
    mode: str,
    start_at: float,
    period: float,
    offset: float,
    timeout: float,
) -> List[Tuple[RequestSpec, str, Any, float]]:
    """One client's blocking drive loop (runs on an executor thread).

    Returns ``(spec, outcome, payload-or-exc, latency_seconds)`` rows;
    classification happens on the main thread so counter increments and
    report mutation stay single-threaded.
    """
    client = CatalogClient(port=port, timeout=timeout)
    rows: List[Tuple[RequestSpec, str, Any, float]] = []
    for i, spec in enumerate(stream):
        if mode == "open":
            due = start_at + offset + i * period
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        began = time.perf_counter()
        try:
            if spec.kind == "metric":
                payload = client.metric(
                    spec.system, spec.domain, spec.metric, seed=spec.seed
                )
                rows.append((spec, "metric", payload, time.perf_counter() - began))
            else:
                metrics = client.analyze(spec.system, spec.domain, seed=spec.seed)
                rows.append((spec, "analyze", metrics, time.perf_counter() - began))
        except Exception as exc:  # noqa: BLE001 — classified on the main thread
            rows.append((spec, "error", exc, time.perf_counter() - began))
    return rows


def _classify(
    report: LoadStepReport,
    spec: RequestSpec,
    outcome: str,
    payload: Any,
    baseline: Dict[Tuple[str, str, int], Dict[str, str]],
) -> None:
    """Judge one response against the invariant; mutates ``report``."""
    tracer = get_tracer()
    report.requests += 1
    tracer.incr("load.requests")
    expected = baseline.get((spec.system, spec.domain, spec.seed), {})
    if outcome == "error":
        exc = payload
        if isinstance(exc, TransportError):
            # Typed transport failure (connection refused/reset under
            # saturation) — within the contract, but tracked apart so a
            # flaky network path cannot masquerade as clean backpressure.
            report.rejected += 1
            report.transport_rejected += 1
            tracer.incr("load.rejected")
            return
        if isinstance(exc, ServiceError):
            structured = isinstance(exc.payload, dict) and "error" in exc.payload
            if exc.status in (429, 503, 504) and structured:
                report.rejected += 1
                tracer.incr("load.rejected")
            else:
                report.violations.append(
                    f"{spec}: untyped or non-retryable error "
                    f"{exc.status}: {exc.payload!r}"
                )
                tracer.incr("load.violations")
            return
        report.violations.append(
            f"{spec}: raw {type(exc).__name__} escaped the client: {exc}"
        )
        tracer.incr("load.violations")
        return
    pairs = (
        [(spec.metric, payload)] if outcome == "metric" else sorted(payload.items())
    )
    for name, metric_payload in pairs:
        if metric_payload.get("stale"):
            report.stale += 1
            tracer.incr("load.stale")
            continue
        got = definition_digest(metric_payload)
        want = expected.get(name)
        if got == want:
            report.identical += 1
            tracer.incr("load.identical")
        else:
            report.violations.append(
                f"{spec} {name}: definition digest {got} != baseline "
                f"{want} and not marked stale"
            )
            tracer.incr("load.violations")


async def _run_step(
    port: int,
    step: LoadStep,
    streams: Sequence[Sequence[RequestSpec]],
    baseline: Dict[Tuple[str, str, int], Dict[str, str]],
    *,
    timeout: float,
) -> LoadStepReport:
    report = LoadStepReport(step=step)
    loop = asyncio.get_running_loop()
    period = 0.0
    if step.mode == "open":
        # Global schedule: requests evenly spaced at offered_rps, client
        # i firing its j-th request at (j * clients + i) / rps.
        period = len(streams) / step.offered_rps
    pool = ThreadPoolExecutor(
        max_workers=len(streams), thread_name_prefix="repro-load"
    )
    began = time.perf_counter()
    try:
        start_at = time.monotonic()
        futures = [
            loop.run_in_executor(
                pool,
                lambda c=client, s=stream: _drive_client(
                    port,
                    s,
                    mode=step.mode,
                    start_at=start_at,
                    period=period,
                    offset=(c * period / max(1, len(streams)))
                    if step.mode == "open"
                    else 0.0,
                    timeout=timeout,
                ),
            )
            for client, stream in enumerate(streams)
        ]
        per_client = await asyncio.gather(*futures)
    finally:
        pool.shutdown(wait=True)
    report.duration_seconds = time.perf_counter() - began
    for rows in per_client:
        for spec, outcome, payload, latency in rows:
            report.latencies.append(latency)
            _classify(report, spec, outcome, payload, baseline)
    return report


def _pool_stats(
    target: str,
    port: int,
    supervisor: Optional[ServiceSupervisor],
    timeout: float,
) -> Tuple[int, int]:
    """Sum ``serve.coalesced`` / ``serve.catalog_hits`` across the pool
    — each worker's ``/healthz`` stats for the sharded tier, the single
    listener's own for the baseline tier."""
    coalesced = 0
    catalog_hits = 0
    ports = [port]
    if supervisor is not None:
        ports = [
            w["port"]
            for w in supervisor.status()["workers"]
            if w["port"] is not None
        ]
    for worker_port in ports:
        try:
            stats = CatalogClient(port=worker_port, timeout=timeout).health()[
                "stats"
            ]
        except Exception:  # noqa: BLE001 — a dead worker just contributes 0
            continue
        coalesced += int(stats.get("coalesced", 0))
        catalog_hits += int(stats.get("catalog_hits", 0))
    return coalesced, catalog_hits


def run_load_drill(
    catalog_root: Optional[str] = None,
    *,
    target: str = "sharded",
    workers: int = 2,
    shards: int = 2,
    workload: Optional[Workload] = None,
    steps: Sequence[LoadStep] = (LoadStep("closed"),),
    cache_dir: Optional[str] = None,
    config: Optional[SupervisorConfig] = None,
    client_timeout: float = 60.0,
    baseline: Optional[Dict[Tuple[str, str, int], Dict[str, str]]] = None,
) -> LoadReport:
    """Drive the workload through a serving target, step by step.

    ``target`` selects the tier: ``"sharded"`` starts a
    :class:`ServiceSupervisor` pool (``workers`` processes over
    ``shards`` catalog shards) behind a :class:`SupervisorServer`
    front; ``"single"`` starts one in-process
    :class:`~repro.serve.http.HttpMetricServer` — the baseline the
    sharded tier's throughput is judged against.

    Ground truth is computed first (one plain service answers the whole
    workload universe), or passed in via ``baseline`` so a benchmark
    can amortise it across drills.  Returns a :class:`LoadReport`;
    ``report.ok`` is the invariant verdict.
    """
    if target not in ("sharded", "single"):
        raise ValueError(f"target must be sharded|single, not {target!r}")
    if target == "sharded" and catalog_root is None:
        raise ValueError("the sharded target needs a catalog_root")
    workload = workload or Workload()
    if not steps:
        raise ValueError("run_load_drill needs at least one LoadStep")
    universe = workload.universe()
    if baseline is None:
        baseline, _ = asyncio.run(_baseline_digests(universe, cache_dir))
    metric_names = {}
    for system, domain, seed in universe:
        metric_names.setdefault(
            (system, domain), sorted(baseline[(system, domain, seed)])
        )
    streams = [
        workload.client_stream(i, metric_names) for i in range(workload.clients)
    ]
    report = LoadReport(target=target, workload=workload)

    async def drive() -> None:
        supervisor: Optional[ServiceSupervisor] = None
        if target == "sharded":
            supervisor_config = config or SupervisorConfig(
                workers=workers,
                shards=shards,
                heartbeat_timeout=5.0,
                stale_max_age=3600.0,
            )
            supervisor = ServiceSupervisor(
                catalog_root, cache_dir=cache_dir, config=supervisor_config
            )
            front = SupervisorServer(supervisor)
            port = await front.start()
        else:
            from repro.serve.http import HttpMetricServer
            from repro.serve.shard import open_catalog

            store = None
            if catalog_root is not None:
                store = open_catalog(catalog_root)
            service = MetricService(
                store, cache_dir=cache_dir, stale_max_age=3600.0
            )
            front = HttpMetricServer(service, port=0)
            port = await front.start()
        try:
            for step in steps:
                report.steps.append(
                    await _run_step(
                        port, step, streams, baseline, timeout=client_timeout
                    )
                )
            loop = asyncio.get_running_loop()
            report.coalesced, report.catalog_hits = await loop.run_in_executor(
                None, lambda: _pool_stats(target, port, supervisor, client_timeout)
            )
            if supervisor is not None:
                report.supervisor_status = supervisor.status()
        finally:
            await front.stop()

    asyncio.run(drive())
    return report
