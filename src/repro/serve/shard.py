"""Consistent-hash catalog sharding: the ring and the sharded store.

One :class:`~repro.serve.catalog.MetricCatalogStore` directory is one
disk, one fsync queue, one directory-scan ceiling.  To serve "millions
of users" the catalog must partition — and the partition function must
be *stable* (a key always routes to the same shard, across processes
and restarts), *balanced* (no shard hoards the keyspace), and *minimal
under resharding* (growing N shards to N+1 moves ~1/(N+1) of the keys,
never a reshuffle of everything).  Those are exactly the guarantees of
a consistent-hash ring with virtual nodes, so that is what
:class:`ShardRing` is:

* Every shard contributes ``vnodes`` points on a 2**64 ring, each point
  the SHA-256 of ``"shard:<name>:vnode:<i>"`` — fully deterministic, no
  process-local salt, so every dispatcher, worker, and test agrees on
  the topology from the names alone.
* A key ``(architecture, metric)`` hashes to one ring position; its
  owner is the first shard point at or after it (wrapping).  Dead
  shards are *walked past*, so every key always maps to exactly one
  live shard while any shard survives.
* Adding a shard inserts its points between existing ones: a key moves
  only when a new point lands between the key and its old owner — i.e.
  only *onto the new shard*, and only for the slice the new shard now
  owns.  ``tests/serve/test_shard.py`` holds these as hypothesis
  properties.

:class:`ShardedCatalogStore` is the front that makes N per-shard
catalog stores look like one:

* **Routing** — keyed operations (``put``/``get``/``latest``/
  ``history``/``diff``/``stale_latest``) go to the ring owner of
  ``(arch, metric)`` (``shard.routes``).
* **Fan-out** — ``list_entries``/``log_records``/``fsck``/
  ``compact_log`` visit every shard and merge deterministically
  (rows sorted by key, fsck paths prefixed with the shard name), so a
  sharded catalog and an unsharded one render identically.
* **Degradation, not collapse** — a shard marked down (operator action
  or an I/O error during fan-out) yields a typed
  :class:`ShardUnavailable` (HTTP 503, retryable) for *its* keys, while
  every other shard keeps serving; listings skip it and record it in
  ``degraded_shards`` (``shard.degraded_reads``).
* **Read replicas** — hot ``latest`` reads are replicated into a small
  in-memory LRU; a replica is served only while its recorded
  events-registry digest (or per-event dependency map) still matches
  the caller's, so a registry edit invalidates replicas by the exact
  mechanism the catalog already uses for disk reads
  (``shard.replica_hits`` / ``shard.replica_invalidations``).

The topology is persisted in ``<root>/shards.json`` so a reader can
open an existing sharded root without being told N; creating and
opening are the same call.  Layout::

    root/
      shards.json                 # {"format": 1, "shards": [...], "vnodes": V}
      shard-00/ ... shard-NN/     # each a MetricCatalogStore root
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.io.digest import sha256_hex
from repro.obs import get_tracer
from repro.serve.catalog import (
    CatalogDiff,
    CatalogEntry,
    FsckReport,
    LogCompaction,
    MetricCatalogStore,
)
from repro.serve.service import ServiceError

__all__ = [
    "ShardRing",
    "ShardUnavailable",
    "ShardedCatalogStore",
    "open_catalog",
    "shard_names",
]

#: On-disk topology manifest format (bumped on incompatible changes).
MANIFEST_FORMAT = 1

_MANIFEST_NAME = "shards.json"

#: Ring positions live on [0, 2**64).
_RING_BITS = 64


def shard_names(n: int) -> Tuple[str, ...]:
    """The canonical names of an N-shard topology: ``shard-00`` ...."""
    if n < 1:
        raise ValueError(f"a topology needs at least one shard, got {n}")
    return tuple(f"shard-{i:02d}" for i in range(n))


def _ring_position(*chunks: str) -> int:
    return int(sha256_hex(":".join(chunks), length=_RING_BITS // 4), 16)


class ShardUnavailable(ServiceError):
    """Typed degradation: the shard owning this key is down (HTTP 503).

    Raised instead of whatever I/O error took the shard out, so callers
    (and the HTTP layer, which already speaks :class:`ServiceError`) see
    a retryable, structured failure scoped to the *keys of one shard* —
    never a whole-catalog outage.
    """

    def __init__(self, shard: str, detail: Optional[str] = None):
        self.shard = shard
        super().__init__(
            503,
            {
                "error": f"catalog shard {shard!r} is unavailable"
                + (f": {detail}" if detail else ""),
                "shard": shard,
                "retry": True,
            },
        )


class ShardRing:
    """Deterministic consistent-hash ring with virtual nodes.

    ``shards`` orders the topology (the manifest preserves it); the ring
    itself depends only on the shard *names*, so two processes that
    agree on the names agree on every routing decision.
    """

    def __init__(self, shards: Sequence[str], *, vnodes: int = 128):
        if not shards:
            raise ValueError("ShardRing needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard names: {sorted(shards)}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shards: Tuple[str, ...] = tuple(shards)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for name in self.shards:
            for i in range(vnodes):
                points.append((_ring_position("shard", name, f"vnode:{i}"), name))
        # SHA-256 collisions on 64 bits across a few thousand points are
        # astronomically unlikely; break ties by name so even then the
        # ring is a deterministic function of the topology.
        points.sort()
        self._points = points
        self._positions = [p for p, _ in points]

    @classmethod
    def of_size(cls, n: int, *, vnodes: int = 128) -> "ShardRing":
        return cls(shard_names(n), vnodes=vnodes)

    @staticmethod
    def key_position(arch: str, metric: str) -> int:
        """The ring position of a catalog key (pure, process-independent)."""
        return _ring_position("key", arch, metric)

    def lookup(
        self,
        arch: str,
        metric: str,
        *,
        exclude: Iterable[str] = (),
    ) -> str:
        """The live shard owning ``(arch, metric)``.

        ``exclude`` names down shards; their ring points are walked
        past, so the key still maps to exactly one *live* shard.  Raises
        :class:`ShardUnavailable` only when every shard is excluded.
        """
        down = frozenset(exclude)
        if not down:
            return self._owner(self.key_position(arch, metric))
        if down.issuperset(self.shards):
            raise ShardUnavailable(
                "*", "every shard of the topology is down"
            )
        position = self.key_position(arch, metric)
        start = bisect_left(self._positions, position)
        n = len(self._points)
        for offset in range(n):
            _, name = self._points[(start + offset) % n]
            if name not in down:
                return name
        raise AssertionError("unreachable: a live shard exists")  # pragma: no cover

    def _owner(self, position: int) -> str:
        index = bisect_left(self._positions, position)
        return self._points[index % len(self._points)][1]

    def arc_shares(self) -> Dict[str, float]:
        """Fraction of the ring each shard owns (sums to 1.0) — the
        balance diagnostic the property tests bound."""
        total = 1 << _RING_BITS
        shares = {name: 0 for name in self.shards}
        previous = self._points[-1][0] - total  # wrap: last point precedes 0
        for position, name in self._points:
            shares[name] += position - previous
            previous = position
        return {name: count / total for name, count in shares.items()}


@dataclass
class _Replica:
    """One replicated entry plus the freshness evidence it was read under."""

    entry: CatalogEntry
    events_digest: Optional[str]
    event_digests: Optional[Dict[str, str]]


class ShardedCatalogStore:
    """N per-shard :class:`MetricCatalogStore` roots behind one ring.

    Opening an existing root reads ``shards.json`` and ignores
    ``n_shards``'s value only if it matches — a topology mismatch is an
    error, not a silent re-partition (routing under the wrong N would
    scatter reads and writes across disagreeing owners).

    The interface mirrors :class:`MetricCatalogStore` (the service and
    CLI are duck-typed over either), plus shard management:
    :meth:`mark_down` / :meth:`mark_up`, :attr:`down_shards`, and
    :attr:`degraded_shards` (shards skipped by the most recent fan-out).
    """

    def __init__(
        self,
        root: Union[str, Path],
        n_shards: Optional[int] = None,
        *,
        vnodes: int = 128,
        replica_capacity: int = 256,
        durable: bool = True,
        failpoint: Optional[Callable[[str], Optional[str]]] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        manifest = self._load_manifest()
        if manifest is None:
            if n_shards is None:
                raise ValueError(
                    f"{self.root} has no {_MANIFEST_NAME}: pass n_shards to "
                    "create a sharded catalog"
                )
            names = shard_names(n_shards)
            self._write_manifest(names, vnodes)
        else:
            names = tuple(manifest["shards"])
            vnodes = int(manifest["vnodes"])
            if n_shards is not None and n_shards != len(names):
                raise ValueError(
                    f"{self.root} is a {len(names)}-shard catalog; "
                    f"reopening it with n_shards={n_shards} would re-partition "
                    "every key — migrate explicitly instead"
                )
        self.ring = ShardRing(names, vnodes=vnodes)
        self.durable = durable
        self._stores: Dict[str, MetricCatalogStore] = {
            name: MetricCatalogStore(
                self.root / name, durable=durable, failpoint=failpoint
            )
            for name in names
        }
        self._down: set = set()
        #: Shards the most recent fan-out had to skip (down or erroring).
        self.degraded_shards: Tuple[str, ...] = ()
        self._replica_capacity = replica_capacity
        self._replicas: "OrderedDict[Tuple[str, str, str], _Replica]" = OrderedDict()
        self._replica_lock = threading.Lock()

    # -- topology ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def _load_manifest(self) -> Optional[dict]:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except OSError:
            return None
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"unsupported shard manifest format {manifest.get('format')!r} "
                f"in {self.manifest_path} (this reader speaks {MANIFEST_FORMAT})"
            )
        return manifest

    def _write_manifest(self, names: Sequence[str], vnodes: int) -> None:
        import os

        payload = {
            "format": MANIFEST_FORMAT,
            "shards": list(names),
            "vnodes": vnodes,
        }
        # Atomic publish: racing creators (N workers opening the same
        # fresh root) write identical content, but a reader must never
        # see a torn manifest.
        staged = self.root / f".{_MANIFEST_NAME}.{os.getpid()}.staged"
        staged.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(staged, self.manifest_path)

    @property
    def shards(self) -> Tuple[str, ...]:
        return self.ring.shards

    @property
    def down_shards(self) -> FrozenSet[str]:
        return frozenset(self._down)

    def mark_down(self, shard: str) -> None:
        """Quarantine a shard: its keys degrade to :class:`ShardUnavailable`."""
        if shard not in self._stores:
            raise KeyError(f"unknown shard {shard!r}; have {list(self.shards)}")
        self._down.add(shard)
        with self._replica_lock:
            self._replicas.clear()

    def mark_up(self, shard: str) -> None:
        self._down.discard(shard)

    def shard_store(self, shard: str) -> MetricCatalogStore:
        """The underlying per-shard store (tests and tooling)."""
        return self._stores[shard]

    def shard_for(self, arch: str, metric: str) -> str:
        """The shard that owns a key right now (down shards walked past
        only for reads — see :meth:`_route`)."""
        return self.ring.lookup(arch, metric)

    def _route(self, arch: str, metric: str) -> MetricCatalogStore:
        """The owning store, or :class:`ShardUnavailable` if it is down.

        Down shards are *not* walked past for keyed catalog operations:
        a key's entries live in exactly one shard directory, so serving
        the key from a neighbour would manufacture misses (and writes
        would strand versions where no reader routes).  Walking past
        dead shards is the dispatcher's trick for *stateless* work; the
        store degrades loudly instead.
        """
        shard = self.ring.lookup(arch, metric)
        if shard in self._down:
            get_tracer().incr("shard.degraded_reads")
            raise ShardUnavailable(shard)
        get_tracer().incr("shard.routes")
        return self._stores[shard]

    # -- replicas ------------------------------------------------------
    def _replica_key(
        self, arch: str, metric: str, config_digest: str
    ) -> Tuple[str, str, str]:
        return (arch, metric, config_digest)

    def _replica_get(
        self,
        key: Tuple[str, str, str],
        events_digest: Optional[str],
        event_digests: Optional[Dict[str, str]],
    ) -> Optional[CatalogEntry]:
        with self._replica_lock:
            replica = self._replicas.get(key)
            if replica is None:
                return None
            if (
                replica.events_digest != events_digest
                or replica.event_digests != event_digests
            ):
                # The registry moved under the replica (or the caller's
                # freshness evidence changed): invalidate, re-read.
                del self._replicas[key]
                get_tracer().incr("shard.replica_invalidations")
                return None
            self._replicas.move_to_end(key)
        get_tracer().incr("shard.replica_hits")
        return replica.entry

    def _replica_put(
        self,
        key: Tuple[str, str, str],
        entry: CatalogEntry,
        events_digest: Optional[str],
        event_digests: Optional[Dict[str, str]],
    ) -> None:
        if events_digest is None and event_digests is None:
            # An unchecked read carries no freshness evidence; caching
            # it could serve a stale definition as fresh.  Don't.
            return
        with self._replica_lock:
            self._replicas[key] = _Replica(
                entry=entry,
                events_digest=events_digest,
                event_digests=dict(event_digests) if event_digests else None,
            )
            self._replicas.move_to_end(key)
            while len(self._replicas) > self._replica_capacity:
                self._replicas.popitem(last=False)

    def _replica_drop(self, key: Tuple[str, str, str]) -> None:
        with self._replica_lock:
            self._replicas.pop(key, None)

    @property
    def replica_count(self) -> int:
        with self._replica_lock:
            return len(self._replicas)

    # -- keyed operations ----------------------------------------------
    def put(self, entry: CatalogEntry) -> CatalogEntry:
        store = self._route(entry.arch, entry.metric)
        stored = store.put(entry)
        # A write is the other invalidation edge: the replica of this
        # key (if any) predates the new version.
        self._replica_drop(
            self._replica_key(entry.arch, entry.metric, entry.config_digest)
        )
        return stored

    def get(
        self,
        arch: str,
        metric: str,
        config_digest: str,
        version: Optional[int] = None,
        events_digest: Optional[str] = None,
        event_digests: Optional[Dict[str, str]] = None,
    ) -> Optional[CatalogEntry]:
        if version is not None:
            return self._route(arch, metric).get(
                arch,
                metric,
                config_digest,
                version=version,
                events_digest=events_digest,
                event_digests=event_digests,
            )
        return self.latest(
            arch,
            metric,
            config_digest,
            events_digest=events_digest,
            event_digests=event_digests,
        )

    def latest(
        self,
        arch: str,
        metric: str,
        config_digest: str,
        events_digest: Optional[str] = None,
        event_digests: Optional[Dict[str, str]] = None,
    ) -> Optional[CatalogEntry]:
        key = self._replica_key(arch, metric, config_digest)
        replica = self._replica_get(key, events_digest, event_digests)
        if replica is not None:
            return replica
        entry = self._route(arch, metric).latest(
            arch,
            metric,
            config_digest,
            events_digest=events_digest,
            event_digests=event_digests,
        )
        if entry is not None:
            self._replica_put(key, entry, events_digest, event_digests)
        return entry

    def history(
        self, arch: str, metric: str, config_digest: str
    ) -> List[CatalogEntry]:
        return self._route(arch, metric).history(arch, metric, config_digest)

    def diff(
        self,
        arch: str,
        metric: str,
        config_digest: str,
        version_a: int,
        version_b: int,
    ) -> CatalogDiff:
        return self._route(arch, metric).diff(
            arch, metric, config_digest, version_a, version_b
        )

    def stale_latest(
        self,
        arch: str,
        metric: str,
        config_digest: str,
        max_age: Optional[float] = None,
    ) -> Optional[Tuple[CatalogEntry, float]]:
        return self._route(arch, metric).stale_latest(
            arch, metric, config_digest, max_age=max_age
        )

    # -- fan-out operations --------------------------------------------
    def _fan_out(self, op: Callable[[MetricCatalogStore], object]) -> List[Tuple[str, object]]:
        """Run ``op`` on every live shard (topology order); I/O errors
        degrade that shard for this call instead of failing the fan-out.
        ``degraded_shards`` records what was skipped."""
        get_tracer().incr("shard.fanouts")
        results: List[Tuple[str, object]] = []
        degraded: List[str] = []
        for name in self.shards:
            if name in self._down:
                degraded.append(name)
                continue
            try:
                results.append((name, op(self._stores[name])))
            except OSError:
                degraded.append(name)
        if degraded:
            get_tracer().incr("shard.degraded_reads")
        self.degraded_shards = tuple(degraded)
        return results

    def list_entries(self, arch: Optional[str] = None) -> List[dict]:
        """Summary rows across every live shard, deterministically
        ordered by (arch, metric, config digest) — byte-identical to an
        unsharded listing of the same entries.  Down shards degrade
        (their rows are absent and listed in ``degraded_shards``)."""
        rows: List[dict] = []
        for _, shard_rows in self._fan_out(lambda s: s.list_entries(arch)):
            rows.extend(shard_rows)
        rows.sort(key=lambda r: (r["arch"], r["metric"], r["config_digest"]))
        return rows

    def log_records(self) -> List[dict]:
        """Every shard's version log, concatenated in topology order
        (within a shard the append order is preserved)."""
        records: List[dict] = []
        for _, shard_records in self._fan_out(lambda s: s.log_records()):
            records.extend(shard_records)
        return records

    def fsck(self, repair: bool = True) -> FsckReport:
        """Fan-out fsck; one merged report with shard-prefixed paths."""
        merged = FsckReport()
        for name, report in self._fan_out(lambda s: s.fsck(repair=repair)):
            merged.scanned += report.scanned
            merged.log_torn_lines += report.log_torn_lines
            merged.quarantined.extend(f"{name}/{p}" for p in report.quarantined)
            merged.staged_removed.extend(
                f"{name}/{p}" for p in report.staged_removed
            )
            merged.relogged.extend(f"{name}/{p}" for p in report.relogged)
            merged.orphaned_records.extend(
                f"{name}/{p}" for p in report.orphaned_records
            )
        return merged

    def compact_log(self) -> LogCompaction:
        before = after = dropped = 0
        for _, compaction in self._fan_out(lambda s: s.compact_log()):
            before += compaction.records_before
            after += compaction.records_after
            dropped += compaction.dropped
        return LogCompaction(
            records_before=before, records_after=after, dropped=dropped
        )


def open_catalog(
    root: Union[str, Path],
    *,
    shards: int = 0,
    durable: bool = True,
    failpoint: Optional[Callable[[str], Optional[str]]] = None,
) -> Union[MetricCatalogStore, ShardedCatalogStore]:
    """Open a catalog root, sharded or plain, by inspection.

    A root carrying ``shards.json`` opens sharded regardless of
    ``shards`` (the manifest is authoritative); otherwise ``shards > 0``
    creates a new sharded topology and ``shards == 0`` opens the classic
    single-directory store.  Every CLI verb and server entry point funnels
    through here so ``--shards`` never has to be repeated once a root
    exists.
    """
    root = Path(root)
    if (root / _MANIFEST_NAME).exists() or shards > 0:
        return ShardedCatalogStore(
            root,
            n_shards=shards if shards > 0 else None,
            durable=durable,
            failpoint=failpoint,
        )
    return MetricCatalogStore(root, durable=durable, failpoint=failpoint)
