"""Supervised multi-worker serving: crash detection, restart, degrade.

One :class:`MetricService` process is a single point of failure: a
SIGKILL, a wedged event loop, or an OOM takes the whole serving tier
down.  :class:`ServiceSupervisor` runs *N* worker processes — each a
full ``MetricService`` + ``HttpMetricServer`` on an ephemeral port over
the **same** catalog root and measurement cache (both are designed for
multi-process sharing: content-addressed files, atomic staged-rename
publication, torn-tail-tolerant logs) — behind one front listener:

* **Crash and hang detection.**  Each worker owns a shared-memory
  heartbeat it refreshes from an asyncio task every
  ``heartbeat_interval``; a dead process *or* a heartbeat older than
  ``heartbeat_timeout`` (a blocked loop beats its heart no better than a
  dead one) is SIGKILLed and restarted.
* **Restart with backoff and an intensity cap.**  Restarts back off
  exponentially (``backoff_base`` doubling to ``backoff_max``) and a
  slot that restarts more than ``restart_intensity`` times within
  ``restart_window`` seconds is marked *failed* and left down — a
  crash-looping worker must not burn the machine.  Counter:
  ``serve.restarts`` / ``serve.worker_failed``.
* **Re-dispatch of in-flight requests.**  The front proxies each
  request to a live worker round-robin; a transport failure mid-request
  (the worker died under it) re-dispatches the same request to the next
  live worker — safe because every request is idempotent under the
  service's coalescing identity.  Counter: ``serve.redispatch``.
* **Graceful degradation.**  With zero live workers (all crashed or
  restarting), ``/v1/metric`` reads are answered from the supervisor's
  own read-only view of the catalog, stamped ``stale=True`` and gated
  by ``stale_max_age`` — an explicit degraded answer, never a silent
  one, never a silently wrong one.  Anything else gets a retryable 503.
* **Startup fsck.**  The supervisor runs ``catalog fsck`` before
  spawning workers, quarantining torn publications a previous crash
  left behind (see :meth:`MetricCatalogStore.fsck`).

Workers are spawned with the ``spawn`` multiprocessing context (the
parent runs threads; ``fork`` + threads is a deadlock lottery).  The
chaos seams (:mod:`repro.faults.chaos`) thread through: the supervisor
consults ``worker-kill`` at ``dispatch:<n>`` sites, workers consult
their injector at ``request:w<slot>:<n>`` sites and their store at
publication sites.
"""

from __future__ import annotations

import asyncio
import dataclasses
import http.client
import json
import logging
import multiprocessing as mp
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs import get_tracer
from repro.serve.catalog import FsckReport, MetricCatalogStore
from repro.serve.http import format_response, read_http_request
from repro.serve.service import ServiceError, TransportError

__all__ = ["ServiceSupervisor", "SupervisorConfig", "SupervisorServer"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy plus the service knobs each worker inherits.

    ``restart_intensity`` restarts within ``restart_window`` seconds
    marks the slot failed (Erlang-style intensity cap).  The
    ``service_*`` fields are passed to each worker's
    :class:`~repro.serve.service.MetricService` verbatim.
    """

    workers: int = 2
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 5.0
    backoff_base: float = 0.2
    backoff_max: float = 5.0
    restart_intensity: int = 5
    restart_window: float = 60.0
    worker_start_timeout: float = 60.0
    dispatch_attempts: int = 6
    service_workers: int = 2
    service_queue_limit: int = 16
    service_batch_size: int = 4
    service_retries: int = 1
    service_task_timeout: Optional[float] = None
    stale_max_age: Optional[float] = None
    #: Consistent-hash shard count of the catalog root (0 = unsharded).
    #: With shards, every worker opens the same
    #: :class:`~repro.serve.shard.ShardedCatalogStore` (any worker can
    #: read and publish any key — ownership is *affinity*, not
    #: capability) and the dispatcher routes each request to the worker
    #: owning its key's shard, so identical requests concentrate on one
    #: worker and coalesce instead of fanning out round-robin.
    shards: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("SupervisorConfig.workers must be >= 1")
        if self.restart_intensity < 1:
            raise ValueError("restart_intensity must be >= 1")
        if self.shards < 0:
            raise ValueError("SupervisorConfig.shards must be >= 0")


def _worker_entry(
    slot: int,
    config: Dict[str, Any],
    catalog_root: Optional[str],
    cache_dir: Optional[str],
    chaos_spec: Optional[str],
    heartbeat: Any,
    port_conn: Any,
    stop_event: Any,
) -> None:
    """Spawn target: one worker process = service + listener + heartbeat.

    Module-level (spawn needs a picklable target).  Reports its bound
    port over ``port_conn``, then beats ``heartbeat`` from an asyncio
    task until ``stop_event`` is set — a blocked event loop stops the
    heart, which is exactly the signal the supervisor watches for.
    """
    # Imports happen here (fresh interpreter under spawn).
    from repro.faults.chaos import ChaosInjector, parse_chaos_spec
    from repro.serve.http import HttpMetricServer
    from repro.serve.service import MetricService

    exit_after = config.pop("_exit_after", None)
    if exit_after is not None:
        # Test seam: self-destruct to exercise restart and intensity-cap
        # paths deterministically.  A Timer thread survives a blocked loop.
        threading.Timer(exit_after, lambda: os._exit(13)).start()

    chaos = None
    if chaos_spec:
        chaos = ChaosInjector(parse_chaos_spec(chaos_spec))

    store = None
    if catalog_root is not None:
        failpoint = chaos.catalog_failpoint if chaos is not None else None
        if config.get("shards", 0) > 0:
            from repro.serve.shard import ShardedCatalogStore

            store = ShardedCatalogStore(
                catalog_root, n_shards=config["shards"], failpoint=failpoint
            )
        else:
            store = MetricCatalogStore(catalog_root, failpoint=failpoint)

    service = MetricService(
        store,
        workers=config["service_workers"],
        queue_limit=config["service_queue_limit"],
        batch_size=config["service_batch_size"],
        cache_dir=cache_dir,
        retries=config["service_retries"],
        task_timeout=config["service_task_timeout"],
        stale_max_age=config["stale_max_age"],
    )
    server = HttpMetricServer(
        service, port=0, chaos=chaos, chaos_scope=f"w{slot}"
    )
    interval = config["heartbeat_interval"]

    async def main() -> None:
        port = await server.start()
        heartbeat.value = time.time()
        port_conn.send(port)
        port_conn.close()
        try:
            while not stop_event.is_set():
                heartbeat.value = time.time()
                await asyncio.sleep(interval)
        finally:
            await server.stop()

    asyncio.run(main())


@dataclass
class _WorkerSlot:
    """Book-keeping for one supervised worker process."""

    index: int
    process: Optional[Any] = None
    port: Optional[int] = None
    heartbeat: Optional[Any] = None
    stop_event: Optional[Any] = None
    state: str = "down"  # down | starting | live | backoff | failed
    restart_at: float = 0.0
    restarts: Deque[float] = field(default_factory=deque)
    total_restarts: int = 0

    @property
    def live(self) -> bool:
        return (
            self.state == "live"
            and self.process is not None
            and self.process.is_alive()
            and self.port is not None
        )


class ServiceSupervisor:
    """Supervises N worker processes over one catalog root + cache.

    Synchronous process management (spawn/monitor/kill in a background
    thread); :meth:`dispatch` is the asyncio-facing proxy the
    :class:`SupervisorServer` front calls per request.
    """

    def __init__(
        self,
        catalog_root: Optional[str] = None,
        *,
        cache_dir: Optional[str] = None,
        config: Optional[SupervisorConfig] = None,
        chaos_spec: Optional[str] = None,
    ):
        self.catalog_root = catalog_root
        self.cache_dir = cache_dir
        self.config = config or SupervisorConfig()
        self.chaos_spec = chaos_spec
        self.fsck_report: Optional[FsckReport] = None
        self.slots: List[_WorkerSlot] = [
            _WorkerSlot(index=i) for i in range(self.config.workers)
        ]
        self._mp = mp.get_context("spawn")
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._dispatched = 0
        self._redispatches = 0
        self._stale_fallbacks = 0
        self._front_serves = 0
        # (system, domain, seed) -> (arch, config digest), for the
        # degraded-mode catalog read (see _request_identity).
        self._identity_cache: Dict[Tuple[str, str, int], Tuple[str, str]] = {}
        # (system, seed, domain) -> (events digest, dependency digests),
        # for the front-replica read (see _fresh_answer).
        self._evidence_cache: Dict[
            Tuple[str, int, str], Tuple[str, Dict[str, str]]
        ] = {}
        # Coalescing identity -> [slot index, in-flight count]: identical
        # concurrent analyses stick to one worker (see dispatch).
        self._sticky: Dict[Tuple, List[Any]] = {}
        self._chaos = None
        if chaos_spec:
            from repro.faults.chaos import ChaosInjector, parse_chaos_spec

            self._chaos = ChaosInjector(parse_chaos_spec(chaos_spec))
        # Read-only catalog view for the degraded path (no failpoint:
        # the supervisor never publishes).  Creating the sharded store
        # here also publishes the topology manifest before any worker
        # spawns, so workers always open an agreed-upon ring.
        self._store = None
        self._ring = None
        if catalog_root is not None:
            if self.config.shards > 0:
                from repro.serve.shard import ShardedCatalogStore

                self._store = ShardedCatalogStore(
                    catalog_root, n_shards=self.config.shards
                )
                self._ring = self._store.ring
            else:
                self._store = MetricCatalogStore(catalog_root)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """fsck the catalog, spawn every worker, start the monitor."""
        if self.catalog_root is not None and self._store is not None:
            self.fsck_report = self._store.fsck(repair=True)
            if not self.fsck_report.clean:
                logger.warning(
                    "catalog fsck repaired damage on startup: %s",
                    self.fsck_report.summary(),
                )
        for slot in self.slots:
            self._spawn(slot)
        self._stopping.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self) -> None:
        """Stop monitoring, ask workers to exit, kill stragglers."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
            self._monitor = None
        for slot in self.slots:
            if slot.stop_event is not None:
                slot.stop_event.set()
        deadline = time.time() + 5.0
        for slot in self.slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.time()))
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
            slot.state = "down"

    # -- spawning and monitoring ---------------------------------------
    def _spawn(self, slot: _WorkerSlot) -> None:
        slot.state = "starting"
        slot.heartbeat = self._mp.Value("d", time.time())
        slot.stop_event = self._mp.Event()
        recv, send = self._mp.Pipe(duplex=False)
        config = {
            "service_workers": self.config.service_workers,
            "service_queue_limit": self.config.service_queue_limit,
            "service_batch_size": self.config.service_batch_size,
            "service_retries": self.config.service_retries,
            "service_task_timeout": self.config.service_task_timeout,
            "stale_max_age": self.config.stale_max_age,
            "heartbeat_interval": self.config.heartbeat_interval,
            "shards": self.config.shards,
        }
        seam = getattr(self, "_exit_after", None)
        if seam is not None:
            config["_exit_after"] = seam
        slot.process = self._mp.Process(
            target=_worker_entry,
            args=(
                slot.index,
                config,
                self.catalog_root,
                self.cache_dir,
                self.chaos_spec,
                slot.heartbeat,
                send,
                slot.stop_event,
            ),
            daemon=True,
            name=f"repro-serve-w{slot.index}",
        )
        slot.process.start()
        send.close()
        if recv.poll(self.config.worker_start_timeout):
            try:
                slot.port = recv.recv()
                slot.state = "live"
            except EOFError:
                slot.port = None
        if slot.state != "live":
            logger.error("worker %d failed to report a port", slot.index)
            self._schedule_restart(slot)

    def _schedule_restart(self, slot: _WorkerSlot) -> None:
        """Kill the process and either schedule a backoff restart or mark
        the slot failed when the intensity cap is blown."""
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        now = time.time()
        slot.restarts.append(now)
        while slot.restarts and now - slot.restarts[0] > self.config.restart_window:
            slot.restarts.popleft()
        if len(slot.restarts) > self.config.restart_intensity:
            slot.state = "failed"
            get_tracer().incr("serve.worker_failed")
            logger.error(
                "worker %d blew the restart budget (%d in %.0fs); leaving down",
                slot.index,
                len(slot.restarts),
                self.config.restart_window,
            )
            return
        backoff = min(
            self.config.backoff_max,
            self.config.backoff_base * (2 ** max(0, len(slot.restarts) - 1)),
        )
        slot.state = "backoff"
        slot.restart_at = now + backoff
        slot.total_restarts += 1
        get_tracer().incr("serve.restarts")

    def _monitor_loop(self) -> None:
        interval = self.config.heartbeat_interval
        while not self._stopping.wait(interval):
            now = time.time()
            for slot in self.slots:
                if slot.state == "failed":
                    continue
                if slot.state == "backoff":
                    if now >= slot.restart_at:
                        self._spawn(slot)
                    continue
                process = slot.process
                if process is None:
                    continue
                if not process.is_alive():
                    logger.warning(
                        "worker %d died (exit %s); restarting",
                        slot.index,
                        process.exitcode,
                    )
                    self._schedule_restart(slot)
                    continue
                beat = slot.heartbeat.value if slot.heartbeat is not None else now
                if slot.state == "live" and now - beat > self.config.heartbeat_timeout:
                    logger.warning(
                        "worker %d heartbeat is %.1fs stale; killing",
                        slot.index,
                        now - beat,
                    )
                    get_tracer().incr("serve.hang_kills")
                    self._schedule_restart(slot)

    # -- dispatch ------------------------------------------------------
    def _live_slots(self) -> List[_WorkerSlot]:
        return [slot for slot in self.slots if slot.live]

    def _forward(
        self, port: int, method: str, target: str, body: bytes, timeout: float
    ) -> Tuple[int, Dict[str, Any]]:
        """Blocking single-attempt proxy hop to one worker."""
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            try:
                conn.request(method, target, body=body or None, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except TimeoutError as exc:
                raise TransportError(
                    f"worker :{port} gave no response within {timeout}s", exc
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                raise TransportError(
                    f"{type(exc).__name__} talking to worker :{port}: {exc}", exc
                ) from exc
            try:
                payload = json.loads(raw.decode() or "{}")
            except (UnicodeDecodeError, ValueError) as exc:
                raise TransportError(
                    f"torn response from worker :{port}", exc
                ) from exc
            return response.status, payload
        finally:
            conn.close()

    def _slot_for_shard(self, shard: str) -> int:
        """The worker slot owning a shard: shard i belongs to worker
        ``i mod workers`` — every worker owns a fixed, disjoint shard
        set, every shard has exactly one owner."""
        assert self._ring is not None
        return self._ring.shards.index(shard) % self.config.workers

    @staticmethod
    def _parse_metric_target(
        method: str, target: str
    ) -> Optional[Tuple[str, str, str, int, Optional[str]]]:
        """``(system, domain, metric, seed, faults)`` of a keyed read,
        or None when the request is not ``GET /v1/metric/...`` or is
        malformed (the worker owns producing the structured 400/404)."""
        if method != "GET":
            return None
        from urllib.parse import parse_qs, unquote, urlsplit

        split = urlsplit(target)
        path = [unquote(p) for p in split.path.split("/") if p]
        if len(path) != 5 or path[:2] != ["v1", "metric"]:
            return None
        _, _, system, domain, metric = path
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        try:
            seed = int(query.get("seed", 2024))
        except ValueError:
            return None
        return system, domain, metric, seed, query.get("faults") or None

    def _preferred_slot(self, method: str, target: str) -> Optional[int]:
        """Shard-affinity routing for keyed reads: the worker slot that
        *owns* ``GET /v1/metric/...``'s catalog key via the ring — the
        worker whose replica cache and coalescing window already hold
        that key.  None when the topology is unsharded or the request
        has no single key (health, listings, analyses).  Affinity is
        advisory — any worker *can* serve any key over the shared store
        — so a down owner falls back to round-robin instead of failing.
        """
        if self._ring is None:
            return None
        parsed = self._parse_metric_target(method, target)
        if parsed is None:
            return None
        system, domain, metric, seed, _ = parsed
        try:
            arch, _ = self._request_identity(system, domain, seed)
            return self._slot_for_shard(self._ring.lookup(arch, metric))
        except Exception:  # noqa: BLE001 — affinity is advisory, never fatal
            return None

    def _node_evidence(
        self, system: str, seed: int, domain: str
    ) -> Tuple[str, Dict[str, str]]:
        """(event-set digest, per-event dependency digests) for a keyed
        read — the same freshness evidence the workers present to the
        store, computed the same way, cached per (system, seed, domain).
        """
        key = (system, seed, domain)
        evidence = self._evidence_cache.get(key)
        if evidence is None:
            from repro.core.sweep import SWEEP_SYSTEMS
            from repro.incr.engine import domain_event_digests

            node = SWEEP_SYSTEMS[system](seed=seed)
            evidence = (
                node.events.content_digest(),
                domain_event_digests(node.events, domain),
            )
            self._evidence_cache[key] = evidence
        return evidence

    def _fresh_answer(self, method: str, target: str) -> Optional[Dict[str, Any]]:
        """Front-replica read: answer ``GET /v1/metric/...`` from the
        dispatcher's own catalog view when the stored entry carries the
        full freshness evidence — the exact check a worker's catalog
        hit makes, fronted by the shard store's read replicas, so a hot
        key skips the internal hop entirely.  Returns None on any miss
        or doubt (the request is then forwarded to the pool as usual);
        never serves stale or faulted requests."""
        if self._store is None:
            return None
        parsed = self._parse_metric_target(method, target)
        if parsed is None:
            return None
        system, domain, metric, seed, faults = parsed
        if faults:
            return None
        try:
            arch, config_digest = self._request_identity(system, domain, seed)
            events_digest, dependencies = self._node_evidence(
                system, seed, domain
            )
            entry = self._store.latest(
                arch,
                metric,
                config_digest,
                events_digest=events_digest,
                event_digests=dependencies,
            )
        except Exception:  # noqa: BLE001 — the fast path is advisory
            return None
        if entry is None:
            return None
        with self._lock:
            self._front_serves += 1
        get_tracer().incr("shard.front_serves")
        payload = entry.to_payload()
        payload["source"] = "catalog"
        payload["stale"] = False
        return payload

    @staticmethod
    def _coalescing_identity(
        method: str, target: str, body: bytes
    ) -> Optional[Tuple]:
        """The sticky-dispatch key of ``POST /v1/analyze``: requests
        with equal identities share one worker *while one is in
        flight*, so the worker's request coalescing sees them as one
        computation.  Distinct identities carry no affinity (they
        round-robin for balance — an analysis spans every metric of a
        domain, so no single shard owns it)."""
        if method != "POST" or target.split("?", 1)[0] != "/v1/analyze":
            return None
        try:
            request = json.loads(body.decode() or "{}")
            return (
                request["system"],
                request["domain"],
                int(request.get("seed", 2024)),
                request.get("faults"),
            )
        except Exception:  # noqa: BLE001 — malformed: no affinity
            return None

    async def dispatch(
        self, method: str, target: str, body: bytes, *, timeout: float = 60.0
    ) -> Tuple[int, Dict[str, Any]]:
        """Proxy one request: fully-fresh keyed reads answered straight
        from the dispatcher's replica-fronted catalog view, then
        affinity (the shard owner for keyed reads, the in-flight twin's
        worker for analyses), round-robin over live workers otherwise,
        re-dispatch on transport failure, degrade to a stale catalog
        read when no worker is live."""
        loop = asyncio.get_running_loop()
        last_error: Optional[TransportError] = None
        if method == "GET":
            # Hot keyed reads are served straight off the dispatcher's
            # replica-fronted catalog view when fully fresh — no worker
            # hop at all (see _fresh_answer).
            fresh = await loop.run_in_executor(
                None, self._fresh_answer, method, target
            )
            if fresh is not None:
                return 200, fresh
        preferred = self._preferred_slot(method, target)
        sticky = self._coalescing_identity(method, target, body)
        registered = False
        if sticky is not None:
            with self._lock:
                held = self._sticky.get(sticky)
                if held is not None:
                    preferred = held[0]
        try:
            for attempt in range(self.config.dispatch_attempts):
                with self._lock:
                    self._dispatched += 1
                    n = self._dispatched
                live = self._live_slots()
                if not live:
                    await asyncio.sleep(self.config.heartbeat_interval)
                    live = self._live_slots()
                if not live:
                    break
                slot = None
                if preferred is not None and attempt == 0:
                    slot = next((s for s in live if s.index == preferred), None)
                    if slot is not None:
                        get_tracer().incr("shard.affinity_hits")
                if slot is None:
                    if preferred is not None:
                        get_tracer().incr("shard.affinity_fallbacks")
                    slot = live[n % len(live)]
                if sticky is not None and not registered:
                    # Publish where this analysis runs so identical
                    # concurrent requests ride the same worker (and its
                    # coalescing window) instead of recomputing elsewhere.
                    registered = True
                    with self._lock:
                        held = self._sticky.get(sticky)
                        if held is None:
                            self._sticky[sticky] = [slot.index, 1]
                        else:
                            held[1] += 1
                if self._chaos is not None and self._chaos.fires(
                    "worker-kill", f"dispatch:{n}"
                ):
                    # Chaos: SIGKILL the worker shortly after handing it this
                    # request — it dies mid-batch and the request must be
                    # re-dispatched; the monitor must notice and restart it.
                    process = slot.process
                    if process is not None:
                        threading.Timer(0.05, process.kill).start()
                try:
                    return await loop.run_in_executor(
                        None, self._forward, slot.port, method, target, body, timeout
                    )
                except TransportError as exc:
                    last_error = exc
                    with self._lock:
                        self._redispatches += 1
                    get_tracer().incr("serve.redispatch")
                    continue
        finally:
            if registered:
                with self._lock:
                    held = self._sticky.get(sticky)
                    if held is not None:
                        held[1] -= 1
                        if held[1] <= 0:
                            del self._sticky[sticky]
        stale = await loop.run_in_executor(None, self._stale_answer, method, target)
        if stale is not None:
            return 200, stale
        payload = {
            "error": "no live workers and no fresh-enough stale answer",
            "retry": True,
            "degraded": True,
        }
        if last_error is not None:
            payload["last_error"] = last_error.payload
        return 503, payload

    def _request_identity(
        self, system: str, domain: str, seed: int
    ) -> Tuple[str, str]:
        """(arch, config digest) for a request, computed exactly as the
        workers compute it — the degraded path must read the same
        catalog key the pool publishes under, never a neighbouring one.
        Deterministic, so cached per (system, domain, seed)."""
        key = (system, domain, seed)
        identity = self._identity_cache.get(key)
        if identity is None:
            from dataclasses import replace

            from repro.core.pipeline import DOMAIN_CONFIGS
            from repro.core.sweep import SWEEP_SYSTEMS
            from repro.serve.catalog import analysis_config_digest

            node = SWEEP_SYSTEMS[system](seed=seed)
            config = replace(DOMAIN_CONFIGS[domain], use_measurement_cache=True)
            identity = (node.name, analysis_config_digest(domain, seed, config))
            self._identity_cache[key] = identity
        return identity

    def _stale_answer(self, method: str, target: str) -> Optional[Dict[str, Any]]:
        """Degraded mode: answer ``GET /v1/metric/...`` from the
        supervisor's own catalog view, stamped stale, inside the
        freshness bound — for exactly the requested
        ``(system, domain, seed)``, never an entry computed for another
        one.  Faulted requests get None (an unfaulted catalog entry
        would be a wrong answer for a diagnostics run).  Returns None
        when not applicable."""
        if self._store is None or self.config.stale_max_age is None:
            return None
        parsed = self._parse_metric_target(method, target)
        if parsed is None:
            return None
        system, domain, metric, seed, faults = parsed
        if faults:
            return None
        try:
            arch, config_digest = self._request_identity(system, domain, seed)
        except KeyError:
            return None
        found = self._store.stale_latest(
            arch, metric, config_digest, max_age=self.config.stale_max_age
        )
        if found is None:
            return None
        entry, age = found
        with self._lock:
            self._stale_fallbacks += 1
        get_tracer().incr("serve.stale_served")
        payload = entry.to_payload()
        payload["source"] = "catalog"
        payload["stale"] = True
        payload["stale_age_seconds"] = age
        payload["degraded"] = "no live workers"
        return payload

    # -- status --------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        now = time.time()
        workers = []
        for slot in self.slots:
            process = slot.process
            beat = slot.heartbeat.value if slot.heartbeat is not None else None
            workers.append(
                {
                    "slot": slot.index,
                    "state": slot.state,
                    "pid": process.pid if process is not None else None,
                    "alive": process.is_alive() if process is not None else False,
                    "port": slot.port,
                    "restarts": slot.total_restarts,
                    "heartbeat_age": (
                        round(now - beat, 3) if beat is not None else None
                    ),
                }
            )
        return {
            "workers": workers,
            "live": len(self._live_slots()),
            "dispatched": self._dispatched,
            "redispatches": self._redispatches,
            "stale_fallbacks": self._stale_fallbacks,
            "front_serves": self._front_serves,
            "fsck": (
                dataclasses.asdict(self.fsck_report)
                if self.fsck_report is not None
                else None
            ),
            "config": {
                "workers": self.config.workers,
                "shards": self.config.shards,
                "heartbeat_timeout": self.config.heartbeat_timeout,
                "restart_intensity": self.config.restart_intensity,
                "restart_window": self.config.restart_window,
                "stale_max_age": self.config.stale_max_age,
            },
        }


class SupervisorServer:
    """The front listener: one asyncio server proxying to the pool.

    Speaks the same HTTP/1.0 JSON wire format as
    :class:`~repro.serve.http.HttpMetricServer` (it reuses its request
    reader and response formatter), adds ``GET /supervisor/status``, and
    forwards everything else through :meth:`ServiceSupervisor.dispatch`.
    """

    def __init__(
        self,
        supervisor: ServiceSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        proxy_timeout: float = 60.0,
    ):
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self.proxy_timeout = proxy_timeout
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Start the worker pool (in a thread: spawn blocks) and the
        front listener; returns the bound port."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.start)
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.stop)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            raw = await read_http_request(reader)
            if raw is None:
                return
            method, target, body = raw
            if target.split("?")[0] == "/supervisor/status":
                status, payload = 200, self.supervisor.status()
            else:
                status, payload = await self.supervisor.dispatch(
                    method, target, body, timeout=self.proxy_timeout
                )
        except ServiceError as exc:
            status, payload = exc.status, exc.payload
        except Exception as exc:  # noqa: BLE001 — the front must never die
            logger.exception("unhandled error in the supervisor front")
            status, payload = 500, {
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        try:
            writer.write(format_response(status, payload))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
