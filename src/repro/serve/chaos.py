"""The closed-loop serve-layer chaos drill.

:func:`run_chaos_drill` is the executable form of the serving tier's
fault-tolerance contract.  It runs the same request plan twice:

1. **Baseline** — a plain single-process :class:`MetricService`, no
   chaos, no supervisor.  Every answer is reduced to its *definition
   digest* (the payload minus serving metadata — source, staleness,
   store-assigned version, trace lineage) and recorded as ground truth.
2. **Chaos** — a :class:`ServiceSupervisor` worker pool over a shared
   catalog root with a :class:`~repro.faults.chaos.ChaosConfig` armed,
   driven closed-loop (strictly sequential requests, so the
   deterministic per-site injection streams line up run to run) through
   the retrying :class:`~repro.serve.resilience.ResilientCatalogClient`.

Every chaos-run response is then classified against the invariant —
**bit-identical** to the baseline definition, **explicitly stale**, or a
**typed error**; anything else (a silently different coefficient, a raw
socket exception escaping the client) is a recorded violation.  After
the drive phase the drill asserts *bounded recovery* (the worker pool
returns to full strength within ``recovery_budget`` seconds) and runs
``catalog fsck`` over the shared root: torn publications must be
quarantined, surviving entries must still match the baseline.

With a zero-rate chaos config the drill degenerates to the equivalence
property: the supervised multi-worker path answers bit-identically to
single-service serving.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.io.digest import json_digest
from repro.serve.catalog import FsckReport, MetricCatalogStore
from repro.serve.resilience import ResilientCatalogClient, RetryPolicy
from repro.serve.service import MetricService, ServiceError
from repro.serve.supervisor import (
    ServiceSupervisor,
    SupervisorConfig,
    SupervisorServer,
)

__all__ = ["ChaosReport", "definition_digest", "run_chaos_drill"]

#: Serving metadata: everything about *how* an answer was served rather
#: than *what* the metric definition is.  ``version`` is store-assigned,
#: ``trace_digest`` carries wall-clock lineage, ``event_digests`` may be
#: empty on unstored entries — mirroring
#: :meth:`CatalogEntry.content_digest`'s exclusions.
_VOLATILE_KEYS = (
    "source",
    "stale",
    "stale_age_seconds",
    "degraded",
    "version",
    "trace_digest",
    "content_digest",
    "event_digests",
)


def definition_digest(payload: Dict[str, Any]) -> str:
    """Digest of a served metric payload minus serving metadata —
    equal digests mean bit-identical definitions."""
    stripped = {k: v for k, v in payload.items() if k not in _VOLATILE_KEYS}
    return json_digest(stripped, length=16)


@dataclass
class ChaosReport:
    """Everything one drill observed, judged against the invariant."""

    plan: List[Tuple[str, str, int]] = field(default_factory=list)
    requests: int = 0
    identical: int = 0
    stale: int = 0
    typed_errors: int = 0
    violations: List[str] = field(default_factory=list)
    recovered: bool = False
    recovery_seconds: Optional[float] = None
    fsck: Optional[FsckReport] = None
    supervisor_status: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """The invariant held: every response was bit-identical, stale,
        or a typed error — and the pool recovered within budget."""
        return not self.violations and self.recovered

    def summary(self) -> str:
        return (
            f"chaos drill: {self.requests} request(s) — "
            f"{self.identical} identical, {self.stale} stale, "
            f"{self.typed_errors} typed error(s), "
            f"{len(self.violations)} violation(s); "
            f"recovered={self.recovered}"
            + (
                f" in {self.recovery_seconds:.1f}s"
                if self.recovery_seconds is not None
                else ""
            )
        )


def _build_plan(
    pairs: Sequence[Tuple[str, str]], requests: int, base_seed: int
) -> List[Tuple[str, str, int]]:
    """The request plan: cycle the (system, domain) pairs, bumping the
    seed each full cycle so the drill mixes fresh analyses with repeats
    (repeats exercise catalog reads and coalescing)."""
    plan = []
    for i in range(requests):
        system, domain = pairs[i % len(pairs)]
        seed = base_seed + (i // len(pairs)) % 2
        plan.append((system, domain, seed))
    return plan


async def _baseline_digests(
    plan: Sequence[Tuple[str, str, int]], cache_dir: Optional[str]
) -> Tuple[
    Dict[Tuple[str, str, int], Dict[str, str]],
    Dict[Tuple[str, str, str, int], str],
]:
    """Ground truth: every planned request answered by one plain service.

    Returns per-request digests keyed ``(system, domain, seed)`` and
    per-entry digests keyed ``(arch, domain, metric, seed)`` — the
    latter matches what a stored :class:`CatalogEntry` knows about
    itself, for the post-fsck corruption sweep.
    """
    service = MetricService(cache_dir=cache_dir)
    await service.start()
    try:
        digests: Dict[Tuple[str, str, int], Dict[str, str]] = {}
        entry_digests: Dict[Tuple[str, str, str, int], str] = {}
        for system, domain, seed in plan:
            if (system, domain, seed) in digests:
                continue
            served = await service.analyze(system, domain, seed=seed)
            digests[(system, domain, seed)] = {
                name: definition_digest(metric.to_payload())
                for name, metric in served.items()
            }
            for name, metric in served.items():
                entry = metric.entry
                entry_digests[(entry.arch, entry.domain, name, entry.seed)] = (
                    digests[(system, domain, seed)][name]
                )
        return digests, entry_digests
    finally:
        await service.stop(drain_timeout=5.0)


def run_chaos_drill(
    catalog_root: str,
    *,
    chaos_spec: str,
    cache_dir: Optional[str] = None,
    pairs: Sequence[Tuple[str, str]] = (("aurora", "branch"),),
    requests: int = 8,
    base_seed: int = 2024,
    config: Optional[SupervisorConfig] = None,
    recovery_budget: float = 30.0,
    client_retry: Optional[RetryPolicy] = None,
) -> ChaosReport:
    """Run the drill; see the module docstring for the phases.

    ``catalog_root`` must be a fresh or disposable directory — the chaos
    run publishes (and, under a torn-publication config, deliberately
    tears) entries there.
    """
    plan = _build_plan(pairs, requests, base_seed)
    report = ChaosReport(plan=plan, requests=len(plan))

    baseline, baseline_entries = asyncio.run(_baseline_digests(plan, cache_dir))

    supervisor_config = config or SupervisorConfig(
        workers=3,
        heartbeat_timeout=1.5,
        backoff_base=0.1,
        backoff_max=1.0,
        restart_intensity=10,
        stale_max_age=3600.0,
    )
    supervisor = ServiceSupervisor(
        catalog_root,
        cache_dir=cache_dir,
        config=supervisor_config,
        chaos_spec=chaos_spec,
    )
    front = SupervisorServer(supervisor)

    async def drive() -> None:
        port = await front.start()
        client = ResilientCatalogClient(
            [("127.0.0.1", port)],
            retry=client_retry
            or RetryPolicy(max_attempts=6, backoff_base=0.05, backoff_cap=0.5),
            deadline=120.0,
            breaker_factory=None,  # the drill wants retries, not fast-fail
        )
        loop = asyncio.get_running_loop()
        try:
            for system, domain, seed in plan:
                expected = baseline[(system, domain, seed)]
                try:
                    metrics = await loop.run_in_executor(
                        None, lambda: client.analyze(system, domain, seed=seed)
                    )
                except ServiceError as exc:
                    # A typed, explicit failure is within the contract.
                    report.typed_errors += 1
                    if not isinstance(exc.payload, dict) or "error" not in exc.payload:
                        report.violations.append(
                            f"({system}, {domain}, seed={seed}): error "
                            f"without a structured payload: {exc!r}"
                        )
                    continue
                except Exception as exc:  # noqa: BLE001 — anything raw is a violation
                    report.violations.append(
                        f"({system}, {domain}, seed={seed}): untyped "
                        f"{type(exc).__name__} escaped the client: {exc}"
                    )
                    continue
                for name, payload in metrics.items():
                    if payload.get("stale"):
                        report.stale += 1
                        continue
                    got = definition_digest(payload)
                    want = expected.get(name)
                    if got == want:
                        report.identical += 1
                    else:
                        report.violations.append(
                            f"({system}, {domain}, seed={seed}) {name}: "
                            f"definition digest {got} != baseline {want} "
                            f"and not marked stale"
                        )
            # Bounded recovery: every non-failed slot back to live.
            start = time.time()
            while time.time() - start < recovery_budget:
                status = supervisor.status()
                expected_live = sum(
                    1 for w in status["workers"] if w["state"] != "failed"
                )
                if status["live"] == supervisor_config.workers:
                    report.recovered = True
                    report.recovery_seconds = time.time() - start
                    break
                if expected_live == 0:
                    break
                await asyncio.sleep(0.2)
            report.supervisor_status = supervisor.status()
        finally:
            await front.stop()

    asyncio.run(drive())

    # Post-mortem: the shared store must fsck clean-or-repaired, and the
    # surviving entries must still be baseline-identical.
    store = MetricCatalogStore(catalog_root)
    report.fsck = store.fsck(repair=True)
    for row in store.list_entries():
        entry = store.get(
            row["arch"], row["metric"], row["config_digest"],
            version=row["latest_version"],
        )
        if entry is None:
            report.violations.append(
                f"catalog entry {row['metric']!r} v{row['latest_version']} "
                "listed but unloadable after fsck"
            )
            continue
        want = baseline_entries.get(
            (entry.arch, entry.domain, entry.metric, entry.seed)
        )
        if want is None:
            continue  # a seed the baseline did not cover
        got = definition_digest(entry.to_payload())
        if got != want:
            report.violations.append(
                f"stored entry {entry.metric!r} v{entry.version} digest "
                f"{got} != baseline {want}: corruption survived fsck"
            )
    return report
