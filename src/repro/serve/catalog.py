"""The versioned, content-addressed metric catalog.

The pipeline produces trust-stamped :class:`~repro.core.metrics.MetricDefinition`
objects, but until now every consumer had to re-run the whole analysis to
get one.  :class:`MetricCatalogStore` makes definitions durable: each is
persisted under the key ``(architecture, metric, config digest)`` with an
append-only version history, so a served definition can be looked up,
compared across catalog revisions, and — crucially — trusted, because
everything that certifies it travels with it:

* the coefficient vector, **bit-exact** (hex of the little-endian float64
  bytes; the JSON float list is a human-readable mirror),
* the Equation-5 backward error and composability verdict,
* the :class:`~repro.guard.certify.TrustScore` stamp and every guard rung
  that fired during selection and composition,
* lineage: the seed, the pipeline-config repr and digest, the event-set
  digest of the registry the measurement ran over, and (when the run was
  traced) a digest of its :mod:`repro.obs` trace.

Storage layout (all writes atomic: staged file + ``os.replace``)::

    root/
      log.jsonl                                # append-only version log
      entries/<arch>/<metric-slug>/<config-digest>/v0001.json

Invalidation: the config digest is part of the key, so a changed
threshold simply misses.  A changed *event registry* would silently serve
stale definitions — so every entry records its ``events_digest`` and the
read APIs take the current registry digest; a mismatch is reported as a
miss (and counted on the ``catalog.invalidated`` counter) instead of a
hit.  History is never destroyed: invalidation is a read-side decision,
the version log keeps the full record.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.guard.certify import TrustScore
from repro.guard.health import NumericalHealth
from repro.io.digest import json_digest, sha256_hex
from repro.io.durability import (
    durable_append,
    durable_replace,
    durable_write,
    fsync_dir,
)
from repro.obs import get_tracer

if TYPE_CHECKING:
    from repro.core.metrics import MetricDefinition
    from repro.core.pipeline import PipelineConfig, PipelineResult

__all__ = [
    "CatalogDiff",
    "CatalogEntry",
    "FsckReport",
    "LogCompaction",
    "MetricCatalogStore",
    "analysis_config_digest",
    "entries_from_result",
    "metric_slug",
]

#: On-disk payload format version (bumped on incompatible changes).
FORMAT_VERSION = 1


def metric_slug(metric: str) -> str:
    """Filesystem-safe directory name for a metric: readable stem plus a
    short content hash (names with spaces/punctuation stay unambiguous)."""
    stem = re.sub(r"[^a-z0-9]+", "-", metric.lower()).strip("-") or "metric"
    return f"{stem[:48]}-{sha256_hex(metric, length=8)}"


def analysis_config_digest(
    domain: str, seed: int, config: "PipelineConfig"
) -> str:
    """The catalog key's third coordinate: everything besides architecture
    and metric name that determines a definition — the domain, the node
    seed, and every pipeline threshold (via ``PipelineConfig.digest``)."""
    return json_digest(
        {"domain": domain, "seed": seed, "config": config.digest()}, length=16
    )


def _coeffs_to_hex(coefficients: np.ndarray) -> str:
    return np.asarray(coefficients, dtype="<f8").tobytes().hex()


def _coeffs_from_hex(blob: str) -> np.ndarray:
    return np.frombuffer(bytes.fromhex(blob), dtype="<f8").copy()


@dataclass(frozen=True)
class CatalogEntry:
    """One persisted metric definition with its full trust lineage."""

    arch: str
    domain: str
    metric: str
    seed: int
    config_digest: str
    config_repr: str
    events_digest: str
    event_names: Tuple[str, ...]
    coefficients_hex: str
    error: float
    composable: bool
    degraded: bool = False
    #: Conditioning sentinel record of this metric's composition solve
    #: (carries the guard rungs that fired).
    health: Optional[NumericalHealth] = None
    #: Fallback rungs fired by the shared QRCP selection stage.
    qrcp_guards: Tuple[str, ...] = ()
    trust: Optional[TrustScore] = None
    #: Section VI-D snapped terms, for display and preset export.
    rounded_terms: Dict[str, float] = field(default_factory=dict)
    #: Per-event dependency digests: ``full name -> content digest`` of
    #: every registry event this entry's analysis *could* have consumed
    #: (the whole measured domain, not just the selected events — an
    #: added event can change the selection).  Empty on entries written
    #: before dependency tracking; those fall back to the coarse
    #: whole-registry ``events_digest`` check.
    event_digests: Dict[str, str] = field(default_factory=dict)
    #: Counter-validation evidence (the ``repro.vet`` stamp payload:
    #: per-composing-event verdicts, prior-excluded events, campaign
    #: provenance).  None when the defining run carried no trust priors.
    #: Part of the content digest when present — a verdict flip is an
    #: analysis-relevant change and must version the entry, which is what
    #: the drift detector watches for.
    vet: Optional[dict] = None
    #: Ingestion provenance (the ``repro.ingest`` payload: collector,
    #: uarch family, per-source-file digests, baseline calibration,
    #: column quality flags, unmapped events).  None for simulated runs.
    #: Part of the content digest when present — a re-ingest from
    #: different source bytes is a different definition even if the
    #: numbers agree, while a bit-identical re-ingest must dedup.
    provenance: Optional[dict] = None
    #: sha256 of the run's canonical trace JSONL (None for untraced runs).
    trace_digest: Optional[str] = None
    #: Assigned by the store on ``put`` (0 = not yet stored).
    version: int = 0

    @property
    def coefficients(self) -> np.ndarray:
        """The bit-exact coefficient vector."""
        return _coeffs_from_hex(self.coefficients_hex)

    @property
    def guards_fired(self) -> Tuple[str, ...]:
        """Composition-solve guard stamps (empty on a healthy fit)."""
        return self.health.guards_fired if self.health is not None else ()

    def content_digest(self) -> str:
        """Content address over everything except the assigned version
        and the trace digest — trace exports carry wall-clock stage
        timings, so two bit-identical analyses trace differently; lineage
        must not defeat dedup."""
        payload = self.to_payload()
        payload.pop("version")
        payload.pop("trace_digest", None)
        payload.pop("content_digest", None)
        if not payload.get("event_digests"):
            # Entries without dependency tracking hash exactly as they
            # did before the field existed (stored catalogs keep dedup).
            payload.pop("event_digests", None)
        if not payload.get("vet"):
            # Same back-compat rule for the validation stamp: entries from
            # prior-free runs hash exactly as they did before the field.
            payload.pop("vet", None)
        if not payload.get("provenance"):
            # And for ingestion provenance: simulated-run entries hash
            # exactly as they did before ingestion existed.
            payload.pop("provenance", None)
        return json_digest(payload, length=16)

    def definition(self) -> "MetricDefinition":
        """Reconstruct the definition, coefficient bytes and trust stamp
        bit-identical to the pipeline's output."""
        from repro.core.metrics import MetricDefinition
        from repro.vet.priors import VetStamp

        return MetricDefinition(
            metric=self.metric,
            event_names=tuple(self.event_names),
            coefficients=self.coefficients,
            error=self.error,
            degraded=self.degraded,
            health=self.health,
            trust=self.trust,
            vet=VetStamp.from_payload(self.vet),
        )

    # -- payload -------------------------------------------------------
    def to_payload(self) -> dict:
        trust = None
        if self.trust is not None:
            trust = {
                "level": self.trust.level,
                "reasons": list(self.trust.reasons),
                "coefficient_spread": self.trust.coefficient_spread,
                "error_spread": self.trust.error_spread,
                "n_holdouts": self.trust.n_holdouts,
                "n_skipped": self.trust.n_skipped,
                "suspect_events": list(self.trust.suspect_events),
            }
        health = None
        if self.health is not None:
            health = {
                "condition_estimate": self.health.condition_estimate,
                "rank_gap": self.health.rank_gap,
                "pivot_growth": self.health.pivot_growth,
                "residual_bound": self.health.residual_bound,
                "refinement_iterations": self.health.refinement_iterations,
                "guards_fired": list(self.health.guards_fired),
                "suspect_columns": list(self.health.suspect_columns),
            }
        return {
            "format": FORMAT_VERSION,
            "version": self.version,
            "arch": self.arch,
            "domain": self.domain,
            "metric": self.metric,
            "seed": self.seed,
            "config_digest": self.config_digest,
            "config": self.config_repr,
            "events_digest": self.events_digest,
            "event_names": list(self.event_names),
            "coefficients_hex": self.coefficients_hex,
            "coefficients": [float(c) for c in self.coefficients],
            "error": self.error,
            "composable": self.composable,
            "degraded": self.degraded,
            "health": health,
            "qrcp_guards": list(self.qrcp_guards),
            "trust": trust,
            "rounded_terms": dict(self.rounded_terms),
            "event_digests": dict(self.event_digests),
            "vet": dict(self.vet) if self.vet else None,
            "provenance": dict(self.provenance) if self.provenance else None,
            "trace_digest": self.trace_digest,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CatalogEntry":
        fmt = payload.get("format")
        if fmt != FORMAT_VERSION:
            raise ValueError(
                f"unsupported catalog entry format {fmt!r} "
                f"(this reader speaks {FORMAT_VERSION})"
            )
        trust = None
        if payload.get("trust") is not None:
            t = payload["trust"]
            trust = TrustScore(
                level=t["level"],
                reasons=tuple(t["reasons"]),
                coefficient_spread=t["coefficient_spread"],
                error_spread=t["error_spread"],
                n_holdouts=t["n_holdouts"],
                n_skipped=t["n_skipped"],
                suspect_events=tuple(t["suspect_events"]),
            )
        health = None
        if payload.get("health") is not None:
            h = payload["health"]
            health = NumericalHealth(
                condition_estimate=h["condition_estimate"],
                rank_gap=h["rank_gap"],
                pivot_growth=h["pivot_growth"],
                residual_bound=h["residual_bound"],
                refinement_iterations=h["refinement_iterations"],
                guards_fired=tuple(h["guards_fired"]),
                suspect_columns=tuple(h["suspect_columns"]),
            )
        return cls(
            arch=payload["arch"],
            domain=payload["domain"],
            metric=payload["metric"],
            seed=payload["seed"],
            config_digest=payload["config_digest"],
            config_repr=payload["config"],
            events_digest=payload["events_digest"],
            event_names=tuple(payload["event_names"]),
            coefficients_hex=payload["coefficients_hex"],
            error=payload["error"],
            composable=payload["composable"],
            degraded=payload.get("degraded", False),
            health=health,
            qrcp_guards=tuple(payload.get("qrcp_guards", ())),
            trust=trust,
            rounded_terms=dict(payload.get("rounded_terms", {})),
            event_digests=dict(payload.get("event_digests", {})),
            vet=payload.get("vet"),
            provenance=payload.get("provenance"),
            trace_digest=payload.get("trace_digest"),
            version=payload["version"],
        )


def entries_from_result(
    result: "PipelineResult",
    arch: str,
    seed: int,
    events_digest: str,
    trace_digest: Optional[str] = None,
    event_digests: Optional[Dict[str, str]] = None,
    provenance: Optional[dict] = None,
) -> List[CatalogEntry]:
    """Catalog entries for every metric a pipeline run composed.

    ``event_digests`` is the per-event dependency map of the run's
    measured domain (``EventRegistry.event_digests()`` of the domain
    sub-registry); recording it lets ``repro.incr`` invalidate only the
    entries an edited event actually feeds.

    ``provenance`` is the ingestion-provenance payload
    (:meth:`repro.ingest.IngestBundle.provenance`) when the measurement
    came from external collector files rather than the simulator; it is
    recorded verbatim on every entry of the run.
    """
    config_digest = analysis_config_digest(result.domain, seed, result.config)
    qrcp_guards = (
        tuple(result.qrcp.health.guards_fired)
        if result.qrcp.health is not None
        else ()
    )
    entries = []
    for name, definition in result.metrics.items():
        rounded = result.rounded_metrics.get(name)
        entries.append(
            CatalogEntry(
                arch=arch,
                domain=result.domain,
                metric=name,
                seed=seed,
                config_digest=config_digest,
                config_repr=repr(result.config),
                events_digest=events_digest,
                event_names=tuple(definition.event_names),
                coefficients_hex=_coeffs_to_hex(definition.coefficients),
                error=float(definition.error),
                composable=definition.composable,
                degraded=definition.degraded,
                health=definition.health,
                qrcp_guards=qrcp_guards,
                trust=definition.trust,
                rounded_terms=rounded.terms() if rounded is not None else {},
                event_digests=dict(event_digests or {}),
                vet=(
                    definition.vet.to_payload()
                    if definition.vet is not None
                    else None
                ),
                provenance=dict(provenance) if provenance else None,
                trace_digest=trace_digest,
            )
        )
    return entries


@dataclass
class CatalogDiff:
    """Structured difference between two versions of one definition."""

    metric: str
    version_a: int
    version_b: int
    added_terms: Dict[str, float] = field(default_factory=dict)
    removed_terms: Dict[str, float] = field(default_factory=dict)
    changed_terms: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    error_a: float = 0.0
    error_b: float = 0.0
    trust_a: Optional[str] = None
    trust_b: Optional[str] = None
    guards_a: Tuple[str, ...] = ()
    guards_b: Tuple[str, ...] = ()
    events_digest_changed: bool = False
    #: Counter-validation verdicts per composing event on each side
    #: (empty when that side's run carried no vet stamp).
    vet_a: Dict[str, str] = field(default_factory=dict)
    vet_b: Dict[str, str] = field(default_factory=dict)

    @property
    def verdict_flips(self) -> Dict[str, Tuple[Optional[str], Optional[str]]]:
        """Events whose validation verdict changed between the versions
        (``None`` on a side means that side had no verdict recorded)."""
        flips: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
        for event in sorted(set(self.vet_a) | set(self.vet_b)):
            old, new = self.vet_a.get(event), self.vet_b.get(event)
            if old != new:
                flips[event] = (old, new)
        return flips

    @property
    def identical(self) -> bool:
        return not (
            self.added_terms
            or self.removed_terms
            or self.changed_terms
            or self.error_a != self.error_b
            or self.trust_a != self.trust_b
            or self.guards_a != self.guards_b
            or self.events_digest_changed
            or self.vet_a != self.vet_b
        )

    def render(self) -> str:
        head = f"{self.metric}: v{self.version_a} -> v{self.version_b}"
        if self.identical:
            return f"{head}: identical"
        lines = [head]
        for event in sorted(self.added_terms):
            lines.append(f"  + {self.added_terms[event]:+g} x {event}")
        for event in sorted(self.removed_terms):
            lines.append(f"  - {self.removed_terms[event]:+g} x {event}")
        for event in sorted(self.changed_terms):
            old, new = self.changed_terms[event]
            # Shortest-round-trip floats: a bit-level drift must not
            # render as "1 -> 1".
            lines.append(f"  ~ {event}: {old!r} -> {new!r}")
        if self.error_a != self.error_b:
            lines.append(f"  error: {self.error_a:.6e} -> {self.error_b:.6e}")
        if self.trust_a != self.trust_b:
            lines.append(f"  trust: {self.trust_a} -> {self.trust_b}")
        if self.guards_a != self.guards_b:
            lines.append(
                f"  guards: {list(self.guards_a)} -> {list(self.guards_b)}"
            )
        if self.events_digest_changed:
            lines.append("  event registry changed between versions")
        for event, (old, new) in self.verdict_flips.items():
            lines.append(
                f"  vet: {event}: {old or 'no verdict'} -> {new or 'no verdict'}"
            )
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """Machine-readable mirror of :meth:`render` — the format the
        drift detector (and ``catalog diff --json``) consumes."""
        return {
            "metric": self.metric,
            "version_a": self.version_a,
            "version_b": self.version_b,
            "identical": self.identical,
            "added_terms": dict(sorted(self.added_terms.items())),
            "removed_terms": dict(sorted(self.removed_terms.items())),
            "changed_terms": {
                event: [old, new]
                for event, (old, new) in sorted(self.changed_terms.items())
            },
            "error_a": self.error_a,
            "error_b": self.error_b,
            "trust_a": self.trust_a,
            "trust_b": self.trust_b,
            "guards_a": list(self.guards_a),
            "guards_b": list(self.guards_b),
            "events_digest_changed": self.events_digest_changed,
            "vet_a": dict(sorted(self.vet_a.items())),
            "vet_b": dict(sorted(self.vet_b.items())),
            "verdict_flips": {
                event: [old, new]
                for event, (old, new) in self.verdict_flips.items()
            },
        }


def diff_entries(a: CatalogEntry, b: CatalogEntry) -> CatalogDiff:
    """Structured diff of two entries' definitions (raw coefficients,
    not the rounded display terms — bit drift must be visible)."""
    terms_a = {
        e: float(c) for e, c in zip(a.event_names, a.coefficients) if c != 0.0
    }
    terms_b = {
        e: float(c) for e, c in zip(b.event_names, b.coefficients) if c != 0.0
    }
    diff = CatalogDiff(
        metric=b.metric,
        version_a=a.version,
        version_b=b.version,
        error_a=a.error,
        error_b=b.error,
        trust_a=a.trust.level if a.trust is not None else None,
        trust_b=b.trust.level if b.trust is not None else None,
        guards_a=a.qrcp_guards + a.guards_fired,
        guards_b=b.qrcp_guards + b.guards_fired,
        events_digest_changed=a.events_digest != b.events_digest,
        vet_a=dict((a.vet or {}).get("verdicts", {})),
        vet_b=dict((b.vet or {}).get("verdicts", {})),
    )
    for event, coeff in terms_b.items():
        if event not in terms_a:
            diff.added_terms[event] = coeff
        elif terms_a[event] != coeff:
            diff.changed_terms[event] = (terms_a[event], coeff)
    for event, coeff in terms_a.items():
        if event not in terms_b:
            diff.removed_terms[event] = coeff
    return diff


class MetricCatalogStore:
    """On-disk versioned catalog of metric definitions.

    Writes are atomic (staged file + ``os.replace``), version allocation
    races are resolved with ``os.link``'s exclusive-create semantics, and
    every successful ``put`` appends one line to the ``log.jsonl``
    version log — the log is the catalog's audit trail and is only
    rewritten by explicit :meth:`compact_log` / :meth:`fsck` repair.

    With ``durable=True`` (the default) publication follows full fsync
    discipline: staged contents are synced before the rename, the parent
    directory is synced after it, and log appends are synced — a power
    loss can cost at most the in-flight publication, never a previously
    acknowledged one, and what it leaves behind is exactly what
    :meth:`fsck` detects and quarantines.

    ``failpoint`` is the crash-simulation seam used by the serve-layer
    chaos harness: a callable ``site -> action`` consulted at the
    publication site.  Supported actions: ``"torn"`` (write a truncated
    version file and "lose power" — no fsync, no log record),
    ``"unlogged"`` (publish the version file but lose power before the
    log append).  ``None`` publishes normally.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        durable: bool = True,
        failpoint: Optional[Callable[[str], Optional[str]]] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        self.failpoint = failpoint
        self._log_lock = threading.Lock()

    # -- paths ---------------------------------------------------------
    @property
    def log_path(self) -> Path:
        return self.root / "log.jsonl"

    def _entry_dir(self, arch: str, metric: str, config_digest: str) -> Path:
        return self.root / "entries" / arch / metric_slug(metric) / config_digest

    @staticmethod
    def _version_path(entry_dir: Path, version: int) -> Path:
        return entry_dir / f"v{version:04d}.json"

    @staticmethod
    def _versions_in(entry_dir: Path) -> List[int]:
        if not entry_dir.is_dir():
            return []
        versions = []
        for path in entry_dir.glob("v*.json"):
            try:
                versions.append(int(path.stem[1:]))
            except ValueError:
                continue
        return sorted(versions)

    # -- writes --------------------------------------------------------
    def put(self, entry: CatalogEntry) -> CatalogEntry:
        """Persist ``entry`` as the next version of its key.

        Idempotent on content: when the latest stored version already has
        this entry's content digest, no new version is written and the
        existing entry is returned (counted on ``catalog.dedup``) —
        re-serving an unchanged analysis must not grow the history.
        """
        entry_dir = self._entry_dir(entry.arch, entry.metric, entry.config_digest)
        entry_dir.mkdir(parents=True, exist_ok=True)
        content = entry.content_digest()
        while True:
            versions = self._versions_in(entry_dir)
            if versions:
                latest = self._load(self._version_path(entry_dir, versions[-1]))
                if latest is not None and latest.content_digest() == content:
                    get_tracer().incr("catalog.dedup")
                    return latest
            version = (versions[-1] + 1) if versions else 1
            stored = dataclasses.replace(entry, version=version)
            final = self._version_path(entry_dir, version)
            staged = entry_dir / f".v{version:04d}.{os.getpid()}.staged"
            blob = json.dumps(stored.to_payload(), indent=2, sort_keys=True)
            action = (
                self.failpoint(self._publish_site(stored))
                if self.failpoint is not None
                else None
            )
            if action == "torn":
                # Simulated power loss mid-publish: a torn page of the
                # version file reaches disk, nothing else does.  Readers
                # treat the torn file as a miss; fsck quarantines it.
                final.write_text(blob[: max(1, len(blob) // 2)])
                get_tracer().incr("catalog.chaos.torn_publication")
                return dataclasses.replace(entry, version=0)
            durable_write(staged, blob, durable=self.durable)
            try:
                # Exclusive publish: a racing writer that claimed this
                # version number first wins; we retry with the next one.
                os.link(staged, final)
            except FileExistsError:
                staged.unlink()
                continue
            except OSError:
                # Filesystem without hard links: fall back to an atomic,
                # last-writer-wins rename (single-writer deployments).
                durable_replace(staged, final, durable=self.durable)
            else:
                staged.unlink()
                if self.durable:
                    fsync_dir(entry_dir)
            if action == "unlogged":
                # Simulated power loss after the version file is durable
                # but before the log append: fsck re-appends the record.
                get_tracer().incr("catalog.chaos.unlogged_publication")
                return stored
            self._append_log(stored, content)
            get_tracer().incr("catalog.stores")
            return stored

    @staticmethod
    def _publish_site(entry: CatalogEntry) -> str:
        """The deterministic chaos-site name of one publication."""
        return (
            f"catalog.publish:{entry.arch}:{metric_slug(entry.metric)}:"
            f"{entry.config_digest}:v{entry.version:04d}"
        )

    @staticmethod
    def _log_record(entry: CatalogEntry, content_digest: str) -> dict:
        return {
            "op": "put",
            "arch": entry.arch,
            "metric": entry.metric,
            "config_digest": entry.config_digest,
            "version": entry.version,
            "content_digest": content_digest,
            "events_digest": entry.events_digest,
        }

    def _append_log(self, entry: CatalogEntry, content_digest: str) -> None:
        line = json.dumps(self._log_record(entry, content_digest), sort_keys=True)
        with self._log_lock:
            durable_append(self.log_path, line + "\n", durable=self.durable)

    # -- reads ---------------------------------------------------------
    @staticmethod
    def _load(path: Path) -> Optional[CatalogEntry]:
        try:
            return CatalogEntry.from_payload(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError):
            return None

    def get(
        self,
        arch: str,
        metric: str,
        config_digest: str,
        version: Optional[int] = None,
        events_digest: Optional[str] = None,
        event_digests: Optional[Dict[str, str]] = None,
    ) -> Optional[CatalogEntry]:
        """One stored version (the latest when ``version`` is None).

        With ``events_digest``, an entry recorded against a *different*
        event registry is stale: it is reported as a miss and counted on
        ``catalog.invalidated`` — serving a definition whose raw events
        no longer exist (or measure differently) would be silent poison.

        ``event_digests`` refines that check to the entry's recorded
        dependency set: an entry that tracks per-event digests is fresh
        exactly when the current map equals the recorded one, regardless
        of edits elsewhere in the registry (the whole point of
        dependency tracking — an unrelated edit must not invalidate).
        Entries without a recorded map fall back to the coarse
        whole-registry comparison.
        """
        entry_dir = self._entry_dir(arch, metric, config_digest)
        if version is None:
            versions = self._versions_in(entry_dir)
            if not versions:
                get_tracer().incr("catalog.misses")
                return None
            version = versions[-1]
        entry = self._load(self._version_path(entry_dir, version))
        if entry is None:
            get_tracer().incr("catalog.misses")
            return None
        if event_digests is not None and entry.event_digests:
            if dict(entry.event_digests) != dict(event_digests):
                get_tracer().incr("catalog.invalidated")
                return None
        elif events_digest is not None and entry.events_digest != events_digest:
            get_tracer().incr("catalog.invalidated")
            return None
        get_tracer().incr("catalog.hits")
        return entry

    def latest(
        self,
        arch: str,
        metric: str,
        config_digest: str,
        events_digest: Optional[str] = None,
        event_digests: Optional[Dict[str, str]] = None,
    ) -> Optional[CatalogEntry]:
        """The newest stored version of a key (staleness-checked)."""
        return self.get(
            arch,
            metric,
            config_digest,
            events_digest=events_digest,
            event_digests=event_digests,
        )

    def history(
        self, arch: str, metric: str, config_digest: str
    ) -> List[CatalogEntry]:
        """Every stored version, oldest first."""
        entry_dir = self._entry_dir(arch, metric, config_digest)
        entries = []
        for version in self._versions_in(entry_dir):
            entry = self._load(self._version_path(entry_dir, version))
            if entry is not None:
                entries.append(entry)
        return entries

    def diff(
        self,
        arch: str,
        metric: str,
        config_digest: str,
        version_a: int,
        version_b: int,
    ) -> CatalogDiff:
        """Structured diff between two stored versions of one key."""
        entry_dir = self._entry_dir(arch, metric, config_digest)
        a = self._load(self._version_path(entry_dir, version_a))
        b = self._load(self._version_path(entry_dir, version_b))
        if a is None or b is None:
            missing = version_a if a is None else version_b
            raise KeyError(
                f"no version {missing} of ({arch!r}, {metric!r}, "
                f"{config_digest}) in the catalog"
            )
        return diff_entries(a, b)

    def list_entries(self, arch: Optional[str] = None) -> List[dict]:
        """Summary rows for every (arch, metric, config digest) key."""
        entries_root = self.root / "entries"
        if not entries_root.is_dir():
            return []
        rows = []
        for arch_dir in sorted(entries_root.iterdir()):
            if arch is not None and arch_dir.name != arch:
                continue
            for slug_dir in sorted(p for p in arch_dir.iterdir() if p.is_dir()):
                for digest_dir in sorted(
                    p for p in slug_dir.iterdir() if p.is_dir()
                ):
                    versions = self._versions_in(digest_dir)
                    if not versions:
                        continue
                    latest = self._load(
                        self._version_path(digest_dir, versions[-1])
                    )
                    if latest is None:
                        continue
                    rows.append(
                        {
                            "arch": latest.arch,
                            "domain": latest.domain,
                            "metric": latest.metric,
                            "config_digest": latest.config_digest,
                            "versions": len(versions),
                            "latest_version": latest.version,
                            "error": latest.error,
                            "composable": latest.composable,
                            "trust": (
                                latest.trust.level
                                if latest.trust is not None
                                else None
                            ),
                            "degraded": latest.degraded,
                        }
                    )
        return rows

    def log_records(self) -> List[dict]:
        """The parsed append-only version log, oldest first.

        Tolerant of a torn tail: an append interrupted by power loss can
        leave one partial final line; it is skipped here and repaired by
        :meth:`fsck`.
        """
        records, _bad = self._read_log()
        return records

    def _read_log(self) -> Tuple[List[dict], List[int]]:
        """(parsed records, 0-based indices of unparseable lines)."""
        if not self.log_path.exists():
            return [], []
        records: List[dict] = []
        bad: List[int] = []
        for index, line in enumerate(self.log_path.read_text().splitlines()):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                bad.append(index)
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                bad.append(index)
        return records, bad

    # -- degraded reads ------------------------------------------------
    def stale_latest(
        self,
        arch: str,
        metric: str,
        config_digest: str,
        max_age: Optional[float] = None,
    ) -> Optional[Tuple[CatalogEntry, float]]:
        """The newest *loadable* version and its age in seconds, with no
        freshness checks — the degraded-mode read.

        Callers must mark anything served from here ``stale=True``: the
        entry may predate a registry edit.  ``max_age`` bounds how old a
        definition may be served stale (None = unbounded); torn versions
        are skipped in favour of the newest older good one.
        """
        entry_dir = self._entry_dir(arch, metric, config_digest)
        for version in reversed(self._versions_in(entry_dir)):
            path = self._version_path(entry_dir, version)
            entry = self._load(path)
            if entry is None:
                continue
            try:
                age = max(0.0, time.time() - path.stat().st_mtime)
            except OSError:
                continue
            if max_age is not None and age > max_age:
                return None
            get_tracer().incr("catalog.stale_reads")
            return entry, age
        return None

    # -- fsck & compaction ---------------------------------------------
    @property
    def quarantine_root(self) -> Path:
        return self.root / "quarantine"

    def fsck(self, repair: bool = True) -> "FsckReport":
        """Detect (and with ``repair=True`` fix) crash damage.

        Four findings, mirroring the measurement cache's
        checksum-and-quarantine idiom:

        * **torn versions** — unparseable ``v*.json`` files (power loss
          mid-publication): moved under ``quarantine/`` so no code path
          ever parses them again (``catalog.fsck.quarantined``);
        * **staged leftovers** — ``.staged`` files whose publish never
          completed: deleted;
        * **unlogged versions** — good version files missing from
          ``log.jsonl`` (power loss between publish and log append):
          their log records are reconstructed and re-appended;
        * **orphaned log records** — log lines whose version file is
          gone (including ones just quarantined) and torn log tails:
          the log is rewritten without the unparseable lines, orphans
          are reported (the audit record survives in the report).
        """
        report = FsckReport()
        entries_root = self.root / "entries"
        on_disk: Dict[Tuple[str, str, str, int], CatalogEntry] = {}
        if entries_root.is_dir():
            for path in sorted(entries_root.rglob("*")):
                if not path.is_file():
                    continue
                rel = str(path.relative_to(self.root))
                if path.name.endswith(".staged"):
                    report.staged_removed.append(rel)
                    if repair:
                        path.unlink(missing_ok=True)
                    continue
                if not re.fullmatch(r"v\d{4,}\.json", path.name):
                    continue
                report.scanned += 1
                entry = self._load(path)
                if entry is None:
                    report.quarantined.append(rel)
                    get_tracer().incr("catalog.fsck.quarantined")
                    if repair:
                        dest = self.quarantine_root / rel
                        dest.parent.mkdir(parents=True, exist_ok=True)
                        if dest.exists():
                            dest = dest.with_suffix(
                                f".{int(time.time() * 1e6):x}.json"
                            )
                        os.replace(path, dest)
                    continue
                on_disk[
                    (entry.arch, entry.metric, entry.config_digest, entry.version)
                ] = entry

        records, bad_lines = self._read_log()
        report.log_torn_lines = len(bad_lines)
        logged = {
            (
                r.get("arch"),
                r.get("metric"),
                r.get("config_digest"),
                r.get("version"),
            )
            for r in records
        }
        relog: List[CatalogEntry] = []
        for key, entry in sorted(on_disk.items()):
            if key not in logged:
                report.relogged.append(
                    f"{key[0]}/{key[1]}/{key[2]}/v{key[3]:04d}"
                )
                relog.append(entry)
        for key in sorted(logged):
            if key not in on_disk and all(v is not None for v in key):
                report.orphaned_records.append(
                    f"{key[0]}/{key[1]}/{key[2]}/v{key[3]:04d}"
                )
        if repair:
            if bad_lines:
                # Rewrite the log without the torn lines (atomic +
                # durable) *before* re-appending unlogged versions —
                # rewriting from the pre-append snapshot would discard
                # the records appended below.
                self._rewrite_log(records)
            for entry in relog:
                self._append_log(entry, entry.content_digest())
        get_tracer().incr("catalog.fsck.runs")
        return report

    def compact_log(self) -> "LogCompaction":
        """Compact ``log.jsonl``: drop torn lines, duplicate records, and
        records whose version file no longer exists (run :meth:`fsck`
        first so orphans are accounted before their records vanish).
        The rewrite is atomic and durable."""
        records, bad = self._read_log()
        entries_root = self.root / "entries"
        kept: Dict[Tuple, dict] = {}
        dropped = len(bad)
        for record in records:
            key = (
                record.get("arch"),
                record.get("metric"),
                record.get("config_digest"),
                record.get("version"),
            )
            if all(v is not None for v in key):
                path = self._version_path(
                    self._entry_dir(key[0], key[1], key[2]), key[3]
                )
                if not path.exists():
                    dropped += 1
                    continue
            if key in kept:
                dropped += 1
            kept[key] = record  # last record wins, order preserved by dict
        before = len(records) + len(bad)
        self._rewrite_log(list(kept.values()))
        get_tracer().incr("catalog.log_compactions")
        return LogCompaction(
            records_before=before, records_after=len(kept), dropped=dropped
        )

    def _rewrite_log(self, records: List[dict]) -> None:
        body = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        staged = self.root / f".log.{os.getpid()}.staged"
        with self._log_lock:
            durable_write(staged, body, durable=self.durable)
            durable_replace(staged, self.log_path, durable=self.durable)


@dataclass
class FsckReport:
    """What :meth:`MetricCatalogStore.fsck` found (and repaired)."""

    scanned: int = 0
    quarantined: List[str] = field(default_factory=list)
    staged_removed: List[str] = field(default_factory=list)
    relogged: List[str] = field(default_factory=list)
    orphaned_records: List[str] = field(default_factory=list)
    log_torn_lines: int = 0

    @property
    def clean(self) -> bool:
        """True when the store showed no crash damage at all."""
        return not (
            self.quarantined
            or self.staged_removed
            or self.relogged
            or self.orphaned_records
            or self.log_torn_lines
        )

    def summary(self) -> str:
        return (
            f"catalog fsck: {self.scanned} version file(s) scanned, "
            f"{len(self.quarantined)} quarantined, "
            f"{len(self.staged_removed)} staged leftover(s) removed, "
            f"{len(self.relogged)} unlogged version(s) re-appended, "
            f"{len(self.orphaned_records)} orphaned log record(s), "
            f"{self.log_torn_lines} torn log line(s)"
        )


@dataclass(frozen=True)
class LogCompaction:
    """Result of one :meth:`MetricCatalogStore.compact_log` pass."""

    records_before: int
    records_after: int
    dropped: int
