"""Blocking client for the metric service.

A thin :mod:`http.client` wrapper for scripts, tests, and the CI smoke
job — no asyncio required on the calling side.  Non-200 responses raise
:class:`~repro.serve.service.ServiceError` (or its
:class:`~repro.serve.service.ServiceBusy` subclass for 429) carrying the
server's JSON payload, so callers see the same structured errors the
async API raises.  Transport failures — connection refused, reset,
timeout, a torn response — raise the typed
:class:`~repro.serve.service.TransportError` instead of leaking raw
socket exceptions, so ``except ServiceError`` plus the ``retryable``
flag is the complete error-handling story; the retrying
:class:`~repro.serve.resilience.ResilientCatalogClient` builds on
exactly that contract.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional
from urllib.parse import quote, urlencode

from repro.serve.service import ServiceBusy, ServiceError, TransportError

__all__ = ["CatalogClient"]


class CatalogClient:
    """Blocking HTTP client for one :class:`HttpMetricServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8752, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        where = f"{self.host}:{self.port}"
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except TimeoutError as exc:
                raise TransportError(
                    f"no response from {where} within {self.timeout}s", exc
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                raise TransportError(
                    f"{type(exc).__name__} talking to {where}: {exc}", exc
                ) from exc
            try:
                data = json.loads(raw.decode() or "{}")
            except (UnicodeDecodeError, ValueError) as exc:
                raise TransportError(f"torn response from {where}", exc) from exc
            if response.status == 429:
                raise ServiceBusy(int(data.get("queue_limit", 0)) or 1)
            if response.status != 200:
                raise ServiceError(response.status, data)
            return data
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def ready(self) -> bool:
        try:
            return bool(self._request("GET", "/readyz").get("ready"))
        except ServiceError as exc:
            if exc.status == 503:
                return False
            raise

    def metric(
        self,
        system: str,
        domain: str,
        metric: str,
        seed: int = 2024,
        faults: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One served metric definition payload (raises on 4xx/5xx)."""
        query: Dict[str, Any] = {"seed": seed}
        if faults is not None:
            query["faults"] = faults
        path = (
            f"/v1/metric/{quote(system, safe='')}/{quote(domain, safe='')}/"
            f"{quote(metric, safe='')}?{urlencode(query)}"
        )
        return self._request("GET", path)

    def analyze(
        self,
        system: str,
        domain: str,
        seed: int = 2024,
        faults: Optional[str] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Every metric of a domain; returns ``{metric: payload}``."""
        body: Dict[str, Any] = {"system": system, "domain": domain, "seed": seed}
        if faults is not None:
            body["faults"] = faults
        return self._request("POST", "/v1/analyze", body=body)["metrics"]

    def catalog_list(self, arch: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/v1/catalog"
        if arch is not None:
            path += "?" + urlencode({"arch": arch})
        return self._request("GET", path)["entries"]

    def catalog_entry(
        self,
        arch: str,
        metric: str,
        digest: Optional[str] = None,
        version: Optional[int] = None,
    ) -> Dict[str, Any]:
        query: Dict[str, Any] = {}
        if digest is not None:
            query["digest"] = digest
        if version is not None:
            query["version"] = version
        path = f"/v1/catalog/{quote(arch, safe='')}/{quote(metric, safe='')}"
        if query:
            path += "?" + urlencode(query)
        return self._request("GET", path)
