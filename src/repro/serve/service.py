"""The asyncio metric service: coalesced, batched, backpressured analyses.

One pipeline run produces every metric of a domain, takes a fraction of a
second, and is fully determined by ``(system, domain, seed, config)`` —
the perfect shape for a serving layer:

* **Catalog first.**  A request whose definition is already in the
  :class:`~repro.serve.catalog.MetricCatalogStore` (same key, same event
  registry) is answered without touching the pipeline at all.
* **Request coalescing.**  N concurrent requests for the same analysis
  key share one in-flight pipeline run; the run's result resolves all of
  them (``serve.coalesced`` counts the riders).
* **Batched dispatch.**  Distinct queued requests are drained in batches
  and handed to a bounded worker pool; each batch executes through the
  :class:`~repro.core.sweep.SweepEngine` (serial inside the batch, so the
  engine's retry/structured-error machinery is reused verbatim) with the
  shared :class:`~repro.io.cache.MeasurementCache` underneath.
* **Backpressure.**  The dispatch queue is bounded; when it is full a new
  analysis is rejected immediately with :class:`ServiceBusy` (HTTP 429),
  never queued invisibly — a heavily loaded service degrades loudly.
* **Fault transparency.**  Requests may carry a :mod:`repro.faults` spec;
  an injected worker crash surfaces as a structured error payload
  (exception type, message, attempts), never a hang.  Faulted requests
  bypass the catalog in both directions — diagnostics must not poison
  the store.

The service is transport-agnostic: :mod:`repro.serve.http` puts an
asyncio stream server in front of it, and the test suite drives the
async API directly.  All counters (``serve.*``, ``catalog.*``) are
incremented on the event-loop thread, so an :func:`repro.obs.tracing`
scope around the loop observes the whole service.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import DOMAIN_CONFIGS, PipelineConfig
from repro.core.sweep import (
    SWEEP_SYSTEMS,
    SYSTEM_DOMAINS,
    SweepEngine,
    SweepOutcome,
    SweepTask,
)
from repro.guard.validate import ValidationError, require_int
from repro.obs import get_tracer
from repro.serve.catalog import (
    CatalogEntry,
    MetricCatalogStore,
    analysis_config_digest,
    entries_from_result,
)

__all__ = [
    "AnalysisRequest",
    "MetricService",
    "ServedMetric",
    "ServiceBusy",
    "ServiceError",
    "ServiceStats",
    "TransportError",
]


class ServiceError(Exception):
    """A structured service failure: HTTP-style status + JSON payload."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        self.status = status
        self.payload = payload
        super().__init__(payload.get("error", f"service error {status}"))

    @property
    def retryable(self) -> bool:
        """Whether a retry of the same request can plausibly succeed.

        The payload's explicit ``retry`` flag wins; otherwise
        backpressure (429) and unavailability (503) are retryable while
        validation (4xx) and deterministic analysis failures (500) are
        not — retrying a deterministic failure recomputes the same
        failure.
        """
        if "retry" in self.payload:
            return bool(self.payload["retry"])
        return self.status in (429, 503)


class ServiceBusy(ServiceError):
    """Backpressure rejection: the dispatch queue is full (HTTP 429)."""

    def __init__(self, queue_limit: int):
        super().__init__(
            429,
            {
                "error": "service overloaded: dispatch queue is full",
                "queue_limit": queue_limit,
                "retry": True,
            },
        )


class TransportError(ServiceError):
    """A client-side transport failure: the connection was refused,
    reset, or timed out before a response arrived.

    Raised by :class:`~repro.serve.client.CatalogClient` in place of raw
    socket exceptions so callers can distinguish retryable transport
    trouble from fatal application errors with one ``isinstance`` /
    ``retryable`` check.  Always retryable — though the caller cannot
    know whether the request executed, which is why retries must ride an
    idempotent key (the service's request-coalescing identity).
    """

    def __init__(self, detail: str, cause: Optional[BaseException] = None):
        super().__init__(
            503,
            {
                "error": f"transport failure: {detail}",
                "transport": True,
                "retry": True,
                "cause": type(cause).__name__ if cause is not None else None,
            },
        )


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis the service can run: a (system, domain, seed) pipeline.

    ``faults`` is an optional :func:`repro.faults.parse_fault_spec`
    string; faulted requests are diagnostic probes and never read or
    write the catalog.
    """

    system: str
    domain: str
    seed: int = 2024
    faults: Optional[str] = None

    def __post_init__(self) -> None:
        if self.system not in SWEEP_SYSTEMS:
            raise ValidationError(
                f"AnalysisRequest: unknown system {self.system!r}; expected "
                f"one of {sorted(SWEEP_SYSTEMS)}"
            )
        if self.domain not in SYSTEM_DOMAINS[self.system]:
            raise ValidationError(
                f"AnalysisRequest: domain {self.domain!r} is not measurable "
                f"on {self.system!r} (has: {SYSTEM_DOMAINS[self.system]})"
            )
        require_int(self.seed, "seed", "AnalysisRequest", minimum=0)
        if self.faults is not None:
            from repro.faults import parse_fault_spec

            parse_fault_spec(self.faults)  # raises ValueError on bad spec

    @property
    def key(self) -> Tuple[str, str, int, Optional[str]]:
        """The coalescing key: requests with equal keys share one run."""
        return (self.system, self.domain, self.seed, self.faults)


@dataclass
class ServiceStats:
    """Liveness counters exposed on the health endpoint."""

    requests: int = 0
    coalesced: int = 0
    catalog_hits: int = 0
    pipeline_runs: int = 0
    batches: int = 0
    rejected: int = 0
    errors: int = 0
    stale_served: int = 0

    def to_payload(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "catalog_hits": self.catalog_hits,
            "pipeline_runs": self.pipeline_runs,
            "batches": self.batches,
            "rejected": self.rejected,
            "errors": self.errors,
            "stale_served": self.stale_served,
        }


@dataclass(frozen=True)
class ServedMetric:
    """One answer: the catalog entry plus where it came from.

    ``stale=True`` marks a degraded-mode answer: the service could not
    run (or reach) a fresh analysis and served the newest stored entry
    instead, within the configured freshness bound.  A stale answer is
    *explicitly* stale — the serving tier's invariant is that every
    response is bit-identical to the fault-free answer, marked stale, or
    a typed error; never a silently wrong coefficient.
    """

    entry: CatalogEntry
    source: str  # "catalog" | "pipeline"
    stale: bool = False
    stale_age: Optional[float] = None  # seconds since the entry was stored

    def to_payload(self) -> Dict[str, Any]:
        payload = self.entry.to_payload()
        payload["source"] = self.source
        payload["stale"] = self.stale
        if self.stale:
            payload["stale_age_seconds"] = self.stale_age
        return payload


@dataclass
class _Job:
    """One in-flight analysis: the request plus the future its riders await."""

    request: AnalysisRequest
    future: "asyncio.Future[Any]"
    entries: Dict[str, CatalogEntry] = field(default_factory=dict)


class MetricService:
    """Coalescing, batching, backpressured front-end over the pipeline.

    Parameters
    ----------
    store:
        The metric catalog; ``None`` serves from fresh pipeline runs only.
    workers:
        Threads in the bounded worker pool (each executes one batch at a
        time through a serial :class:`SweepEngine`).
    queue_limit:
        Dispatch-queue bound; a full queue rejects with
        :class:`ServiceBusy` instead of queueing invisibly.
    batch_size:
        Maximum distinct analyses drained into one engine dispatch.
    cache_dir:
        Shared on-disk measurement cache for the pipeline runs (None
        keeps caching in-memory per worker).
    retries / task_timeout:
        Passed to the :class:`SweepEngine` (bounded retry of crashed or
        injected-fault attempts; per-task timeout needs a pool executor
        and is therefore only honoured when ``engine_executor`` is not
        serial).
    stale_max_age:
        Graceful-degradation gate: when the dispatch queue is full, an
        unfaulted request whose metrics exist in the catalog (any
        version no older than this many seconds, freshness checks
        waived) is answered with ``stale=True`` instead of a 429.
        ``None`` (default) disables stale serving — saturation rejects.
    runner:
        Test seam: a callable ``(List[SweepTask]) -> List[SweepOutcome]``
        replacing the engine dispatch.
    """

    def __init__(
        self,
        store: Optional[MetricCatalogStore] = None,
        *,
        workers: int = 2,
        queue_limit: int = 16,
        batch_size: int = 4,
        cache_dir: Optional[str] = None,
        retries: int = 1,
        task_timeout: Optional[float] = None,
        stale_max_age: Optional[float] = None,
        runner=None,
    ):
        require_int(workers, "workers", "MetricService", minimum=1)
        require_int(queue_limit, "queue_limit", "MetricService", minimum=1)
        require_int(batch_size, "batch_size", "MetricService", minimum=1)
        self.store = store
        self.workers = workers
        self.queue_limit = queue_limit
        self.batch_size = batch_size
        self.cache_dir = cache_dir
        self.retries = retries
        self.task_timeout = task_timeout
        self.stale_max_age = stale_max_age
        self.stats = ServiceStats()
        self._engine = SweepEngine(
            executor="serial",
            task_timeout=task_timeout,
            max_retries=retries,
        )
        self._runner = runner if runner is not None else self._run_batch
        self._pool: Optional[ThreadPoolExecutor] = None
        self._queue: Optional["asyncio.Queue[_Job]"] = None
        self._worker_tasks: List["asyncio.Task[None]"] = []
        self._inflight: Dict[Tuple, _Job] = {}
        # (system, seed) -> (arch name, event-set digest); nodes are
        # deterministic, so this only needs to be computed once each.
        self._node_info: Dict[Tuple[str, int], Tuple[str, str]] = {}
        # (system, seed) -> node, and (system, seed, domain) -> per-event
        # dependency digests; both deterministic, computed once, and what
        # keeps catalog reads from re-hashing the registry per request.
        self._nodes: Dict[Tuple[str, int], object] = {}
        self._domain_deps: Dict[Tuple[str, int, str], Dict[str, str]] = {}
        self._started = False
        self._stopping = False
        # Unique per instance so stop() can join exactly this service's
        # worker threads by name.
        self._thread_prefix = f"repro-serve-{id(self):x}"
        #: Set by stop(): whether every worker thread joined within the
        #: drain timeout (None before the first stop).
        self.drained_clean: Optional[bool] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Spawn the dispatch queue and worker tasks (idempotent)."""
        if self._started:
            return
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix=self._thread_prefix
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]
        self._started = True
        self._stopping = False

    async def stop(self, *, drain_timeout: float = 10.0) -> None:
        """Cancel workers, resolve every pending request with a
        structured shutdown error — a stopping service never hangs a
        client — then join the worker threads (bounded by
        ``drain_timeout``; ``drained_clean`` records whether every
        thread exited in time)."""
        if not self._started:
            return
        self._stopping = True
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        shutdown = ServiceError(503, {"error": "service shutting down"})
        while self._queue is not None and not self._queue.empty():
            job = self._queue.get_nowait()
            self._resolve_error(job, shutdown)
        for job in list(self._inflight.values()):
            self._resolve_error(job, shutdown)
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            pool.shutdown(wait=False, cancel_futures=True)
            # Join off the loop thread: an in-flight batch may take a
            # moment to notice the shutdown, and blocking the loop here
            # would stall other servers sharing it.
            self.drained_clean = await asyncio.get_running_loop().run_in_executor(
                None, self._join_worker_threads, drain_timeout
            )
        self._started = False

    def _join_worker_threads(self, timeout: float) -> bool:
        """Join every pool thread of this service; True when all exited."""
        deadline = time.monotonic() + timeout
        for thread in threading.enumerate():
            if thread.name.startswith(self._thread_prefix):
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
        return not any(
            thread.name.startswith(self._thread_prefix) and thread.is_alive()
            for thread in threading.enumerate()
        )

    @property
    def ready(self) -> bool:
        """Readiness: workers are up and the service is not draining."""
        return self._started and not self._stopping

    def health(self) -> Dict[str, Any]:
        """Liveness payload: stats, queue depth, and the ambient
        :mod:`repro.obs` counter totals (non-empty when the service runs
        inside a ``tracing`` scope)."""
        return {
            "status": "ok" if self.ready else "stopping",
            "ready": self.ready,
            "workers": self.workers,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_limit": self.queue_limit,
            "stats": self.stats.to_payload(),
            "counters": dict(get_tracer().counters),
            "catalog": self.store is not None,
        }

    # -- node identity -------------------------------------------------
    def _node_for(self, system: str, seed: int):
        """The (deterministic, cached) node for a system+seed."""
        key = (system, seed)
        node = self._nodes.get(key)
        if node is None:
            node = SWEEP_SYSTEMS[system](seed=seed)
            self._nodes[key] = node
        return node

    def _node_identity(self, system: str, seed: int) -> Tuple[str, str]:
        """(architecture name, event-set digest) for a system+seed."""
        key = (system, seed)
        info = self._node_info.get(key)
        if info is None:
            node = self._node_for(system, seed)
            # content_digest() is cached on the registry itself, so even
            # a cold service instance hashes the event set once.
            info = (node.name, node.events.content_digest())
            self._node_info[key] = info
        return info

    def _domain_dependencies(
        self, system: str, seed: int, domain: str
    ) -> Dict[str, str]:
        """Per-event dependency digests of one domain's measured slice."""
        key = (system, seed, domain)
        deps = self._domain_deps.get(key)
        if deps is None:
            from repro.incr.engine import domain_event_digests

            deps = domain_event_digests(self._node_for(system, seed).events, domain)
            self._domain_deps[key] = deps
        return deps

    def _config_for(self, domain: str) -> PipelineConfig:
        return replace(DOMAIN_CONFIGS[domain], use_measurement_cache=True)

    # -- request paths -------------------------------------------------
    async def get_metric(
        self,
        system: str,
        domain: str,
        metric: str,
        seed: int = 2024,
        faults: Optional[str] = None,
    ) -> ServedMetric:
        """Serve one metric definition, from the catalog when possible.

        Raises :class:`ServiceBusy` under backpressure and
        :class:`ServiceError` for unknown metrics or failed analyses.
        """
        entries = await self._serve(
            AnalysisRequest(system=system, domain=domain, seed=seed, faults=faults)
        )
        served = entries.get(metric)
        if served is None:
            raise ServiceError(
                404,
                {
                    "error": f"metric {metric!r} is not composed by domain "
                    f"{domain!r}",
                    "available": sorted(entries),
                },
            )
        return served

    async def analyze(
        self,
        system: str,
        domain: str,
        seed: int = 2024,
        faults: Optional[str] = None,
    ) -> Dict[str, ServedMetric]:
        """Serve every metric of a domain (one pipeline run at most)."""
        return await self._serve(
            AnalysisRequest(system=system, domain=domain, seed=seed, faults=faults)
        )

    async def _serve(self, request: AnalysisRequest) -> Dict[str, ServedMetric]:
        if not self._started:
            raise ServiceError(503, {"error": "service is not started"})
        tracer = get_tracer()
        self.stats.requests += 1
        tracer.incr("serve.requests")

        if request.faults is None:
            cataloged = self._from_catalog(request)
            if cataloged is not None:
                self.stats.catalog_hits += 1
                tracer.incr("serve.catalog_hits")
                return {
                    name: ServedMetric(entry=entry, source="catalog")
                    for name, entry in cataloged.items()
                }

        job = self._inflight.get(request.key)
        if job is not None:
            self.stats.coalesced += 1
            tracer.incr("serve.coalesced")
        else:
            job = _Job(request=request, future=asyncio.get_running_loop().create_future())
            assert self._queue is not None
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                stale = self._stale_from_catalog(request)
                if stale is not None:
                    # Graceful degradation: a saturated service answers
                    # with the newest stored definition, explicitly
                    # marked stale, instead of turning load into 429s.
                    self.stats.stale_served += 1
                    tracer.incr("serve.stale_served")
                    return stale
                self.stats.rejected += 1
                tracer.incr("serve.rejected")
                raise ServiceBusy(self.queue_limit) from None
            self._inflight[request.key] = job
        outcome = await asyncio.shield(job.future)
        if isinstance(outcome, ServiceError):
            raise outcome
        return {
            name: ServedMetric(entry=entry, source="pipeline")
            for name, entry in outcome.items()
        }

    def _from_catalog(
        self, request: AnalysisRequest
    ) -> Optional[Dict[str, CatalogEntry]]:
        """Every metric of the requested domain, from the store — or None
        when any expected metric is missing or stale."""
        if self.store is None:
            return None
        from repro.core.signatures import signatures_for
        from repro.serve.shard import ShardUnavailable

        arch, events_digest = self._node_identity(request.system, request.seed)
        config_digest = analysis_config_digest(
            request.domain, request.seed, self._config_for(request.domain)
        )
        dependencies = self._domain_dependencies(
            request.system, request.seed, request.domain
        )
        entries: Dict[str, CatalogEntry] = {}
        for signature in signatures_for(request.domain):
            try:
                entry = self.store.latest(
                    arch,
                    signature.name,
                    config_digest,
                    events_digest=events_digest,
                    event_digests=dependencies,
                )
            except ShardUnavailable:
                # The shard owning this metric is down: treat as a miss
                # and recompute — the service can still answer fresh.
                return None
            if entry is None:
                return None
            entries[signature.name] = entry
        return entries

    def _stale_from_catalog(
        self, request: AnalysisRequest
    ) -> Optional[Dict[str, ServedMetric]]:
        """Degraded-mode read: every metric of the domain from the
        newest loadable stored versions, freshness checks waived, gated
        by ``stale_max_age`` — or None when disabled, faulted, or any
        metric is missing/too old (the caller then fails loudly)."""
        if (
            self.store is None
            or self.stale_max_age is None
            or request.faults is not None
        ):
            return None
        from repro.core.signatures import signatures_for
        from repro.serve.shard import ShardUnavailable

        arch, _ = self._node_identity(request.system, request.seed)
        config_digest = analysis_config_digest(
            request.domain, request.seed, self._config_for(request.domain)
        )
        served: Dict[str, ServedMetric] = {}
        for signature in signatures_for(request.domain):
            try:
                found = self.store.stale_latest(
                    arch, signature.name, config_digest, max_age=self.stale_max_age
                )
            except ShardUnavailable:
                return None
            if found is None:
                return None
            entry, age = found
            served[signature.name] = ServedMetric(
                entry=entry, source="catalog", stale=True, stale_age=age
            )
        return served

    # -- incremental refresh ---------------------------------------------
    async def refresh(
        self,
        system: str,
        seed: int = 2024,
        domains: Optional[Sequence[str]] = None,
        registry=None,
    ):
        """Bring the catalog up to date for a system without a full sweep.

        Runs :func:`repro.incr.refresh_catalog` on the worker pool: each
        domain whose per-event dependency digests still match its stored
        entries is proven fresh without recomputation; stale domains
        re-measure only changed columns and re-run the pipeline.  Pass
        ``registry`` (e.g. from :func:`repro.incr.apply_edits`) to refresh
        against an edited event registry.  Returns the
        :class:`~repro.incr.engine.RefreshReport`.
        """
        if self.store is None:
            raise ServiceError(
                400, {"error": "refresh needs a catalog store"}
            )
        if not self._started or self._pool is None:
            raise ServiceError(503, {"error": "service is not started"})
        if system not in SWEEP_SYSTEMS:
            raise ServiceError(
                404,
                {
                    "error": f"unknown system {system!r}",
                    "available": sorted(SWEEP_SYSTEMS),
                },
            )
        from repro.incr import refresh_catalog

        node = self._node_for(system, seed)
        wanted = tuple(domains) if domains else SYSTEM_DOMAINS[system]
        for domain in wanted:
            if domain not in SYSTEM_DOMAINS[system]:
                raise ServiceError(
                    400,
                    {
                        "error": f"domain {domain!r} is not measurable on "
                        f"{system!r}",
                        "available": list(SYSTEM_DOMAINS[system]),
                    },
                )
        configs = {domain: self._config_for(domain) for domain in wanted}
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self._pool,
            lambda: refresh_catalog(
                self.store, node, wanted, registry=registry, configs=configs
            ),
        )
        get_tracer().incr("serve.refreshes")
        return report

    # -- dispatch ------------------------------------------------------
    async def _worker(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            batch = [job]
            while len(batch) < self.batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.stats.batches += 1
            get_tracer().incr("serve.batches")
            tasks = [self._task_for(j.request) for j in batch]
            try:
                outcomes = await loop.run_in_executor(
                    self._pool, self._runner, tasks
                )
            except Exception as exc:  # noqa: BLE001 — resolve, never hang
                error = ServiceError(
                    500,
                    {
                        "error": f"batch dispatch failed: {exc}",
                        "error_type": type(exc).__name__,
                    },
                )
                for j in batch:
                    self._resolve_error(j, error)
                continue
            for j, outcome in zip(batch, outcomes):
                self._resolve(j, outcome)

    def _task_for(self, request: AnalysisRequest) -> SweepTask:
        faults = None
        if request.faults is not None:
            from repro.faults import parse_fault_spec

            faults = parse_fault_spec(request.faults)
        return SweepTask(
            system=request.system,
            domain=request.domain,
            seed=request.seed,
            config=self._config_for(request.domain),
            cache_dir=self.cache_dir,
            faults=faults,
        )

    def _run_batch(self, tasks: List[SweepTask]) -> List[SweepOutcome]:
        """Worker-thread body: one serial engine dispatch per batch.

        The batch runs inside its own (thread-local) tracing scope; the
        finished trace is attached to every successful result so the
        catalog can stamp its digest as lineage.  The loop thread's
        ambient tracer is untouched."""
        from repro.obs import tracing

        with tracing(seed=tasks[0].seed if tasks else 0) as tracer:
            outcomes = self._engine.run(tasks)
        batch_trace = tracer.trace()
        for outcome in outcomes:
            if outcome.ok and outcome.result is not None:
                outcome.result.trace = batch_trace
        return outcomes

    def _resolve(self, job: _Job, outcome: Optional[SweepOutcome]) -> None:
        """Turn one engine outcome into the job's resolution (loop thread)."""
        tracer = get_tracer()
        if outcome is None or not outcome.ok:
            self.stats.errors += 1
            tracer.incr("serve.errors")
            payload: Dict[str, Any] = {
                "error": outcome.error if outcome else "analysis produced no outcome",
                "error_type": outcome.error_type if outcome else None,
                "attempts": outcome.attempts if outcome else 0,
                "request": {
                    "system": job.request.system,
                    "domain": job.request.domain,
                    "seed": job.request.seed,
                    "faults": job.request.faults,
                },
            }
            if outcome is not None and outcome.traceback:
                payload["traceback"] = outcome.traceback
            self._resolve_error(job, ServiceError(500, payload))
            return
        self.stats.pipeline_runs += 1
        tracer.incr("serve.pipeline_runs")
        result = outcome.result
        arch, events_digest = self._node_identity(
            job.request.system, job.request.seed
        )
        trace_digest = None
        if result.trace is not None:
            from repro.io.digest import sha256_hex
            from repro.obs import trace_json_digest

            trace_digest = sha256_hex(trace_json_digest(result.trace), length=16)
        entries = {
            entry.metric: entry
            for entry in entries_from_result(
                result,
                arch=arch,
                seed=job.request.seed,
                events_digest=events_digest,
                trace_digest=trace_digest,
                event_digests=self._domain_dependencies(
                    job.request.system, job.request.seed, job.request.domain
                ),
            )
        }
        if self.store is not None and job.request.faults is None:
            from repro.serve.shard import ShardUnavailable

            try:
                entries = {
                    name: self.store.put(entry) for name, entry in entries.items()
                }
            except (OSError, ShardUnavailable):
                # A sick catalog disk (or a down shard) must not fail a
                # successful analysis: serve the computed (unpersisted)
                # entries and count the store failure loudly.
                tracer.incr("serve.catalog_store_errors")
        self._inflight.pop(job.request.key, None)
        if not job.future.done():
            job.future.set_result(entries)

    def _resolve_error(self, job: _Job, error: ServiceError) -> None:
        self._inflight.pop(job.request.key, None)
        if not job.future.done():
            # Resolve with the error object (not set_exception) so every
            # coalesced rider observes it without "exception was never
            # retrieved" noise for the ones that were cancelled.
            job.future.set_result(error)
