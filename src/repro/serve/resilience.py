"""Client-side resilience: retries, deadlines, breakers, hedged reads.

:class:`~repro.serve.client.CatalogClient` is one socket, one attempt:
fine against a healthy server, useless against the failures the
supervised serving tier is built to survive (a worker SIGKILLed
mid-response, a listener mid-restart, a slow replica).  This module adds
the client half of the fault-tolerance contract:

* **Retry with exponential backoff and deterministic jitter** — the
  jitter is a pure function of ``(idempotency key, attempt)``, so a
  retry schedule is reproducible in tests while distinct requests still
  decorrelate (no thundering herd of identical sleep ladders).
* **Per-request deadlines** — a logical request gets one time budget;
  every attempt's socket timeout is clamped to what remains.
* **A circuit breaker per endpoint** — consecutive transport/5xx
  failures trip it open and further calls fail fast with
  :class:`BreakerOpen` instead of burning a timeout each; after
  ``reset_after`` one half-open probe decides re-close vs re-open.
* **Hedged reads** — idempotent reads may fire a second attempt against
  a replica after ``hedge_delay`` seconds; first success wins.  Safe
  because every request the service accepts is idempotent by
  construction: retries and hedges carry the same idempotency key as the
  original, which *is* the service's request-coalescing identity
  ``(system, domain, seed, faults)`` — a duplicate that arrives while
  the original runs coalesces onto the same in-flight analysis, and one
  that arrives after it hits the catalog; either way nothing is computed
  twice.

Everything is injectable (clock, sleep, transport factory) so the retry
and breaker behaviour is unit-testable without sockets.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.io.digest import json_digest, sha256_hex
from repro.obs import get_tracer
from repro.serve.client import CatalogClient
from repro.serve.service import ServiceError, TransportError

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "DeadlineExceeded",
    "ResilientCatalogClient",
    "RetryPolicy",
    "idempotency_key",
]


def idempotency_key(
    system: str, domain: str, seed: int = 2024, faults: Optional[str] = None
) -> str:
    """The request's idempotency key: a digest of the service's
    request-coalescing identity.  Two calls with equal keys can never
    compute twice server-side (coalescing in flight, catalog after), so
    retrying or hedging under this key is always safe."""
    return json_digest(
        {"system": system, "domain": domain, "seed": seed, "faults": faults},
        length=16,
    )


class DeadlineExceeded(ServiceError):
    """The per-request time budget ran out before any attempt succeeded."""

    def __init__(self, budget: float, attempts: int, last_error: Optional[ServiceError]):
        super().__init__(
            504,
            {
                "error": f"deadline of {budget}s exceeded after "
                f"{attempts} attempt(s)",
                "retry": True,
                "last_error": last_error.payload if last_error else None,
            },
        )


class BreakerOpen(ServiceError):
    """Fast-fail: the endpoint's circuit breaker is open."""

    def __init__(self, endpoint: str, open_for: float):
        super().__init__(
            503,
            {
                "error": f"circuit breaker open for {endpoint}",
                "retry": True,
                "breaker": "open",
                "open_for_seconds": round(max(0.0, open_for), 3),
            },
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(key, attempt)`` is a pure function: the base doubles per
    attempt up to ``backoff_cap`` and is scaled into ``[0.5, 1.0)`` of
    itself by a jitter fraction hashed from ``(key, attempt)``.  Same
    key, same schedule — reproducible tests; different keys decorrelate.
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be >= 0")

    def delay(self, key: str, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (the first retry is 1)."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))
        fraction = int(sha256_hex(f"{key}:attempt{attempt}", length=8), 16) / 16**8
        return base * (0.5 + 0.5 * fraction)


class CircuitBreaker:
    """Classic three-state breaker over consecutive failures.

    *closed* — calls flow; ``failure_threshold`` consecutive failures
    trip to *open* (``breaker.opened``).  *open* — :meth:`allow` is
    False (fast-fail) until ``reset_after`` seconds pass, then one probe
    is admitted (*half-open*, ``breaker.half_open``).  A probe success
    re-closes (``breaker.closed``); a probe failure re-opens and the
    timer restarts.  Thread-compatible for the blocking client's usage
    (one logical request at a time per client instance).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def open_for(self) -> float:
        """Seconds until the breaker will admit a half-open probe."""
        if self.state != "open":
            return 0.0
        return max(0.0, self.reset_after - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """Whether a call may proceed now (admits the half-open probe)."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at < self.reset_after:
                return False
            self.state = "half-open"
            self._probing = False
            get_tracer().incr("breaker.half_open")
        # half-open: exactly one probe at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        if self.state != "closed":
            get_tracer().incr("breaker.closed")
        self.state = "closed"
        self.failures = 0
        self._probing = False

    def record_failure(self) -> None:
        if self.state == "half-open":
            self._trip()
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        if self.state != "open":
            get_tracer().incr("breaker.opened")
        self.state = "open"
        self._opened_at = self._clock()
        self.failures = 0
        self._probing = False


class ResilientCatalogClient:
    """Retrying, hedging, breaker-guarded front over :class:`CatalogClient`.

    Parameters
    ----------
    endpoints:
        ``(host, port)`` pairs; the first is the primary, the rest are
        read replicas (attempt rotation and hedged reads use them).
    timeout:
        Per-attempt socket timeout (clamped to the remaining deadline).
    deadline:
        Per logical request time budget in seconds.
    retry:
        The :class:`RetryPolicy`; only ``retryable`` errors are retried.
    breaker / breaker_factory:
        One :class:`CircuitBreaker` per endpoint (``breaker_factory``
        builds them; pass ``None`` to disable fast-fail).
    hedge_delay:
        When set and a replica exists, idempotent reads fire a hedged
        second attempt at a replica after this many seconds without a
        primary response; first success wins.
    accept_stale:
        When False, responses marked ``stale=True`` raise
        :class:`ServiceError` (503) instead of being returned — for
        callers that must never act on degraded answers.
    clock / sleep / transport:
        Test seams (monotonic clock, sleep function, and a
        ``(host, port, timeout) -> CatalogClient``-like factory).
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        *,
        timeout: float = 30.0,
        deadline: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = CircuitBreaker,
        hedge_delay: Optional[float] = None,
        accept_stale: bool = True,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        transport: Optional[Callable[[str, int, float], Any]] = None,
    ):
        if not endpoints:
            raise ValueError("ResilientCatalogClient needs at least one endpoint")
        self.endpoints: List[Tuple[str, int]] = [tuple(e) for e in endpoints]
        self.timeout = timeout
        self.deadline = deadline
        self.retry = retry if retry is not None else RetryPolicy()
        self.hedge_delay = hedge_delay
        self.accept_stale = accept_stale
        self._clock = clock
        self._sleep = sleep
        self._transport = transport or (
            lambda host, port, timeout: CatalogClient(host, port, timeout=timeout)
        )
        self._breakers: Dict[Tuple[str, int], Optional[CircuitBreaker]] = {
            endpoint: (breaker_factory() if breaker_factory is not None else None)
            for endpoint in self.endpoints
        }

    # -- plumbing ------------------------------------------------------
    def breaker(self, endpoint: Tuple[str, int]) -> Optional[CircuitBreaker]:
        return self._breakers[tuple(endpoint)]

    def _attempt(
        self,
        endpoint: Tuple[str, int],
        op: Callable[[Any], Any],
        attempt_timeout: float,
    ) -> Any:
        breaker = self._breakers[endpoint]
        if breaker is not None and not breaker.allow():
            raise BreakerOpen(f"{endpoint[0]}:{endpoint[1]}", breaker.open_for)
        try:
            client = self._transport(endpoint[0], endpoint[1], attempt_timeout)
            result = op(client)
        except ServiceError as exc:
            if breaker is not None:
                # Transport trouble and server-side unavailability count
                # against the endpoint; application-level answers (404,
                # 400, even a 500 analysis failure) prove it is serving.
                if isinstance(exc, TransportError) or exc.status == 503:
                    breaker.record_failure()
                else:
                    breaker.record_success()
            raise
        except BaseException:
            # Any other exception must still settle the breaker: a
            # half-open probe that never reports back would leave
            # allow() False forever, bricking the endpoint.
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    def _call(
        self,
        op: Callable[[Any], Any],
        key: str,
        *,
        hedgeable: bool = False,
    ) -> Any:
        """Run ``op`` with retries, rotation, deadline, and hedging."""
        deadline_at = self._clock() + self.deadline
        last_error: Optional[ServiceError] = None
        attempts = 0
        for attempt in range(1, self.retry.max_attempts + 1):
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                break
            endpoint = self.endpoints[(attempt - 1) % len(self.endpoints)]
            attempt_timeout = max(0.001, min(self.timeout, remaining))
            attempts += 1
            try:
                if (
                    hedgeable
                    and self.hedge_delay is not None
                    and len(self.endpoints) > 1
                ):
                    return self._hedged(endpoint, op, attempt_timeout, attempt)
                return self._attempt(endpoint, op, attempt_timeout)
            except ServiceError as exc:
                get_tracer().incr("client.attempt_errors")
                if not exc.retryable:
                    raise
                last_error = exc
            pause = self.retry.delay(key, attempt)
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                break
            if pause > 0:
                self._sleep(min(pause, remaining))
        if last_error is not None and self._clock() < deadline_at:
            get_tracer().incr("client.exhausted_retries")
            raise last_error
        raise DeadlineExceeded(self.deadline, attempts, last_error)

    def _hedged(
        self,
        primary: Tuple[str, int],
        op: Callable[[Any], Any],
        attempt_timeout: float,
        attempt: int,
    ) -> Any:
        """Primary attempt plus a delayed replica hedge; first success
        wins, the loser's result is discarded (idempotency makes that
        safe)."""
        replica = self.endpoints[attempt % len(self.endpoints)]
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            futures: List[Future] = [
                pool.submit(self._attempt, primary, op, attempt_timeout)
            ]
            done, _ = wait(futures, timeout=self.hedge_delay)
            if not done and replica != primary:
                get_tracer().incr("client.hedged_reads")
                futures.append(
                    pool.submit(self._attempt, replica, op, attempt_timeout)
                )
            first_error: Optional[BaseException] = None
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    error = future.exception()
                    if error is None:
                        return future.result()
                    if first_error is None:
                        first_error = error
            assert first_error is not None
            raise first_error
        finally:
            # No wait: the winner must return even while the loser is
            # still hung on its socket (that's the whole point of the
            # hedge).  The discarded attempt's breaker bookkeeping still
            # runs to completion in its thread.
            pool.shutdown(wait=False)

    def _check_stale(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if not self.accept_stale and isinstance(payload, dict) and payload.get("stale"):
            raise ServiceError(
                503,
                {
                    "error": "stale answer rejected (accept_stale=False)",
                    "retry": True,
                    "stale": True,
                },
            )
        return payload

    # -- endpoints -----------------------------------------------------
    def metric(
        self,
        system: str,
        domain: str,
        metric: str,
        seed: int = 2024,
        faults: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One served metric payload, with retries/hedging; stale-marked
        answers pass through unless ``accept_stale=False``."""
        key = idempotency_key(system, domain, seed, faults)
        payload = self._call(
            lambda c: c.metric(system, domain, metric, seed=seed, faults=faults),
            key,
            hedgeable=faults is None,
        )
        return self._check_stale(payload)

    def analyze(
        self,
        system: str,
        domain: str,
        seed: int = 2024,
        faults: Optional[str] = None,
    ) -> Dict[str, Dict[str, Any]]:
        key = idempotency_key(system, domain, seed, faults)
        metrics = self._call(
            lambda c: c.analyze(system, domain, seed=seed, faults=faults),
            key,
            hedgeable=faults is None,
        )
        for payload in metrics.values():
            self._check_stale(payload)
        return metrics

    def health(self) -> Dict[str, Any]:
        return self._call(lambda c: c.health(), "health", hedgeable=True)

    def ready(self) -> bool:
        try:
            return bool(self._call(lambda c: c.ready(), "ready"))
        except ServiceError:
            return False

    def catalog_list(self, arch: Optional[str] = None) -> List[Dict[str, Any]]:
        return self._call(
            lambda c: c.catalog_list(arch), f"catalog-list:{arch}", hedgeable=True
        )

    def catalog_entry(
        self,
        arch: str,
        metric: str,
        digest: Optional[str] = None,
        version: Optional[int] = None,
    ) -> Dict[str, Any]:
        return self._call(
            lambda c: c.catalog_entry(arch, metric, digest=digest, version=version),
            f"catalog-entry:{arch}:{metric}:{digest}:{version}",
            hedgeable=True,
        )
