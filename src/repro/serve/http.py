"""Minimal stdlib HTTP front-end for the metric service.

A deliberately small HTTP/1.0 server over ``asyncio`` streams — no
framework, no dependency — exposing the service as JSON endpoints:

====================================================  =====================
``GET /healthz``                                      liveness: stats,
                                                      queue depth, obs
                                                      counters (always 200)
``GET /readyz``                                       readiness (200/503)
``GET /v1/metric/<system>/<domain>/<metric>``         one served definition
``POST /v1/analyze``                                  every metric of a
                                                      domain (JSON body:
                                                      system, domain,
                                                      seed, faults)
``GET /v1/catalog``                                   catalog summary rows
``GET /v1/catalog/<arch>/<metric>``                   stored entry /
                                                      history / diff
====================================================  =====================

``/v1/metric`` takes ``?seed=`` and ``?faults=`` query parameters;
``/v1/catalog/...`` takes ``?digest=`` (required when several config
digests exist), ``?version=``, ``?history=1``, and ``?diff=A..B``.
Metric segments are URL-encoded (metric names contain spaces).

Error envelope: every non-200 response is ``{"error": ..., ...}`` with
the HTTP status carrying the class — 400 validation, 404 unknown, 429
backpressure, 500 failed analysis, 503 not ready.  Connections are
closed after each response (HTTP/1.0 semantics): the clients this serves
are short-lived CLI/automation calls, not browsers.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.faults.chaos import ChaosInjector
from repro.guard.validate import ValidationError
from repro.serve.service import MetricService, ServiceError

__all__ = [
    "HttpMetricServer",
    "format_response",
    "read_http_request",
    "run_server",
]

logger = logging.getLogger(__name__)

_MAX_REQUEST_BYTES = 1 << 20  # 1 MiB: analysis requests are tiny JSON


def format_response(status: int, payload: Dict[str, Any]) -> bytes:
    """Render one HTTP/1.0 JSON response (shared with the supervisor
    front, which speaks the same wire format)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    reason = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        429: "Too Many Requests",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }.get(status, "Error")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode()
    return head + body


async def read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Read ``(method, target, body)`` off an asyncio stream, or ``None``
    for an empty/garbled request line.  Shared with the supervisor front."""
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, target = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if not line.strip():
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = 0
    if content_length > _MAX_REQUEST_BYTES:
        raise ServiceError(400, {"error": "request body too large"})
    body = await reader.readexactly(content_length) if content_length else b""
    return method, target, body


# Backwards-compatible internal alias.
_response = format_response


class HttpMetricServer:
    """One bound listener serving a :class:`MetricService` over HTTP."""

    def __init__(
        self,
        service: MetricService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        chaos: Optional[ChaosInjector] = None,
        chaos_scope: str = "w0",
    ):
        self.service = service
        self.host = host
        self.port = port
        # Serve-layer chaos (see repro.faults.chaos): when set, each
        # accepted request consults the injector at site
        # ``request:<chaos_scope>:<ordinal>`` for socket drops, injected
        # latency, and loop-blocking hangs.
        self.chaos = chaos
        self.chaos_scope = chaos_scope
        self._accepted = 0
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Start the service and the listener; returns the bound port."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    # -- request handling ---------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._accepted += 1
        site = f"request:{self.chaos_scope}:{self._accepted}"
        chaos = self.chaos
        if chaos is not None and chaos.enabled:
            if chaos.fires("socket-drop", site):
                writer.close()
                return
            delay = chaos.latency(site)
            if delay:
                await asyncio.sleep(delay)
            if chaos.fires("worker-hang", site):
                # Deliberately block the event loop: a wedged loop is the
                # pathology the supervisor's heartbeat must detect.
                time.sleep(chaos.config.hang_seconds)
        try:
            raw = await read_http_request(reader)
            if raw is None:
                return
            method, target, body = raw
            status, payload = await self._route(method, target, body)
        except ServiceError as exc:
            status, payload = exc.status, exc.payload
        except (ValidationError, ValueError) as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            logger.exception("unhandled error serving a request")
            status, payload = 500, {
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        try:
            writer.write(_response(status, payload))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        split = urlsplit(target)
        path = [unquote(p) for p in split.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}

        if path == ["healthz"]:
            return 200, self.service.health()
        if path == ["readyz"]:
            if self.service.ready:
                return 200, {"ready": True}
            return 503, {"ready": False, "error": "service is not ready"}

        if len(path) == 5 and path[:2] == ["v1", "metric"]:
            if method != "GET":
                return 405, {"error": "use GET for /v1/metric"}
            _, _, system, domain, metric = path
            served = await self.service.get_metric(
                system,
                domain,
                metric,
                seed=int(query.get("seed", 2024)),
                faults=query.get("faults"),
            )
            return 200, served.to_payload()

        if path == ["v1", "analyze"]:
            if method != "POST":
                return 405, {"error": "use POST for /v1/analyze"}
            try:
                request = json.loads(body.decode() or "{}")
            except json.JSONDecodeError as exc:
                return 400, {"error": f"request body is not JSON: {exc}"}
            if "system" not in request or "domain" not in request:
                return 400, {"error": "body must name 'system' and 'domain'"}
            served = await self.service.analyze(
                request["system"],
                request["domain"],
                seed=int(request.get("seed", 2024)),
                faults=request.get("faults"),
            )
            return 200, {
                "metrics": {
                    name: metric.to_payload() for name, metric in served.items()
                }
            }

        if path[:2] == ["v1", "catalog"]:
            return self._route_catalog(path[2:], query)

        return 404, {"error": f"no route for {method} {split.path}"}

    def _route_catalog(
        self, rest: list, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        store = self.service.store
        if store is None:
            return 404, {"error": "no catalog configured on this service"}
        if not rest:
            return 200, {"entries": store.list_entries(query.get("arch"))}
        if len(rest) != 2:
            return 404, {"error": "expected /v1/catalog/<arch>/<metric>"}
        arch, metric = rest
        digest = query.get("digest")
        if digest is None:
            digests = sorted(
                {
                    row["config_digest"]
                    for row in store.list_entries(arch)
                    if row["metric"] == metric
                }
            )
            if not digests:
                return 404, {
                    "error": f"no catalog entry for ({arch!r}, {metric!r})"
                }
            if len(digests) > 1:
                return 400, {
                    "error": "several config digests stored for this metric; "
                    "pick one with ?digest=",
                    "digests": digests,
                }
            digest = digests[0]
        if "diff" in query:
            a, _, b = query["diff"].partition("..")
            try:
                diff = store.diff(arch, metric, digest, int(a), int(b))
            except (KeyError, ValueError) as exc:
                return 404, {"error": str(exc)}
            return 200, {"diff": diff.render(), "identical": diff.identical}
        if query.get("history"):
            return 200, {
                "history": [
                    e.to_payload() for e in store.history(arch, metric, digest)
                ]
            }
        version = int(query["version"]) if "version" in query else None
        entry = store.get(arch, metric, digest, version=version)
        if entry is None:
            return 404, {
                "error": f"no catalog entry for ({arch!r}, {metric!r}, "
                f"{digest})"
            }
        return 200, entry.to_payload()


async def run_server(
    service: MetricService,
    host: str = "127.0.0.1",
    port: int = 8752,
    ready_message=None,
) -> None:
    """Serve until cancelled (the CLI wraps this in ``asyncio.run`` and
    translates Ctrl-C into a clean stop)."""
    server = HttpMetricServer(service, host=host, port=port)
    bound = await server.start()
    if ready_message is not None:
        ready_message(bound)
    try:
        await asyncio.Event().wait()  # sleep until cancelled
    finally:
        await server.stop()
