"""repro.serve — versioned metric catalog + fault-tolerant metric service.

Layers, bottom up:

* :mod:`repro.serve.catalog` — a content-addressed, versioned on-disk
  store of served :class:`~repro.core.metrics.MetricDefinition` records
  (coefficients bit-exact, trust certification, guard stamps, lineage),
  published crash-consistently (fsync + staged rename) and repairable
  after a crash via :meth:`MetricCatalogStore.fsck`.
* :mod:`repro.serve.service` / :mod:`repro.serve.http` — an asyncio
  service over the analysis pipeline with request coalescing, batched
  dispatch, bounded-queue backpressure, structured fault errors, and
  optional stale-serving degradation, fronted by a small stdlib HTTP
  server.
* :mod:`repro.serve.supervisor` — a supervised multi-worker front over
  the same catalog root: heartbeat crash/hang detection, backoff
  restarts under an intensity cap, re-dispatch of in-flight requests,
  stale fallback when the whole pool is down.
* :mod:`repro.serve.client` / :mod:`repro.serve.resilience` — the
  blocking :class:`CatalogClient` plus the retrying, deadline-bounded,
  breaker-guarded, hedging :class:`ResilientCatalogClient`.
* :mod:`repro.serve.shard` — a consistent-hash ring
  (:class:`ShardRing`) partitioning the catalog by (architecture,
  metric) across N shard directories, fronted by
  :class:`ShardedCatalogStore`: routed reads/writes, deterministic
  fan-out for listings/fsck, and a hot-entry read-replica cache
  invalidated on the events-registry digest.
* :mod:`repro.serve.chaos` — the closed-loop chaos drill that proves
  the tier's invariant: every response under injected faults is
  bit-identical to the fault-free answer, explicitly stale, or a typed
  error.
* :mod:`repro.serve.load` — the closed-loop load harness: open- and
  closed-loop workload models, deterministic per-client streams,
  latency percentiles, saturation sweeps over offered rps, and the
  same bit-identical / typed-rejection / explicit-stale invariant
  checked on every response.

See ``docs/serving.md`` (failure modes & recovery) and
``docs/robustness.md`` (the fault model).
"""

from repro.serve.catalog import (
    CatalogDiff,
    CatalogEntry,
    FsckReport,
    LogCompaction,
    MetricCatalogStore,
    analysis_config_digest,
    diff_entries,
    entries_from_result,
    metric_slug,
)
from repro.serve.chaos import ChaosReport, definition_digest, run_chaos_drill
from repro.serve.client import CatalogClient
from repro.serve.http import HttpMetricServer, run_server
from repro.serve.load import (
    LoadReport,
    LoadStep,
    LoadStepReport,
    RequestSpec,
    Workload,
    latency_percentile,
    run_load_drill,
)
from repro.serve.resilience import (
    BreakerOpen,
    CircuitBreaker,
    DeadlineExceeded,
    ResilientCatalogClient,
    RetryPolicy,
    idempotency_key,
)
from repro.serve.service import (
    AnalysisRequest,
    MetricService,
    ServedMetric,
    ServiceBusy,
    ServiceError,
    ServiceStats,
    TransportError,
)
from repro.serve.shard import (
    ShardRing,
    ShardUnavailable,
    ShardedCatalogStore,
    open_catalog,
    shard_names,
)
from repro.serve.supervisor import (
    ServiceSupervisor,
    SupervisorConfig,
    SupervisorServer,
)

__all__ = [
    "AnalysisRequest",
    "BreakerOpen",
    "CatalogClient",
    "CatalogDiff",
    "CatalogEntry",
    "ChaosReport",
    "CircuitBreaker",
    "DeadlineExceeded",
    "FsckReport",
    "HttpMetricServer",
    "LoadReport",
    "LoadStep",
    "LoadStepReport",
    "LogCompaction",
    "MetricCatalogStore",
    "MetricService",
    "RequestSpec",
    "ResilientCatalogClient",
    "RetryPolicy",
    "ServedMetric",
    "ServiceBusy",
    "ServiceError",
    "ServiceStats",
    "ServiceSupervisor",
    "ShardRing",
    "ShardUnavailable",
    "ShardedCatalogStore",
    "SupervisorConfig",
    "SupervisorServer",
    "TransportError",
    "Workload",
    "analysis_config_digest",
    "definition_digest",
    "diff_entries",
    "entries_from_result",
    "idempotency_key",
    "latency_percentile",
    "metric_slug",
    "open_catalog",
    "run_chaos_drill",
    "run_load_drill",
    "run_server",
    "shard_names",
]
