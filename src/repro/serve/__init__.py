"""repro.serve — versioned metric catalog + async batching metric service.

Two layers:

* :mod:`repro.serve.catalog` — a content-addressed, versioned on-disk
  store of served :class:`~repro.core.metrics.MetricDefinition` records
  (coefficients bit-exact, trust certification, guard stamps, lineage).
* :mod:`repro.serve.service` / :mod:`repro.serve.http` — an asyncio
  service over the analysis pipeline with request coalescing, batched
  dispatch, bounded-queue backpressure, and structured fault errors,
  fronted by a small stdlib HTTP server.

:mod:`repro.serve.client` provides the blocking :class:`CatalogClient`
used by scripts and the CI smoke job.
"""

from repro.serve.catalog import (
    CatalogDiff,
    CatalogEntry,
    MetricCatalogStore,
    analysis_config_digest,
    diff_entries,
    entries_from_result,
    metric_slug,
)
from repro.serve.client import CatalogClient
from repro.serve.http import HttpMetricServer, run_server
from repro.serve.service import (
    AnalysisRequest,
    MetricService,
    ServedMetric,
    ServiceBusy,
    ServiceError,
    ServiceStats,
)

__all__ = [
    "AnalysisRequest",
    "CatalogClient",
    "CatalogDiff",
    "CatalogEntry",
    "HttpMetricServer",
    "MetricCatalogStore",
    "MetricService",
    "ServedMetric",
    "ServiceBusy",
    "ServiceError",
    "ServiceStats",
    "analysis_config_digest",
    "diff_entries",
    "entries_from_result",
    "metric_slug",
    "run_server",
]
