"""Figure data-series extraction: the numbers behind Figures 2 and 3.

Separating "compute the series" from "draw it" keeps the benchmark harness
assertable: benches regenerate and check the series, then render them with
:mod:`repro.viz.ascii` and export CSVs via :mod:`repro.io.tables`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.basis import ExpectationBasis
from repro.core.metrics import MetricDefinition
from repro.core.noise_filter import NoiseReport
from repro.core.signatures import Signature

__all__ = ["Fig2Series", "fig2_series", "fig3_series", "Fig3Series"]


@dataclass(frozen=True)
class Fig2Series:
    """Sorted variabilities + threshold: one panel of paper Figure 2."""

    benchmark: str
    tau: float
    values: np.ndarray  # ascending variabilities (zeros included)
    event_names: Tuple[str, ...]

    @property
    def n_zero_noise(self) -> int:
        return int(np.count_nonzero(self.values == 0.0))

    @property
    def n_above_tau(self) -> int:
        return int(np.count_nonzero(self.values > self.tau))

    def separation_gap(self) -> Tuple[float, float]:
        """(largest value <= tau, smallest value > tau) — the unambiguous
        threshold window the paper reads off the figure."""
        below = self.values[self.values <= self.tau]
        above = self.values[self.values > self.tau]
        lo = float(below.max()) if below.size else 0.0
        hi = float(above.min()) if above.size else np.inf
        return lo, hi


def fig2_series(noise: NoiseReport) -> Fig2Series:
    """Extract the Figure-2 panel series from a noise report."""
    ordered = noise.sorted_variabilities()
    return Fig2Series(
        benchmark=noise.benchmark,
        tau=noise.tau,
        values=np.array([v for _, v in ordered]),
        event_names=tuple(name for name, _ in ordered),
    )


@dataclass(frozen=True)
class Fig3Series:
    """One panel of paper Figure 3: combination vs signature per row."""

    metric: str
    row_labels: Tuple[str, ...]
    measured: np.ndarray  # the raw-event combination, kernel space
    expected: np.ndarray  # the signature, kernel space

    @property
    def max_abs_deviation(self) -> float:
        return float(np.abs(self.measured - self.expected).max())


def fig3_series(
    metric: MetricDefinition,
    signature: Signature,
    basis: ExpectationBasis,
    measurement_matrix: np.ndarray,
    event_names: Sequence[str],
) -> Fig3Series:
    """Evaluate a metric's event combination against its signature, per
    kernel row (normalized counts, as plotted in Figure 3).

    ``measurement_matrix`` is (rows, events) with columns named by
    ``event_names`` — the *measured* data, so the comparison includes all
    real noise, exactly like the figure.
    """
    m = np.asarray(measurement_matrix, dtype=np.float64)
    name_to_col = {n: i for i, n in enumerate(event_names)}
    combo = np.zeros(m.shape[0])
    for event, coeff in zip(metric.event_names, metric.coefficients):
        if coeff == 0.0:
            continue
        try:
            combo += coeff * m[:, name_to_col[event]]
        except KeyError:
            raise KeyError(
                f"metric {metric.metric!r} uses event {event!r} which is not "
                "in the supplied measurement matrix"
            ) from None
    expected = signature.in_kernel_space(basis)
    return Fig3Series(
        metric=metric.metric,
        row_labels=tuple(basis.row_labels),
        measured=combo,
        expected=expected,
    )
