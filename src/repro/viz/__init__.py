"""Figure-series extraction and ASCII rendering."""

from repro.viz.ascii import grouped_series, log_scatter
from repro.viz.series import Fig2Series, Fig3Series, fig2_series, fig3_series

__all__ = [
    "Fig2Series",
    "Fig3Series",
    "fig2_series",
    "fig3_series",
    "grouped_series",
    "log_scatter",
]
