"""ASCII plotting for the paper's figures (no plotting library required).

Two plot shapes cover the evaluation:

* :func:`log_scatter` — sorted event variabilities on a log y-axis with a
  horizontal threshold line (paper Figure 2).
* :func:`grouped_series` — normalized event counts across pointer-chain
  size groups, two series overlaid (paper Figure 3: measured combination
  vs signature).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["grouped_series", "log_scatter"]


def log_scatter(
    values: Sequence[float],
    threshold: Optional[float] = None,
    title: str = "",
    height: int = 18,
    width: int = 72,
    floor: float = 1e-16,
) -> str:
    """Scatter of sorted values on a log-scale y axis.

    Zero values are plotted at ``floor`` (the paper plots them at machine
    epsilon "for the sake of visualization on a logarithmic scale").
    """
    vals = np.asarray(list(values), dtype=np.float64)
    if vals.size == 0:
        return f"{title}\n(no data)"
    vals = np.sort(np.maximum(vals, floor))
    logs = np.log10(vals)
    lo = np.floor(min(logs.min(), np.log10(threshold) if threshold else np.inf))
    hi = np.ceil(max(logs.max(), np.log10(threshold) if threshold else -np.inf))
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    xs = np.minimum((np.arange(vals.size) / max(vals.size - 1, 1) * (width - 1)).astype(int), width - 1)
    ys = ((logs - lo) / (hi - lo) * (height - 1)).astype(int)
    thresh_row = None
    if threshold is not None:
        thresh_row = int((np.log10(threshold) - lo) / (hi - lo) * (height - 1))
        if 0 <= thresh_row < height:
            for x in range(width):
                grid[thresh_row][x] = "-"
    for x, y in zip(xs, ys):
        grid[int(np.clip(y, 0, height - 1))][x] = "*"

    lines = [title] if title else []
    for row in range(height - 1, -1, -1):
        exponent = lo + (hi - lo) * row / (height - 1)
        label = f"1e{exponent:+04.0f} |"
        body = "".join(grid[row])
        if thresh_row is not None and row == thresh_row:
            body += f"  tau = {threshold:g}"
        lines.append(label + body)
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(" " * 8 + f"events sorted by variability (n={vals.size})")
    return "\n".join(lines)


def grouped_series(
    group_labels: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    title: str = "",
    height: int = 12,
    y_max: Optional[float] = None,
) -> str:
    """Two-or-more overlaid series across labelled x groups.

    Each series is rendered with its own marker; coincident points show
    the later series' marker over the earlier one — in the paper's Fig. 3
    the measured combination sits exactly on the signature, so overlap is
    the success criterion and is easy to eyeball here.
    """
    markers = "ox+#@"
    n = len(group_labels)
    if any(len(values) != n for _, values in series):
        raise ValueError("every series must have one value per group label")
    all_vals = np.concatenate([np.asarray(v, dtype=float) for _, v in series])
    top = y_max if y_max is not None else max(1.0, float(all_vals.max()) * 1.1)

    col_width = 4
    width = n * col_width
    grid = [[" "] * width for _ in range(height)]
    for s_idx, (_, values) in enumerate(series):
        marker = markers[s_idx % len(markers)]
        for i, value in enumerate(values):
            y = int(np.clip(value / top * (height - 1), 0, height - 1))
            x = i * col_width + 1 + (s_idx % 2)
            grid[y][x] = marker

    lines = [title] if title else []
    for row in range(height - 1, -1, -1):
        y_val = top * row / (height - 1)
        lines.append(f"{y_val:5.2f} |" + "".join(grid[row]))
    lines.append(" " * 6 + "+" + "-" * width)
    label_row = " " * 7
    for label in group_labels:
        label_row += label[: col_width - 1].ljust(col_width)
    lines.append(label_row)
    legend = "  ".join(
        f"{markers[i % len(markers)]} = {name}" for i, (name, _) in enumerate(series)
    )
    lines.append(" " * 7 + legend)
    return "\n".join(lines)
