"""Persistence, measurement caching and tabular export."""

from repro.io.cache import (
    CacheStats,
    MeasurementCache,
    default_measurement_cache,
    event_set_digest,
    measurement_cache_key,
)
from repro.io.store import (
    load_measurements,
    load_presets,
    save_measurements,
    save_presets,
)
from repro.io.tables import render_markdown_table, write_csv, write_markdown

__all__ = [
    "CacheStats",
    "MeasurementCache",
    "default_measurement_cache",
    "event_set_digest",
    "load_measurements",
    "load_presets",
    "measurement_cache_key",
    "render_markdown_table",
    "save_measurements",
    "save_presets",
    "write_csv",
    "write_markdown",
]
