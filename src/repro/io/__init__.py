"""Persistence, measurement caching, digests and tabular export.

Re-exports resolve lazily: low-level modules (``repro.obs``,
``repro.serve``) import :mod:`repro.io.digest` for the shared hashing
helpers, and an eager ``from repro.io.cache import ...`` here would pull
``repro.obs`` back in mid-initialization (cache instrumentation) and
deadlock the import graph.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — type-checker-only eager imports
    from repro.io.cache import (
        CacheStats,
        MeasurementCache,
        default_measurement_cache,
        event_set_digest,
        measurement_cache_key,
    )
    from repro.io.digest import (
        canonical_json,
        file_digest,
        json_digest,
        sha256_hex,
    )
    from repro.io.durability import (
        durable_append,
        durable_replace,
        durable_write,
        fsync_dir,
        fsync_file,
    )
    from repro.io.store import (
        load_measurements,
        load_presets,
        save_measurements,
        save_presets,
    )
    from repro.io.tables import render_markdown_table, write_csv, write_markdown

_EXPORTS = {
    "CacheStats": "repro.io.cache",
    "MeasurementCache": "repro.io.cache",
    "default_measurement_cache": "repro.io.cache",
    "event_set_digest": "repro.io.cache",
    "measurement_cache_key": "repro.io.cache",
    "canonical_json": "repro.io.digest",
    "durable_append": "repro.io.durability",
    "durable_replace": "repro.io.durability",
    "durable_write": "repro.io.durability",
    "fsync_dir": "repro.io.durability",
    "fsync_file": "repro.io.durability",
    "file_digest": "repro.io.digest",
    "json_digest": "repro.io.digest",
    "sha256_hex": "repro.io.digest",
    "load_measurements": "repro.io.store",
    "load_presets": "repro.io.store",
    "save_measurements": "repro.io.store",
    "save_presets": "repro.io.store",
    "render_markdown_table": "repro.io.tables",
    "write_csv": "repro.io.tables",
    "write_markdown": "repro.io.tables",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.io' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return __all__
