"""Persistence and tabular export."""

from repro.io.store import (
    load_measurements,
    load_presets,
    save_measurements,
    save_presets,
)
from repro.io.tables import render_markdown_table, write_csv, write_markdown

__all__ = [
    "load_measurements",
    "load_presets",
    "render_markdown_table",
    "save_measurements",
    "save_presets",
    "write_csv",
    "write_markdown",
]
