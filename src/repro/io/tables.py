"""Tabular export of pipeline artifacts (CSV and markdown).

The benchmark harness writes every reproduced table/figure series through
these helpers so results land under ``results/`` in a diffable form.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

__all__ = ["render_markdown_table", "write_csv", "write_markdown"]


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e-3 and abs(value) < 1e6:
            return f"{value:.6g}"
        return f"{value:.3e}"
    return str(value)


def render_markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """GitHub-style markdown table with aligned columns."""
    str_rows = [[_stringify(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)


def write_csv(
    path: Union[str, Path], headers: Sequence[str], rows: Sequence[Sequence]
) -> Path:
    """Write rows as CSV (no quoting needs beyond commas in our data)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [",".join(headers)]
    for row in rows:
        cells = [_stringify(v).replace(",", ";") for v in row]
        lines.append(",".join(cells))
    path.write_text("\n".join(lines) + "\n")
    return path


def write_markdown(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    parts: List[str] = []
    if title:
        parts.append(f"# {title}\n")
    parts.append(render_markdown_table(headers, rows))
    path.write_text("\n".join(parts) + "\n")
    return path
