"""Tabular export of pipeline artifacts (CSV and markdown).

The benchmark harness writes every reproduced table/figure series through
these helpers so results land under ``results/`` in a diffable form.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

__all__ = ["format_float", "render_markdown_table", "write_csv", "write_markdown"]


def format_float(value, signed: bool = False) -> str:
    """The one float formatter for human-facing tables and digests.

    Every report table, sweep digest and CLI float goes through here, so
    the textual artifacts are stable across numpy versions: the value is
    forced to a Python float first (numpy scalar ``repr`` changed across
    releases), then rendered with fixed rules — ``%.6g`` in the humane
    magnitude range, ``%.3e`` outside it, a bare ``0`` for zero.
    ``signed`` prepends ``+`` to non-negative values (coefficient lists).
    """
    value = float(value)
    if value == 0:
        return "+0" if signed else "0"
    sign = "+" if signed and value > 0 else ""
    if 1e-3 <= abs(value) < 1e6:
        return f"{sign}{value:.6g}"
    return f"{sign}{value:.3e}"


def _stringify(value) -> str:
    if isinstance(value, (float, np.floating)):
        return format_float(value)
    return str(value)


def render_markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """GitHub-style markdown table with aligned columns."""
    str_rows = [[_stringify(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)


def write_csv(
    path: Union[str, Path], headers: Sequence[str], rows: Sequence[Sequence]
) -> Path:
    """Write rows as CSV (no quoting needs beyond commas in our data)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [",".join(headers)]
    for row in rows:
        cells = [_stringify(v).replace(",", ";") for v in row]
        lines.append(",".join(cells))
    path.write_text("\n".join(lines) + "\n")
    return path


def write_markdown(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    parts: List[str] = []
    if title:
        parts.append(f"# {title}\n")
    parts.append(render_markdown_table(headers, rows))
    path.write_text("\n".join(parts) + "\n")
    return path
