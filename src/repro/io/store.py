"""Persistence for measurement sets and pipeline artifacts.

Measurements are expensive to (re)collect on real machines, so CAT-style
workflows snapshot them: the dense reading array goes into ``.npz`` and the
labels into a JSON sidecar, making the artifact both compact and greppable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.cat.measurement import MeasurementSet
from repro.guard.validate import require_finite, require_nonempty
from repro.papi.presets import PresetMetric, PresetTable

__all__ = [
    "load_measurements",
    "load_presets",
    "save_measurements",
    "save_presets",
]


def save_measurements(measurement: MeasurementSet, path: Union[str, Path]) -> Path:
    """Write a measurement set to ``<path>.npz`` + ``<path>.json``.

    Returns the npz path.  Any existing files are overwritten (snapshots
    are immutable by convention: name them by benchmark + seed).
    """
    path = Path(path)
    if path.suffix == ".npz":
        path = path.with_suffix("")
    npz_path = path.with_suffix(".npz")
    json_path = path.with_suffix(".json")
    np.savez_compressed(npz_path, data=measurement.data)
    meta = {
        "benchmark": measurement.benchmark,
        "row_labels": measurement.row_labels,
        "event_names": measurement.event_names,
        "shape": list(measurement.data.shape),
        "pmu_runs": measurement.pmu_runs,
    }
    json_path.write_text(json.dumps(meta, indent=2))
    return npz_path


def load_measurements(path: Union[str, Path]) -> MeasurementSet:
    """Load a measurement set saved by :func:`save_measurements`."""
    path = Path(path)
    if path.suffix == ".npz":
        path = path.with_suffix("")
    npz_path = path.with_suffix(".npz")
    json_path = path.with_suffix(".json")
    if not npz_path.exists() or not json_path.exists():
        raise FileNotFoundError(
            f"measurement snapshot {path} requires both {npz_path.name} and "
            f"{json_path.name}"
        )
    meta = json.loads(json_path.read_text())
    with np.load(npz_path) as archive:
        data = archive["data"]
    if list(data.shape) != meta["shape"]:
        raise ValueError(
            f"snapshot corrupt: data shape {data.shape} vs metadata {meta['shape']}"
        )
    # Deserialization boundary: a truncated npz or a hand-edited sidecar
    # must fail here with the reason, not deep inside a least-squares
    # solve three stages later.
    context = f"measurement snapshot {npz_path.name}"
    require_nonempty(meta["event_names"], "event_names", context)
    require_nonempty(meta["row_labels"], "row_labels", context)
    require_finite(data, "data", context)
    return MeasurementSet(
        benchmark=meta["benchmark"],
        row_labels=meta["row_labels"],
        event_names=meta["event_names"],
        data=data,
        # Sidecars written before pmu_runs was persisted load as None.
        pmu_runs=meta.get("pmu_runs"),
    )


def save_presets(table: PresetTable, path: Union[str, Path]) -> Path:
    """Write a preset table as JSON (the shape of a PAPI preset file)."""
    path = Path(path)
    payload = {
        "architecture": table.architecture,
        "presets": [
            {
                "name": p.name,
                "terms": dict(p.terms),
                "fitness": p.fitness,
                "description": p.description,
            }
            for p in table
        ],
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_presets(path: Union[str, Path]) -> PresetTable:
    """Load a preset table saved by :func:`save_presets`."""
    payload = json.loads(Path(path).read_text())
    table = PresetTable(architecture=payload["architecture"])
    context = f"preset file {Path(path).name}"
    for entry in payload["presets"]:
        terms = dict(entry["terms"])
        if terms:
            require_finite(
                np.array(list(terms.values())),
                f"terms of preset {entry['name']!r}",
                context,
            )
        fitness = entry["fitness"]
        if not np.isfinite(fitness) or fitness < 0:
            raise ValueError(
                f"{context}: preset {entry['name']!r} has invalid fitness "
                f"{fitness!r} (must be finite and >= 0)"
            )
        table.define(
            PresetMetric(
                name=entry["name"],
                terms=terms,
                fitness=fitness,
                description=entry.get("description", ""),
            )
        )
    return table
