"""Shared SHA-256 digest helpers: one hashing idiom for the whole repo.

Content addressing shows up everywhere reproducibility does — the
measurement cache keys entries by configuration, the sweep engine
fingerprints tasks and digests results, the tracer derives span ids, and
the metric catalog (:mod:`repro.serve`) versions definitions by content.
Before this module each site hand-rolled its ``hashlib.sha256`` recipe;
now they all share three helpers with one canonicalization rule each:

* :func:`sha256_hex` — digest a sequence of byte/str chunks.  Chunks are
  concatenated (``str`` encodes as UTF-8), so incremental ``update``
  loops and one-shot calls agree.
* :func:`json_digest` — digest a JSON-serializable payload in canonical
  form (:func:`canonical_json`: sorted keys, default separators).  The
  measurement-cache keys are this digest of the full measurement
  configuration.
* :func:`file_digest` — digest a file's bytes (cache-entry checksums).

Every helper takes ``length`` to truncate the hex form; ``None`` keeps
all 64 characters.  Truncation lengths are part of on-disk formats
(checkpoint names, span ids), so call sites pick them explicitly.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional, Union

__all__ = ["canonical_json", "file_digest", "json_digest", "sha256_hex"]


def sha256_hex(*chunks: Union[str, bytes], length: Optional[int] = None) -> str:
    """Hex SHA-256 of the concatenated ``chunks`` (str encodes as UTF-8).

    Equivalent to a sequential ``h.update`` loop over the chunks, so
    callers migrating from hand-rolled incremental hashing keep their
    digests bit-for-bit.
    """
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk.encode() if isinstance(chunk, str) else chunk)
    digest = h.hexdigest()
    return digest if length is None else digest[:length]


def canonical_json(payload: Any) -> str:
    """The canonical JSON form digests are computed over: sorted keys,
    default separators.  Changing this changes every key derived from
    :func:`json_digest` — never alter it without a migration story."""
    return json.dumps(payload, sort_keys=True)


def json_digest(payload: Any, length: Optional[int] = None) -> str:
    """Hex SHA-256 of ``payload``'s canonical JSON form."""
    return sha256_hex(canonical_json(payload), length=length)


def file_digest(path: Union[str, Path], length: Optional[int] = None) -> str:
    """Hex SHA-256 of a file's content."""
    return sha256_hex(Path(path).read_bytes(), length=length)
