"""Crash-consistency primitives: fsync discipline for atomic publication.

``os.replace`` gives *atomicity* — a reader never sees half a file — but
not *durability*: after a power loss the rename, the file contents, or an
appended log line may simply not be there, and worse, they may survive
*partially* (a torn page).  The catalog's publication protocol needs the
classic three-step discipline:

1. write the staged file, ``fsync`` it (contents are on stable storage),
2. ``os.replace``/``os.link`` it into place,
3. ``fsync`` the parent directory (the *name* is on stable storage).

These helpers centralize that discipline so every durable writer in the
repo (the metric catalog, its append-only version log) spells it the
same way.  Durability is a policy knob — ``durable=False`` skips the
syncs for throwaway stores (tests, tmpfs scratch) without changing any
other semantics — and platforms that cannot fsync a directory (some
network filesystems) degrade to syncing the file alone rather than
failing the publish.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = [
    "durable_append",
    "durable_replace",
    "durable_write",
    "fsync_dir",
    "fsync_file",
]

_PathLike = Union[str, Path]


def fsync_file(path: _PathLike) -> None:
    """Flush one file's contents to stable storage."""
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: _PathLike) -> None:
    """Flush one directory's entries (file names) to stable storage.

    Directory fsync is what makes a rename durable.  Filesystems that
    refuse to fsync a directory handle (observed on some CIFS/NFS
    mounts) degrade silently: the publish stays atomic, just not
    provably durable there.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover — platform-dependent degradation
        pass
    finally:
        os.close(fd)


def durable_write(path: _PathLike, data: Union[str, bytes], *, durable: bool = True) -> None:
    """Write ``path`` in place and (optionally) fsync it.

    This is the *staging* half of a publish: the caller is expected to
    follow with :func:`durable_replace` (or ``os.link``) into the final
    name.  Writing the final path directly with this helper is only safe
    for files whose partial existence is harmless.
    """
    path = Path(path)
    mode = "wb" if isinstance(data, bytes) else "w"
    with path.open(mode) as fh:
        fh.write(data)
        if durable:
            fh.flush()
            os.fsync(fh.fileno())


def durable_replace(staged: _PathLike, final: _PathLike, *, durable: bool = True) -> None:
    """Atomically rename ``staged`` to ``final``; fsync the parent so the
    new name survives power loss.  The staged file must already be
    synced (:func:`durable_write`)."""
    os.replace(os.fspath(staged), os.fspath(final))
    if durable:
        fsync_dir(Path(final).parent)


def durable_append(path: _PathLike, line: str, *, durable: bool = True) -> None:
    """Append one line to a log file with fsync.

    Appends are not atomic across power loss — a torn tail line is
    possible — which is why readers of ``log.jsonl``-style files must
    tolerate (and fsck must repair) a final partial line.  The fsync
    bounds the damage to at most that one line.
    """
    path = Path(path)
    with path.open("a") as fh:
        fh.write(line)
        if durable:
            fh.flush()
            os.fsync(fh.fileno())
