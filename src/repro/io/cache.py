"""Content-addressed cache for benchmark measurements.

Measuring is the expensive stage of every pipeline — ~300 events over all
kernel rows and repetitions — and sweeps repeat it: the dcache and dtlb
domains re-walk the same pointer-chase activities, portability studies
re-run every domain per node, and re-invocations of a report re-measure
what the previous invocation just produced.  Because the substrate is
bit-deterministic, a measurement is fully determined by its configuration;
this module derives a content address from that configuration and keeps a
two-level cache under it:

* an in-memory LRU of live :class:`MeasurementSet` objects (process-local,
  zero deserialization cost), over
* an optional on-disk layer reusing the ``.npz`` + JSON sidecar snapshot
  format of :mod:`repro.io.store` (shared across processes and runs).

The key covers everything a reading depends on: the node fingerprint
(name, seed, machine geometry, PMU budget), the benchmark configuration
(name, kernel rows, threads, environment noise), the content of the event
set (full names, response weights, noise models), and the repetition
count.  Anything that could change a bit of the data changes the key.

Integrity: every disk entry carries a ``.sha256`` sidecar with content
checksums of both artifact files, written atomically alongside them.  A
read verifies the checksums (and survives a decode failure) before the
entry is trusted; anything corrupt — truncated write, torn page, bit rot,
or the fault injector's ``cache_corruption_rate`` — is moved to a
``quarantine/`` subdirectory, logged, counted in ``stats.corrupt``, and
reported as a miss so the caller transparently re-measures.  The keys of
quarantined entries are kept on ``cache.quarantined`` for the robustness
audit.  A disk layer that stops being writable (permissions, read-only
mount) is disabled with a logged warning instead of sinking the run.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.cat.measurement import MeasurementSet
from repro.events.model import RawEvent
from repro.io.digest import file_digest, json_digest, sha256_hex
from repro.io.store import load_measurements, save_measurements
from repro.obs import get_tracer

__all__ = [
    "CacheStats",
    "MeasurementCache",
    "default_measurement_cache",
    "event_set_digest",
    "measurement_cache_key",
]

logger = logging.getLogger(__name__)


def event_set_digest(events: Iterable[RawEvent]) -> str:
    """Digest of an event set's *content*, not just its names.

    Two registries with the same names but different response weights or
    noise models would measure differently; both are folded into the hash.
    """
    chunks: List[Union[str, bytes]] = []
    for event in events:
        chunks.append(event.full_name)
        chunks.append(repr(sorted(event.response.items())))
        chunks.append(repr(event.noise))
        chunks.append(b"\x00")
    return sha256_hex(*chunks)


def _node_fingerprint(node) -> dict:
    machine = node.machine
    config = getattr(machine, "config", None)
    return {
        "name": node.name,
        "seed": node.seed,
        "machine": type(machine).__name__,
        "config": repr(config),
        "pmu": [node.pmu.programmable_counters, node.pmu.fixed_counters],
    }


def _benchmark_fingerprint(benchmark) -> dict:
    env = benchmark.environment_noise
    return {
        "name": benchmark.name,
        "row_labels": list(benchmark.row_labels()),
        "n_threads": benchmark.n_threads,
        "environment_noise": list(env) if env is not None else None,
        "domains": list(benchmark.measured_domains),
    }


def measurement_cache_key(
    node,
    benchmark,
    events: Iterable[RawEvent],
    repetitions: int,
) -> str:
    """The content address of one benchmark measurement.

    ``events`` is the exact event set the runner will measure (an
    :class:`~repro.events.registry.EventRegistry` iterates as one).
    """
    payload = {
        "node": _node_fingerprint(node),
        "benchmark": _benchmark_fingerprint(benchmark),
        "events": event_set_digest(events),
        "repetitions": repetitions,
    }
    return json_digest(payload)


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    # Disk entries that failed checksum verification (or decoding) and
    # were quarantined; each also counts as a miss.
    corrupt: int = 0
    # In-memory LRU entries displaced by capacity pressure.  A hot
    # column-reuse workload (repro.incr keeps one entry per event) that
    # shows a non-zero eviction rate is telling you max_memory_entries
    # is too small for the working set.
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class MeasurementCache:
    """LRU-in-memory, content-addressed-on-disk measurement cache.

    Parameters
    ----------
    root:
        Directory for the persistent layer; ``None`` keeps the cache
        memory-only (still worth it: repeated pipeline runs within one
        process skip measurement entirely).
    max_memory_entries:
        In-memory LRU capacity.  A full-catalog measurement is a few MB,
        so the default bounds the cache to tens of MB.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        max_memory_entries: int = 32,
    ):
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        self.root = Path(root) if root is not None else None
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, MeasurementSet]" = OrderedDict()
        # Guards the in-memory LRU: the metric service shares one cache
        # instance across its worker threads, and OrderedDict mutation is
        # not atomic under concurrent move_to_end/popitem.
        self._memory_lock = threading.Lock()
        self.stats = CacheStats()
        # Keys of entries that failed verification and were set aside;
        # the robustness report reconciles injected cache corruption
        # against this list (the entry was caught, not trusted).
        self.quarantined: List[str] = []

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / key[:2] / key

    @staticmethod
    def _entry_files(path: Path) -> List[Path]:
        return [path.with_suffix(".npz"), path.with_suffix(".json")]

    @staticmethod
    def _checksum_path(path: Path) -> Path:
        return path.with_suffix(".sha256")

    @classmethod
    def _digests(cls, path: Path) -> dict:
        return {
            f.suffix.lstrip("."): file_digest(f)
            for f in cls._entry_files(path)
            if f.exists()
        }

    def _verify(self, path: Path) -> None:
        """Raise ``ValueError`` when the entry's checksums do not match.

        An entry without a ``.sha256`` sidecar (written by an older run)
        is not failed outright — decoding is still the fallback check.
        """
        checksum_file = self._checksum_path(path)
        if not checksum_file.exists():
            return
        expected = json.loads(checksum_file.read_text())
        actual = self._digests(path)
        if actual != expected:
            bad = sorted(k for k in expected if actual.get(k) != expected[k])
            raise ValueError(f"checksum mismatch on {', '.join(bad) or 'entry'}")

    def _quarantine(self, key: str, path: Path, reason: Exception) -> None:
        """Set a corrupt entry aside (never delete: it is evidence)."""
        quarantine_dir = self.root / "quarantine"
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        moved = []
        for f in self._entry_files(path) + [self._checksum_path(path)]:
            try:
                f.replace(quarantine_dir / f.name)
                moved.append(f.name)
            except FileNotFoundError:
                # Absent file, or a racing reader quarantined it first —
                # either way the poison is out of the entry path.
                continue
        self.quarantined.append(key)
        self.stats.corrupt += 1
        get_tracer().incr("cache.corrupt")
        logger.warning(
            "cache entry %s failed verification (%s: %s); quarantined %s "
            "and re-measuring",
            key[:12],
            type(reason).__name__,
            reason,
            ", ".join(moved),
        )

    def _remember(self, key: str, measurement: MeasurementSet) -> None:
        evicted = 0
        with self._memory_lock:
            self._memory[key] = measurement
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)
                evicted += 1
        if evicted:
            self.stats.evictions += evicted
            get_tracer().incr("cache.evictions", evicted)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[MeasurementSet]:
        """The cached measurement for ``key``, or ``None`` on a miss.

        A disk entry is only a hit after its checksums verify, it
        decodes, and its content passes the load-time boundary
        validation (finite data, non-empty labels — see
        :mod:`repro.guard.validate`); a corrupt entry is quarantined and
        reported as a miss.
        """
        with self._memory_lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
        if cached is not None:
            self.stats.memory_hits += 1
            get_tracer().incr("cache.memory_hits")
            return cached
        path = self._disk_path(key)
        if path is not None and path.with_suffix(".npz").exists():
            try:
                self._verify(path)
                measurement = load_measurements(path)
            except Exception as exc:  # corrupt entry: quarantine, miss
                self._quarantine(key, path, exc)
            else:
                self._remember(key, measurement)
                self.stats.disk_hits += 1
                get_tracer().incr("cache.disk_hits")
                return measurement
        self.stats.misses += 1
        get_tracer().incr("cache.misses")
        return None

    def put(self, key: str, measurement: MeasurementSet) -> None:
        """Store a measurement under its content address.

        Disk publication is atomic and tolerates racing writers: the
        entry is staged in a private scratch directory and each file is
        ``os.replace``d into place, ``.npz`` last — its existence gates
        reads, so no reader ever observes a partially written entry.
        Because keys are content addresses, two writers racing on the
        same key are writing identical bytes and the last rename simply
        re-publishes the same content.
        """
        self._remember(key, measurement)
        self.stats.stores += 1
        get_tracer().incr("cache.stores")
        path = self._disk_path(key)
        if path is None:
            return
        try:
            self._publish_entry(key, path, measurement)
        except (OSError, PermissionError) as exc:
            # A disk layer that cannot be written must not sink the run;
            # keep the in-memory layer and stop touching the disk.
            logger.warning(
                "measurement cache disk layer at %s is not writable "
                "(%s: %s); disabling it for this cache instance",
                self.root,
                type(exc).__name__,
                exc,
            )
            self.root = None

    _scratch_seq = itertools.count()

    def _publish_entry(
        self, key: str, path: Path, measurement: MeasurementSet
    ) -> None:
        """Stage the entry's three files privately, then rename them into
        place (json, checksum, then npz — the read gate — last)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = self.root / "tmp" / (
            f"{key[:8]}-{os.getpid()}-{threading.get_ident()}-"
            f"{next(self._scratch_seq)}"
        )
        scratch.mkdir(parents=True, exist_ok=True)
        try:
            staged = scratch / key
            save_measurements(measurement, staged)
            checksums = self._digests(staged)
            self._checksum_path(staged).write_text(
                json.dumps(checksums, sort_keys=True)
            )
            for suffix in (".json", ".sha256", ".npz"):
                os.replace(
                    staged.with_suffix(suffix), path.with_suffix(suffix)
                )
        finally:
            for leftover in scratch.glob("*"):
                try:
                    leftover.unlink()
                except OSError:
                    pass
            try:
                scratch.rmdir()
            except OSError:
                pass

    def verify_all(self) -> List[str]:
        """Verify every on-disk entry; quarantine the corrupt ones and
        return their keys (a cache fsck).

        In a shared-cache sweep an entry can be corrupted *after* the
        task that owns it already read it, so no in-run read would catch
        the damage; a post-sweep pass closes that hole and scrubs the
        poison out before any later run trusts the directory.
        """
        if self.root is None or not self.root.exists():
            return []
        caught: List[str] = []
        for npz in sorted(self.root.glob("*/*.npz")):
            if npz.parent.name == "quarantine":
                continue
            path = npz.with_suffix("")
            try:
                self._verify(path)
                load_measurements(path)
            except Exception as exc:
                self._quarantine(path.name, path, exc)
                caught.append(path.name)
        return caught

    def get_or_measure(self, key: str, measure) -> MeasurementSet:
        """The cached measurement, or ``measure()``'s result (then cached)."""
        cached = self.get(key)
        if cached is not None:
            return cached
        measurement = measure()
        self.put(key, measurement)
        return measurement

    def clear(self) -> None:
        """Drop the in-memory layer (the disk layer is left untouched)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:
        where = str(self.root) if self.root is not None else "memory-only"
        return (
            f"MeasurementCache({where}, {len(self._memory)}/"
            f"{self.max_memory_entries} in memory, "
            f"{self.stats.hits} hits / {self.stats.misses} misses)"
        )


_DEFAULT_CACHE: Optional[MeasurementCache] = None


def default_measurement_cache() -> MeasurementCache:
    """The process-wide shared cache used when a pipeline enables caching
    without supplying its own instance (memory-only)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = MeasurementCache()
    return _DEFAULT_CACHE
